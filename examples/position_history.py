"""The paper's Section 2.2 worked example, end to end.

Reproduces Figures 3-5: the POSITION relation, the initial all-in-DBMS
plan, the optimizer's chosen plan (temporal aggregation in the middleware),
the execution-ready algorithm sequence, and the query result.

Run:  python examples/position_history.py
"""

from repro import MiniDB, Tango
from repro.algebra.builder import scan
from repro.core.plans import compile_plan


def build_database() -> MiniDB:
    db = MiniDB()
    db.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), "
        "T1 DATE, T2 DATE)"
    )
    db.execute(
        "INSERT INTO POSITION VALUES "
        "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)"
    )
    return db


def example_query_plan(tango: Tango):
    """Figure 4(a)'s query: count employees per position over time, then
    temporally join the counts back to POSITION, sorted by position."""
    aggregated = (
        scan(tango.db, "POSITION")
        .project("PosID", "T1", "T2")
        .taggr(group_by=["PosID"], count="PosID")
    )
    return (
        aggregated.temporal_join(
            scan(tango.db, "POSITION").project("PosID", "EmpName", "T1", "T2"),
            "PosID",
            "PosID",
        )
        .project("PosID", "EmpName", "T1", "T2", "COUNTofPosID")
        .sort("PosID")
        .to_middleware()
        .build()
    )


def main() -> None:
    db = build_database()
    tango = Tango(db)
    tango.refresh_statistics()
    tango.calibrate(sizes=(200,))

    initial = example_query_plan(tango)
    print("Initial plan (all processing in the DBMS, Figure 4(a)):")
    print(initial.pretty())

    optimized = tango.optimize(initial)
    print(
        f"\nOptimizer: {optimized.class_count} equivalence classes, "
        f"{optimized.element_count} elements, estimated cost "
        f"{optimized.cost:.0f}us"
    )
    print("\nChosen plan (Figure 4(b) shape):")
    print(optimized.plan.pretty())

    execution = compile_plan(optimized.plan, tango.connection)
    print("\nExecution-ready plan (Figure 5's algorithm sequence):")
    print(execution.describe())
    execution.cleanup()

    result = tango.execute_plan(optimized.plan)
    print("\nQuery result (Figure 3(b)):")
    print(f"  columns: {result.schema.names}")
    for row in result:
        print(f"  {row}")

    expected = {
        (1, "Tom", 2, 5, 1),
        (1, "Tom", 5, 20, 2),
        (1, "Jane", 5, 20, 2),
        (1, "Jane", 20, 25, 1),
        (2, "Tom", 5, 10, 1),
    }
    assert set(result.rows) == expected, "Figure 3(b) mismatch!"
    print("\nMatches Figure 3(b) exactly.")


if __name__ == "__main__":
    main()
