"""Optimizer lab: watch the middleware apportion work adaptively.

Loads a scaled UIS dataset and shows the optimizer's decisions for the
paper's Query 3 (temporal self-join) across a selectivity sweep, then
re-runs the same decisions under artificially expensive transfers — the
regime of a networked DBMS — to demonstrate the crossover the middleware's
cost-based optimization is built around.

Run:  python examples/optimizer_lab.py
"""

from dataclasses import replace

from repro import MiniDB, Tango
from repro.algebra.operators import Location, TemporalJoin
from repro.optimizer.search import Optimizer
from repro.workloads.queries import query3_initial_plan, query3_plans
from repro.workloads.uis import load_uis

BOUNDS = ("1990-01-01", "1993-01-01", "1995-01-01", "1997-01-01", "1999-01-01")


def tjoin_location(plan) -> str:
    node = next(n for n in plan.walk() if isinstance(n, TemporalJoin))
    return "middleware" if node.location is Location.MIDDLEWARE else "DBMS"


def main() -> None:
    db = MiniDB()
    print("Loading scaled UIS dataset...")
    load_uis(db, scale=0.01, with_variants=False)
    tango = Tango(db)
    print("Calibrating cost factors on this machine...")
    tango.calibrate(sizes=(500,))

    print("\nQuery 3: pairs of employees sharing a position, for positions")
    print("starting before a bound.  Where does the temporal join run?\n")
    print(f"{'bound':<12} {'choice':<12} {'est cost':>10} {'P1 (DBMS)':>10} "
          f"{'P2 (MW)':>10}")
    for bound in BOUNDS:
        result = tango.optimize(query3_initial_plan(db, bound))
        import time

        timings = []
        for spec in query3_plans(db, bound):
            begin = time.perf_counter()
            tango.execute_plan(spec.plan)
            timings.append(time.perf_counter() - begin)
        print(
            f"{bound:<12} {tjoin_location(result.plan):<12} "
            f"{result.cost:>9.0f}u {timings[0]:>9.4f}s {timings[1]:>9.4f}s"
        )

    print("\nSame queries against a hypothetical DBMS with native temporal")
    print("support (temporal processing priced at 5% of the measured cost):")
    native_factors = replace(
        tango.factors,
        p_taggd1=tango.factors.p_taggd1 * 0.05,
        p_taggd2=tango.factors.p_taggd2 * 0.05,
        p_joind=tango.factors.p_joind * 0.05,
    )
    native_optimizer = Optimizer(tango.estimator, native_factors)
    for bound in BOUNDS:
        result = native_optimizer.optimize(query3_initial_plan(db, bound))
        print(f"{bound:<12} {tjoin_location(result.plan):<12} "
              f"{result.cost:>9.0f}u")

    print(
        "\nThe split between middleware and DBMS is not fixed: it follows\n"
        "the calibrated cost factors — the adaptability the paper's title\n"
        "refers to.  Against a DBMS with efficient temporal operators the\n"
        "middleware automatically degenerates to a pure translation layer."
    )


if __name__ == "__main__":
    main()
