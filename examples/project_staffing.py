"""Domain scenario: project staffing analytics over a valid-time table.

A consultancy records who is assigned to which project, at what bill rate,
and over which period.  The temporal middleware answers the questions the
paper's introduction motivates — headcount over time, peak rates, who
overlapped with whom — plus a coalescing example (the Section 7 extension
operator).

Run:  python examples/project_staffing.py
"""

from repro import MiniDB, Tango, day_of
from repro.algebra.builder import scan
from repro.temporal.timestamps import iso_of


ASSIGNMENTS = [
    # (project, engineer, rate, from, to)
    (101, "Ada",     145.0, "2023-01-09", "2023-06-30"),
    (101, "Grace",   130.0, "2023-03-01", "2023-09-15"),
    (101, "Edsger",  120.0, "2023-06-01", "2024-01-05"),
    (101, "Ada",     150.0, "2023-08-01", "2024-01-05"),  # Ada returns
    (102, "Barbara", 140.0, "2023-02-01", "2023-05-01"),
    (102, "Ada",     145.0, "2023-06-30", "2023-08-01"),
    (102, "Edsger",  120.0, "2023-02-15", "2023-05-20"),
    (103, "Grace",   135.0, "2023-09-15", "2024-02-01"),
]


def build_database() -> MiniDB:
    db = MiniDB()
    db.execute(
        "CREATE TABLE ASSIGNMENT (ProjID INT, Engineer VARCHAR(12), "
        "Rate FLOAT, T1 DATE, T2 DATE)"
    )
    values = ", ".join(
        f"({p}, '{e}', {r}, {day_of(t1)}, {day_of(t2)})"
        for p, e, r, t1, t2 in ASSIGNMENTS
    )
    db.execute(f"INSERT INTO ASSIGNMENT VALUES {values}")
    return db


def show(result, title):
    print(f"\n{title}")
    print(f"  columns: {result.schema.names}")
    for row in result:
        pretty = [
            iso_of(value) if name in ("T1", "T2") else value
            for name, value in zip(result.schema.names, row)
        ]
        print(f"  {tuple(pretty)}")


def main() -> None:
    tango = Tango(build_database())
    tango.refresh_statistics()

    # Headcount per project over time (temporal aggregation).
    show(
        tango.query(
            "VALIDTIME SELECT ProjID, COUNT(Engineer) AS Heads "
            "FROM ASSIGNMENT GROUP BY ProjID ORDER BY ProjID"
        ),
        "Headcount per project over time:",
    )

    # Burn rate: total bill rate per project over time.
    show(
        tango.query(
            "VALIDTIME SELECT ProjID, SUM(Rate) AS Burn, MAX(Rate) AS Peak "
            "FROM ASSIGNMENT GROUP BY ProjID ORDER BY ProjID"
        ),
        "Hourly burn and peak rate per project over time:",
    )

    # Who worked together on the same project (temporal self-join)?
    show(
        tango.query(
            "VALIDTIME SELECT A.ProjID, A.Engineer, B.Engineer "
            "FROM ASSIGNMENT A, ASSIGNMENT B "
            "WHERE A.ProjID = B.ProjID AND A.Engineer < B.Engineer "
            "ORDER BY ProjID"
        ),
        "Engineers overlapping on the same project:",
    )

    # Staff available on a given day (timeslice).
    instant = day_of("2023-07-01")
    show(
        tango.query(
            f"VALIDTIME SELECT Engineer, ProjID FROM ASSIGNMENT "
            f"WHERE T1 <= {instant} AND T2 > {instant} ORDER BY Engineer"
        ),
        "Assignments active on 2023-07-01:",
    )

    # Coalescing (extension operator): Ada's two back-to-back project-101
    # stints become one maximal employment period.
    plan = (
        scan(tango.db, "ASSIGNMENT")
        .project("ProjID", "Engineer", "T1", "T2")
        .sort("ProjID", "Engineer", "T1")
        .to_middleware()
        .coalesce()
        .build()
    )
    result = tango.execute_plan(plan)
    print("\nCoalesced engagement periods (value-equivalent tuples merged):")
    for row in result:
        print(f"  proj {row[0]:>3}  {row[1]:<8} {iso_of(row[2])} -> {iso_of(row[3])}")


if __name__ == "__main__":
    main()
