"""Quickstart: temporal queries through the TANGO middleware.

Creates a small valid-time table in MiniDB, then runs temporal SQL through
the middleware: temporal aggregation, a temporal join, and a timeslice.

Run:  python examples/quickstart.py
"""

from repro import MiniDB, Tango


def main() -> None:
    # 1. A conventional DBMS with one valid-time relation (Figure 3 of the
    #    paper): PosID, EmpName, and a closed-open period [T1, T2).
    db = MiniDB()
    db.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), "
        "T1 DATE, T2 DATE)"
    )
    db.execute(
        "INSERT INTO POSITION VALUES "
        "(1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)"
    )

    # 2. The middleware sits on top; it reads statistics from the DBMS
    #    catalog and calibrates its cost formulas to this machine.
    tango = Tango(db)
    tango.refresh_statistics()

    # 3. Temporal aggregation: for each position, how many employees held
    #    it at each point in time?  (VALIDTIME makes GROUP BY temporal.)
    result = tango.query(
        "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
        "GROUP BY PosID ORDER BY PosID"
    )
    print("Employees per position over time:")
    print(f"  columns: {result.schema.names}")
    for row in result:
        print(f"  {row}")

    # 4. A temporal self-join: pairs of employees holding the same position
    #    at the same time; the result period is the overlap.
    pairs = tango.query(
        "VALIDTIME SELECT A.PosID, A.EmpName, B.EmpName "
        "FROM POSITION A, POSITION B "
        "WHERE A.PosID = B.PosID ORDER BY PosID"
    )
    print("\nConcurrent holders of the same position:")
    for row in pairs:
        print(f"  {row}")

    # 5. The optimizer decided where each operation ran; ask it to explain.
    print("\nChosen plan for the aggregation query:")
    print(
        tango.explain(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
    )

    # 6. Regular SQL passes straight through to the DBMS (stratum mode).
    plain = tango.query("SELECT COUNT(*) FROM POSITION")
    print(f"\nRegular SQL passthrough: POSITION has {plain.rows[0][0]} tuples")


if __name__ == "__main__":
    main()
