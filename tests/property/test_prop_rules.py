"""Property tests: optimizer soundness end-to-end.

For randomized datasets and randomized temporal queries, the optimizer's
chosen plan must execute to the same relation as the initial plan — the
transformation rules, the location assignment, the translator, and the
execution engine all have to agree for this to hold.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.core.tango import Tango
from repro.dbms.database import MiniDB

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),     # K
        st.integers(min_value=0, max_value=30),    # V
        st.integers(min_value=0, max_value=50),    # T1
        st.integers(min_value=1, max_value=25),    # duration
    ).map(lambda t: (t[0], t[1], t[2], t[2] + t[3])),
    min_size=1,
    max_size=30,
)


def build_tango(rows):
    db = MiniDB()
    db.execute("CREATE TABLE R (K INT, V INT, T1 DATE, T2 DATE)")
    db.execute(
        "INSERT INTO R VALUES "
        + ", ".join(f"({k}, {v}, {t1}, {t2})" for k, v, t1, t2 in rows)
    )
    return Tango(db)


class TestOptimizedPlansAreSound:
    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_temporal_aggregation(self, rows):
        tango = build_tango(rows)
        initial = (
            scan(tango.db, "R")
            .project("K", "T1", "T2")
            .taggr(group_by=["K"], count="K")
            .sort("K")
            .to_middleware()
            .build()
        )
        chosen = tango.optimize(initial).plan
        assert sorted(tango.execute_plan(chosen).rows) == sorted(
            tango.execute_plan(initial).rows
        )

    @settings(max_examples=25, deadline=None)
    @given(rows_strategy, st.integers(min_value=0, max_value=60))
    def test_selection_plus_aggregation(self, rows, bound):
        tango = build_tango(rows)
        initial = (
            scan(tango.db, "R")
            .select(Comparison("<", col("T1"), lit(bound)))
            .project("K", "T1", "T2")
            .taggr(group_by=["K"], count="K")
            .sort("K")
            .to_middleware()
            .build()
        )
        chosen = tango.optimize(initial).plan
        assert sorted(tango.execute_plan(chosen).rows) == sorted(
            tango.execute_plan(initial).rows
        )

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy)
    def test_temporal_self_join(self, rows):
        tango = build_tango(rows)
        initial = (
            scan(tango.db, "R")
            .temporal_join(scan(tango.db, "R"), "K", "K")
            .sort("K")
            .to_middleware()
            .build()
        )
        chosen = tango.optimize(initial).plan
        assert sorted(tango.execute_plan(chosen).rows) == sorted(
            tango.execute_plan(initial).rows
        )

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy, st.integers(min_value=0, max_value=30))
    def test_regular_join_with_residual_selection(self, rows, bound):
        tango = build_tango(rows)
        initial = (
            scan(tango.db, "R")
            .join(scan(tango.db, "R"), "K", "K")
            .select(Comparison("<", col("V"), lit(bound)))
            .to_middleware()
            .build()
        )
        chosen = tango.optimize(initial).plan
        assert sorted(tango.execute_plan(chosen).rows) == sorted(
            tango.execute_plan(initial).rows
        )


class TestOrderContract:
    @settings(max_examples=20, deadline=None)
    @given(rows_strategy)
    def test_chosen_plan_delivers_required_order(self, rows):
        tango = build_tango(rows)
        initial = (
            scan(tango.db, "R")
            .project("K", "T1", "T2")
            .taggr(group_by=["K"], count="K")
            .sort("K")
            .to_middleware()
            .build()
        )
        chosen = tango.optimize(initial).plan
        result = tango.execute_plan(chosen).rows
        assert [row[0] for row in result] == sorted(row[0] for row in result)
