"""Property tests for the extension operators (coalesce, dedup,
difference) and the cross-layer TAGGR equivalence (middleware algorithm vs
the SQL rewrite executed by the DBMS)."""

from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro.algebra.operators import AggregateSpec
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.temporal.period import coalesce_periods
from repro.xxl.coalesce import CoalesceCursor
from repro.xxl.cursor import materialize
from repro.xxl.dedup import DedupCursor
from repro.xxl.difference import DifferenceCursor
from repro.xxl.sources import RelationCursor

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

temporal_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=15),
    ).map(lambda t: (t[0], t[1], t[1] + t[2])),
    max_size=25,
)

plain_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=5)),
    max_size=25,
)


def run_coalesce(rows):
    ordered = sorted(rows, key=lambda row: (row[0], row[1]))
    return materialize(CoalesceCursor(RelationCursor(SCHEMA, ordered)))


class TestCoalesce:
    @settings(max_examples=60, deadline=None)
    @given(temporal_rows)
    def test_matches_per_group_reference(self, rows):
        result = run_coalesce(rows)
        by_group = defaultdict(list)
        for key, start, end in rows:
            by_group[key].append((start, end))
        expected = []
        for key in sorted(by_group):
            for start, end in coalesce_periods(by_group[key]):
                expected.append((key, start, end))
        assert result == expected

    @settings(max_examples=60, deadline=None)
    @given(temporal_rows)
    def test_idempotent(self, rows):
        once = run_coalesce(rows)
        assert run_coalesce(once) == once

    @settings(max_examples=60, deadline=None)
    @given(temporal_rows)
    def test_day_coverage_preserved(self, rows):
        covered = {
            (key, day)
            for key, start, end in run_coalesce(rows)
            for day in range(start, end)
        }
        expected = {
            (key, day)
            for key, start, end in rows
            for day in range(start, end)
        }
        assert covered == expected


class TestDedup:
    @settings(max_examples=60, deadline=None)
    @given(plain_rows)
    def test_matches_set_semantics(self, rows):
        schema = Schema([Attribute("A"), Attribute("B"), Attribute("C")])
        result = materialize(DedupCursor(RelationCursor(schema, rows)))
        assert Counter(result) == Counter(set(rows))

    @settings(max_examples=60, deadline=None)
    @given(plain_rows)
    def test_idempotent(self, rows):
        schema = Schema([Attribute("A"), Attribute("B"), Attribute("C")])
        once = materialize(DedupCursor(RelationCursor(schema, rows)))
        twice = materialize(DedupCursor(RelationCursor(schema, once)))
        assert once == twice


class TestDifference:
    @settings(max_examples=60, deadline=None)
    @given(plain_rows, plain_rows)
    def test_matches_multiset_subtraction(self, left, right):
        schema = Schema([Attribute("A"), Attribute("B"), Attribute("C")])
        result = materialize(
            DifferenceCursor(
                RelationCursor(schema, left), RelationCursor(schema, right)
            )
        )
        assert Counter(result) == Counter(left) - Counter(right)

    @settings(max_examples=40, deadline=None)
    @given(plain_rows)
    def test_self_difference_empty(self, rows):
        schema = Schema([Attribute("A"), Attribute("B"), Attribute("C")])
        result = materialize(
            DifferenceCursor(
                RelationCursor(schema, rows), RelationCursor(schema, rows)
            )
        )
        assert result == []


class TestTaggrCrossLayer:
    @settings(max_examples=25, deadline=None)
    @given(temporal_rows)
    def test_middleware_equals_sql_rewrite(self, rows):
        """TAGGR^M and the Translator-To-SQL's TAGGR^D rewrite must compute
        the same relation — the equivalence the whole of Figure 8 rests on."""
        from repro.algebra.builder import scan
        from repro.core.translator import SQLTranslator
        from repro.dbms.database import MiniDB
        from repro.xxl.temporal_aggregate import TemporalAggregateCursor

        db = MiniDB()
        db.create_table("R", SCHEMA)
        db.table("R").bulk_load(rows)
        plan = (
            scan(db, "R")
            .taggr(group_by=["K"], count="K")
            .sort("K", "T1")
            .build()
        )
        dbms_rows = db.query(SQLTranslator().translate(plan))

        ordered = sorted(rows, key=lambda row: (row[0], row[1]))
        middleware_rows = materialize(
            TemporalAggregateCursor(
                RelationCursor(SCHEMA, ordered),
                ("K",),
                (AggregateSpec("COUNT", "K", "COUNTofK"),),
            )
        )
        assert dbms_rows == middleware_rows
