"""Property tests for period algebra invariants."""

from hypothesis import given, strategies as st

from repro.temporal.period import (
    Period,
    coalesce_periods,
    constant_intervals,
    intersect,
    overlaps,
)

period_tuples = st.tuples(
    st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=60)
).map(lambda pair: (pair[0], pair[0] + pair[1]))

period_lists = st.lists(period_tuples, max_size=30)


class TestOverlapIntersect:
    @given(period_tuples, period_tuples)
    def test_overlap_symmetric(self, a, b):
        assert overlaps(*a, *b) == overlaps(*b, *a)

    @given(period_tuples, period_tuples)
    def test_intersection_iff_overlap(self, a, b):
        assert (intersect(*a, *b) is not None) == overlaps(*a, *b)

    @given(period_tuples, period_tuples)
    def test_intersection_contained_in_both(self, a, b):
        result = intersect(*a, *b)
        if result is not None:
            start, end = result
            assert a[0] <= start < end <= a[1]
            assert b[0] <= start < end <= b[1]

    @given(period_tuples)
    def test_self_intersection_is_identity(self, a):
        assert intersect(*a, *a) == a


class TestConstantIntervals:
    @given(period_lists)
    def test_intervals_disjoint_and_ordered(self, periods):
        intervals = list(constant_intervals(periods))
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
            assert s1 < e1

    @given(period_lists)
    def test_intervals_cover_exactly_the_union(self, periods):
        covered_days = set()
        for start, end in constant_intervals(periods):
            covered_days.update(range(start, end))
        expected = set()
        for start, end in periods:
            expected.update(range(start, end))
        assert covered_days == expected

    @given(period_lists)
    def test_constant_membership_within_interval(self, periods):
        # The defining property: inside one interval, the set of covering
        # periods does not change.
        for start, end in constant_intervals(periods):
            first = {
                i for i, (s, e) in enumerate(periods) if s <= start < e
            }
            last = {
                i for i, (s, e) in enumerate(periods) if s <= end - 1 < e
            }
            assert first == last
            assert first  # non-empty: gaps are skipped

    @given(period_lists)
    def test_boundaries_are_input_endpoints(self, periods):
        endpoints = {value for period in periods for value in period}
        for start, end in constant_intervals(periods):
            assert start in endpoints
            assert end in endpoints


class TestCoalesce:
    @given(period_lists)
    def test_output_disjoint_and_sorted(self, periods):
        merged = coalesce_periods(periods)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2  # strictly disjoint, not even adjacent

    @given(period_lists)
    def test_same_day_coverage(self, periods):
        merged = coalesce_periods(periods)
        covered = set()
        for start, end in merged:
            covered.update(range(start, end))
        expected = set()
        for start, end in periods:
            expected.update(range(start, end))
        assert covered == expected

    @given(period_lists)
    def test_idempotent(self, periods):
        once = coalesce_periods(periods)
        assert coalesce_periods(once) == once
