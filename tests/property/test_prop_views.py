"""The equivalence wall around incremental view maintenance.

For random seeded update streams over random UIS-shaped relations, an
incremental refresh must leave the stored view contents *byte-identical*
to a full recompute, for every shape with a delta rule — across the
columnar backends and worker counts the engine can execute under.

Two Tango instances run over two independently-built but identical
MiniDB instances; the same update stream is applied to both; one view is
refreshed forced-incremental, the other forced-full; the stored tables
(both canonical by construction) must compare equal as plain lists.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra import builder
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import AggregateSpec
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.dbms.loader import DirectPathLoader
from repro.workloads.generator import (
    UpdateStreamSpec,
    generate_relation_rows,
    generate_update_stream,
    random_relation_spec,
)

SEEDS = (0, 1, 2, 5)

# Delta-ruled view shapes.  Aggregates stay COUNT/SUM over INT columns and
# every cursor-relevant sort key is INT, so neither float summation order
# nor mixed-type ordering can differ between the two refresh paths.
SHAPES = ("select_project", "taggr", "temporal_join", "coalesce", "taggr_join")


def build_db(rng: random.Random):
    """One fresh MiniDB with two UIS-shaped relations, plus their specs."""
    specs = []
    db = MiniDB()
    for name in ("R0", "R1"):
        spec = random_relation_spec(rng, name, max_rows=30)
        specs.append(spec)
        DirectPathLoader(db).load(
            name, spec.schema, generate_relation_rows(spec), temporary=False
        )
        db.analyze(name)
    return db, specs


def view_plan(db, shape: str):
    if shape == "select_project":
        return (
            builder.scan(db, "R0")
            .select(Comparison("<=", col("K0"), lit(4)))
            .project("K0", "T1", "T2")
            .to_middleware()
            .build()
        )
    if shape == "taggr":
        return (
            builder.scan(db, "R0")
            .taggr(
                group_by=("K0",),
                aggregates=(
                    AggregateSpec("COUNT", "K0"),
                    AggregateSpec("SUM", "K0"),
                ),
            )
            .to_middleware()
            .build()
        )
    if shape == "temporal_join":
        return (
            builder.scan(db, "R0")
            .temporal_join(builder.scan(db, "R1"), "K0", "K0")
            .to_middleware()
            .build()
        )
    if shape == "coalesce":
        return (
            builder.scan(db, "R0")
            .project("K0", "T1", "T2")
            .coalesce()
            .to_middleware()
            .build()
        )
    if shape == "taggr_join":
        return (
            builder.scan(db, "R0")
            .temporal_join(builder.scan(db, "R1"), "K0", "K0")
            .taggr(group_by=("K0",), aggregates=(AggregateSpec("COUNT", "K0"),))
            .to_middleware()
            .build()
        )
    raise AssertionError(shape)


@pytest.mark.parametrize("columnar", ["off", "python"])
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_incremental_matches_full_recompute(shape, seed, workers, columnar):
    config = TangoConfig(workers=workers, columnar=columnar)
    db_inc, specs = build_db(random.Random(f"prop-views:{seed}"))
    db_full, _ = build_db(random.Random(f"prop-views:{seed}"))

    with Tango(db_inc, config) as t_inc, Tango(db_full, config) as t_full:
        t_inc.create_view("V", view_plan(db_inc, shape))
        t_full.create_view("V", view_plan(db_full, shape))
        for spec in specs:
            stream = generate_update_stream(
                spec, UpdateStreamSpec(batches=3, churn=0.3, seed=seed)
            )
            for batch in stream:
                t_inc.apply_updates(spec.name, batch.inserts, batch.deletes)
                t_full.apply_updates(spec.name, batch.inserts, batch.deletes)

        outcome_inc = t_inc.refresh_view("V", strategy="incremental")
        outcome_full = t_full.refresh_view("V", strategy="full")

        # The incremental path must actually have run incrementally —
        # a silent fallback would make this test vacuous.
        assert outcome_inc.strategy == "incremental"
        assert outcome_full.strategy == "full"
        stored_inc = list(db_inc.table("V").rows)
        stored_full = list(db_full.table("V").rows)
        assert stored_inc == stored_full


@pytest.mark.parametrize("seed", SEEDS)
def test_stream_of_refreshes_stays_equivalent(seed):
    """Interleaved update/refresh cycles never drift: after each batch and
    incremental refresh, the stored view equals a scratch recompute."""
    db, specs = build_db(random.Random(f"prop-views-stream:{seed}"))
    with Tango(db) as tango:
        plan = view_plan(db, "taggr")
        tango.create_view("V", plan)
        stream = generate_update_stream(
            specs[0], UpdateStreamSpec(batches=4, churn=0.25, seed=seed)
        )
        for batch in stream:
            tango.apply_updates(specs[0].name, batch.inserts, batch.deletes)
            outcome = tango.refresh_view("V", strategy="incremental")
            assert outcome.strategy == "incremental"
            from repro.fuzz.compare import canonical_rows

            oracle = tango.execute_plan(tango.optimize(plan).plan)
            assert list(db.table("V").rows) == canonical_rows(oracle.rows)
