"""Cross-layer property: a logical plan evaluates to the same relation
whether its operators run in the DBMS (via the Translator-To-SQL) or in the
middleware (via the XXL cursors).

This is the core soundness contract of the middleware architecture — the
location of an operator is a *performance* decision, never a semantic one
(Section 4's location-independence of the algebra).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algebra.builder import PlanBuilder, scan
from repro.algebra.expressions import Comparison, col, lit
from repro.core.plans import compile_plan
from repro.core.engine import ExecutionEngine
from repro.core.translator import SQLTranslator
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection

COLUMNS = ("K", "V", "T1", "T2")


def build_db(rows):
    db = MiniDB()
    db.execute("CREATE TABLE R (K INT, V INT, T1 DATE, T2 DATE)")
    if rows:
        db.execute(
            "INSERT INTO R VALUES "
            + ", ".join(f"({k}, {v}, {t1}, {t2})" for k, v, t1, t2 in rows)
        )
    return db


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=10),
    ).map(lambda t: (t[0], t[1], t[2], t[2] + t[3])),
    max_size=20,
)

#: Each step: (op, argument) — interpreted against the running builder.
step_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("select"),
                  st.sampled_from(["K", "V", "T1"]),
                  st.sampled_from(["<", "<=", ">", "="]),
                  st.integers(min_value=0, max_value=20)),
        st.tuples(st.just("sort"), st.sampled_from([("K",), ("V", "K"), ("T1",)])),
        st.tuples(st.just("dedup")),
        st.tuples(st.just("project"),
                  st.sampled_from([("K", "V"), ("K", "T1", "T2"), ("V",)])),
    ),
    max_size=4,
)


def apply_steps(builder: PlanBuilder, steps, available: list[str]) -> PlanBuilder:
    """Apply the random step list, skipping steps whose columns were
    projected away earlier."""
    for step in steps:
        if step[0] == "select":
            _, column, op, value = step
            if column not in available:
                continue
            builder = builder.select(Comparison(op, col(column), lit(value)))
        elif step[0] == "sort":
            keys = [key for key in step[1] if key in available]
            if not keys:
                continue
            builder = builder.sort(*keys)
        elif step[0] == "dedup":
            builder = builder.dedup()
        elif step[0] == "project":
            keep = [name for name in step[1] if name in available]
            if not keep:
                continue
            builder = builder.project(*keep)
            available = keep
    return builder


class TestLocationIndependence:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, step_strategy)
    def test_dbms_and_middleware_agree(self, rows, steps):
        db = build_db(rows)
        connection = Connection(db)

        dbms_plan = apply_steps(scan(db, "R"), steps, list(COLUMNS)).build()
        sql = SQLTranslator().translate(dbms_plan)
        dbms_rows = db.query(sql)

        middleware_plan = apply_steps(
            scan(db, "R").to_middleware(), steps, list(COLUMNS)
        ).build()
        execution = compile_plan(middleware_plan, connection)
        middleware_rows = ExecutionEngine().execute(execution).rows

        # Location never changes the multiset of results.
        assert sorted(dbms_rows) == sorted(middleware_rows)

    @settings(max_examples=25, deadline=None)
    @given(rows_strategy, st.sampled_from([("K",), ("V", "K"), ("T1", "K")]))
    def test_order_matches_when_sort_is_topmost(self, rows, keys):
        db = build_db(rows)
        connection = Connection(db)

        dbms_plan = scan(db, "R").sort(*keys).build()
        dbms_rows = db.query(SQLTranslator().translate(dbms_plan))

        middleware_plan = scan(db, "R").to_middleware().sort(*keys).build()
        middleware_rows = ExecutionEngine().execute(
            compile_plan(middleware_plan, connection)
        ).rows

        positions = [COLUMNS.index(key) for key in keys]
        assert [tuple(row[p] for p in positions) for row in dbms_rows] == [
            tuple(row[p] for p in positions) for row in middleware_rows
        ]
