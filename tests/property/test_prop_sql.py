"""Property tests: MiniDB SQL results against Python references."""

from hypothesis import given, settings, strategies as st

from repro.dbms.database import MiniDB

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=30,
)


def fresh_db(rows):
    db = MiniDB()
    db.execute("CREATE TABLE T (K INT, V INT)")
    if rows:
        values = ", ".join(f"({k}, {v})" for k, v in rows)
        db.execute(f"INSERT INTO T VALUES {values}")
    return db


class TestSelection:
    @settings(max_examples=50, deadline=None)
    @given(rows_strategy, st.integers(min_value=-100, max_value=100))
    def test_where_matches_python_filter(self, rows, threshold):
        db = fresh_db(rows)
        result = sorted(db.query(f"SELECT K, V FROM T WHERE V > {threshold}"))
        assert result == sorted(row for row in rows if row[1] > threshold)

    @settings(max_examples=50, deadline=None)
    @given(rows_strategy, st.integers(min_value=0, max_value=5))
    def test_equality(self, rows, key):
        db = fresh_db(rows)
        result = sorted(db.query(f"SELECT K, V FROM T WHERE K = {key}"))
        assert result == sorted(row for row in rows if row[0] == key)


class TestOrderBy:
    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_order_matches_python_sort(self, rows):
        db = fresh_db(rows)
        result = db.query("SELECT K, V FROM T ORDER BY K, V")
        assert result == sorted(rows)

    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_descending(self, rows):
        db = fresh_db(rows)
        result = db.query("SELECT V FROM T ORDER BY V DESC")
        assert [row[0] for row in result] == sorted(
            (row[1] for row in rows), reverse=True
        )


class TestGroupBy:
    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_count_sum_match_python(self, rows):
        db = fresh_db(rows)
        result = {
            row[0]: (row[1], row[2])
            for row in db.query("SELECT K, COUNT(*), SUM(V) FROM T GROUP BY K")
        }
        expected = {}
        for key, value in rows:
            count, total = expected.get(key, (0, 0.0))
            expected[key] = (count + 1, total + value)
        assert result == expected

    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_distinct_matches_set(self, rows):
        db = fresh_db(rows)
        result = sorted(db.query("SELECT DISTINCT K FROM T"))
        assert result == sorted({(row[0],) for row in rows})


class TestJoinMethodsAgree:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_nl_and_merge_produce_identical_multisets(self, left_rows, right_rows):
        db = MiniDB()
        db.execute("CREATE TABLE L (K INT, V INT)")
        db.execute("CREATE TABLE R (K INT, V INT)")
        if left_rows:
            db.execute(
                "INSERT INTO L VALUES "
                + ", ".join(f"({k}, {v})" for k, v in left_rows)
            )
        if right_rows:
            db.execute(
                "INSERT INTO R VALUES "
                + ", ".join(f"({k}, {v})" for k, v in right_rows)
            )
        query = "SELECT {hint} L.V, R.V FROM L, R WHERE L.K = R.K"
        nested = sorted(db.query(query.format(hint="/*+ USE_NL */")))
        merged = sorted(db.query(query.format(hint="/*+ USE_MERGE */")))
        reference = sorted(
            (lv, rv) for lk, lv in left_rows for rk, rv in right_rows if lk == rk
        )
        assert nested == merged == reference


class TestUnion:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_union_all_is_concat(self, left_rows, right_rows):
        db = MiniDB()
        db.execute("CREATE TABLE L (K INT, V INT)")
        db.execute("CREATE TABLE R (K INT, V INT)")
        for table, rows in (("L", left_rows), ("R", right_rows)):
            if rows:
                db.execute(
                    f"INSERT INTO {table} VALUES "
                    + ", ".join(f"({k}, {v})" for k, v in rows)
                )
        result = sorted(db.query("SELECT K, V FROM L UNION ALL SELECT K, V FROM R"))
        assert result == sorted(left_rows + right_rows)

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_union_is_set_union(self, rows):
        db = fresh_db(rows)
        result = sorted(db.query("SELECT K, V FROM T UNION SELECT K, V FROM T"))
        assert result == sorted(set(rows))
