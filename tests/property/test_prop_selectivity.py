"""Property tests for selectivity estimation invariants."""

from hypothesis import assume, given, settings, strategies as st

from repro.stats.collector import AttributeStats, RelationStats
from repro.stats.histogram import build_height_balanced
from repro.stats.selectivity import (
    end_before,
    naive_overlaps_selectivity,
    overlaps_selectivity,
    start_before,
    timeslice_selectivity,
)


def uniform_stats(cardinality, t1_min, t1_max, duration):
    return RelationStats(
        cardinality=float(cardinality),
        avg_row_size=16,
        attributes={
            "t1": AttributeStats("T1", t1_min, t1_max, t1_max - t1_min + 1),
            "t2": AttributeStats(
                "T2", t1_min + duration, t1_max + duration,
                t1_max - t1_min + 1,
            ),
        },
    )


stats_strategy = st.tuples(
    st.integers(min_value=10, max_value=100_000),   # cardinality
    st.integers(min_value=0, max_value=1000),       # t1 min
    st.integers(min_value=10, max_value=2000),      # span
    st.integers(min_value=1, max_value=100),        # duration
).map(lambda t: uniform_stats(t[0], t[1], t[1] + t[2], t[3]))

window = st.tuples(
    st.integers(min_value=-100, max_value=3000),
    st.integers(min_value=1, max_value=500),
).map(lambda pair: (pair[0], pair[0] + pair[1]))


class TestBounds:
    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, window)
    def test_semantic_in_unit_interval(self, stats, period):
        start, end = period
        assert 0.0 <= overlaps_selectivity(start, end, stats) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, window)
    def test_naive_in_unit_interval(self, stats, period):
        start, end = period
        assert 0.0 <= naive_overlaps_selectivity(start, end, stats) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, st.integers(min_value=-100, max_value=3000))
    def test_timeslice_in_unit_interval(self, stats, instant):
        assert 0.0 <= timeslice_selectivity(instant, stats) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, window)
    def test_semantic_never_exceeds_naive(self, stats, period):
        # The semantic estimator only subtracts impossible combinations, so
        # it can never estimate *more* than the independence assumption.
        start, end = period
        semantic = overlaps_selectivity(start, end, stats)
        naive = naive_overlaps_selectivity(start, end, stats)
        assert semantic <= naive + 1e-9


class TestMonotonicity:
    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, st.integers(min_value=0, max_value=2000),
           st.integers(min_value=1, max_value=200))
    def test_start_before_monotone(self, stats, value, delta):
        assert start_before(value, stats) <= start_before(value + delta, stats) + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(stats_strategy, window, st.integers(min_value=1, max_value=200))
    def test_widening_window_never_reduces_selectivity(self, stats, period, growth):
        start, end = period
        narrow = overlaps_selectivity(start, end, stats)
        wide = overlaps_selectivity(start, end + growth, stats)
        assert wide >= narrow - 1e-9


class TestAgainstExactCounts:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=200, max_value=2000),
        st.integers(min_value=5, max_value=50),
        window,
    )
    def test_uniform_data_estimate_close(self, count, duration, period):
        import random

        rng = random.Random(count * 31 + duration)
        span = 1000
        rows = []
        for _ in range(count):
            start = rng.randint(0, span)
            rows.append((start, start + duration))
        start, end = period
        assume(0 <= start and end <= span)
        assume(end - start >= 20)
        t1_values = [float(row[0]) for row in rows]
        t2_values = [float(row[1]) for row in rows]
        stats = RelationStats(
            cardinality=float(count),
            avg_row_size=16,
            attributes={
                "t1": AttributeStats(
                    "T1", min(t1_values), max(t1_values), count,
                    build_height_balanced(t1_values, 20),
                ),
                "t2": AttributeStats(
                    "T2", min(t2_values), max(t2_values), count,
                    build_height_balanced(t2_values, 20),
                ),
            },
        )
        actual = sum(1 for row in rows if row[0] < end and row[1] > start)
        estimate = overlaps_selectivity(start, end, stats) * count
        assert abs(estimate - actual) <= max(10.0, 0.35 * count)
