"""Property tests: TAGGR^M against a brute-force day-by-day reference."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.algebra.operators import AggregateSpec
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.xxl.cursor import materialize
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_aggregate import TemporalAggregateCursor

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),      # K
        st.integers(min_value=-50, max_value=50),   # V
        st.integers(min_value=0, max_value=60),     # T1
        st.integers(min_value=1, max_value=30),     # duration
    ).map(lambda t: (t[0], t[1], t[2], t[2] + t[3])),
    max_size=40,
)


def run_taggr(rows, func="COUNT", attribute="K"):
    ordered = sorted(rows, key=lambda row: (row[0], row[2]))
    cursor = TemporalAggregateCursor(
        RelationCursor(SCHEMA, ordered),
        ("K",),
        (AggregateSpec(func, attribute, "AGG"),),
    )
    return materialize(cursor)


def brute_force_by_day(rows, func):
    """Day-by-day evaluation: for each group and day, aggregate the tuples
    valid that day; then merge runs of equal aggregate values."""
    per_group = defaultdict(list)
    for row in rows:
        per_group[row[0]].append(row)
    results = []
    for key in sorted(per_group):
        group = per_group[key]
        days = sorted(
            {d for row in group for d in (row[2], row[3])}
        )
        if not days:
            continue
        day_values = []
        for day in range(min(days), max(days)):
            valid = [row[1] for row in group if row[2] <= day < row[3]]
            if not valid:
                day_values.append((day, None))
                continue
            if func == "COUNT":
                value = len(valid)
            elif func == "SUM":
                value = float(sum(valid))
            elif func == "MIN":
                value = min(valid)
            else:
                value = max(valid)
            day_values.append((day, value))
        run_start = None
        run_value = None
        for day, value in day_values + [(max(days), object())]:
            if value != run_value:
                if run_value is not None and run_start is not None:
                    results.append((key, run_start, day, run_value))
                run_start = day
                run_value = value
        # Drop the "no tuples valid" runs.
    return [row for row in results if row[3] is not None]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_count_matches_day_by_day(self, rows):
        result = run_taggr(rows, "COUNT")
        merged = _merge_equal_adjacent(result)
        assert merged == brute_force_by_day(rows, "COUNT")

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_sum_matches_day_by_day(self, rows):
        result = run_taggr(rows, "SUM", "V")
        merged = _merge_equal_adjacent(result)
        assert merged == brute_force_by_day(rows, "SUM")

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_min_matches_day_by_day(self, rows):
        result = run_taggr(rows, "MIN", "V")
        merged = _merge_equal_adjacent(result)
        assert merged == brute_force_by_day(rows, "MIN")

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_max_matches_day_by_day(self, rows):
        result = run_taggr(rows, "MAX", "V")
        merged = _merge_equal_adjacent(result)
        assert merged == brute_force_by_day(rows, "MAX")


def _merge_equal_adjacent(rows):
    """Merge adjacent result intervals carrying the same aggregate value.

    TAGGR^M splits at every instant; the day-by-day reference only changes
    at value changes — merging makes the two comparable.
    """
    merged = []
    for row in rows:
        if (
            merged
            and merged[-1][0] == row[0]
            and merged[-1][2] == row[1]
            and merged[-1][3] == row[3]
        ):
            merged[-1] = (row[0], merged[-1][1], row[2], row[3])
        else:
            merged.append(row)
    return merged


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_intervals_disjoint_per_group(self, rows):
        result = run_taggr(rows)
        by_group = defaultdict(list)
        for row in result:
            by_group[row[0]].append((row[1], row[2]))
        for intervals in by_group.values():
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_cardinality_bound_section_3_4(self, rows):
        result = run_taggr(rows)
        if rows:
            assert len(result) <= 2 * len(rows) - 1 + len(set(r[0] for r in rows))

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_counts_positive(self, rows):
        assert all(row[3] >= 1 for row in run_taggr(rows))

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_output_sorted_on_group_and_t1(self, rows):
        result = run_taggr(rows)
        assert result == sorted(result, key=lambda row: (row[0], row[1]))
