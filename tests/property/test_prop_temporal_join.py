"""Property tests: the middleware temporal join against a nested-loop
reference, and against its DBMS SQL translation."""

from hypothesis import given, settings, strategies as st

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.temporal.period import intersect, overlaps
from repro.xxl.cursor import materialize
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_join import TemporalJoinCursor

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=20),
    ).map(lambda t: (t[0], t[1], t[2], t[2] + t[3])),
    max_size=25,
)


def middleware_join(left_rows, right_rows):
    left = RelationCursor(SCHEMA, sorted(left_rows, key=lambda r: r[0]))
    right = RelationCursor(SCHEMA, sorted(right_rows, key=lambda r: r[0]))
    return materialize(TemporalJoinCursor(left, right, "K", "K"))


def reference_join(left_rows, right_rows):
    results = []
    for l in left_rows:
        for r in right_rows:
            if l[0] != r[0]:
                continue
            if not overlaps(l[2], l[3], r[2], r[3]):
                continue
            start, end = intersect(l[2], l[3], r[2], r[3])
            results.append((l[0], l[1], r[0], r[1], start, end))
    return sorted(results)


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_matches_nested_loop_reference(self, left_rows, right_rows):
        assert sorted(middleware_join(left_rows, right_rows)) == reference_join(
            left_rows, right_rows
        )

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_self_join_contains_every_tuple_paired_with_itself(self, rows):
        joined = middleware_join(rows, rows)
        keys = {(row[0], row[4], row[5]) for row in joined}
        for row in rows:
            assert (row[0], row[2], row[3]) in keys


class TestAgainstSQLTranslation:
    @settings(max_examples=25, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_matches_dbms_execution(self, left_rows, right_rows):
        from repro.algebra.builder import scan
        from repro.core.translator import SQLTranslator
        from repro.dbms.database import MiniDB

        db = MiniDB()
        db.create_table("L", SCHEMA)
        db.table("L").bulk_load(left_rows)
        db.create_table("R", SCHEMA)
        db.table("R").bulk_load(right_rows)
        plan = scan(db, "L").temporal_join(scan(db, "R"), "K", "K").build()
        sql = SQLTranslator().translate(plan)
        dbms_rows = sorted(db.query(sql))
        assert dbms_rows == reference_join(left_rows, right_rows)
