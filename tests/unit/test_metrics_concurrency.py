"""MetricsRegistry under concurrency: the exchange-pool usage pattern.

Producer threads create instruments on first use while the main thread
snapshots, renders, and resets the registry — exactly what happens when a
partition-parallel query reports into the same registry a test or the
facade is reading.  Dict growth during iteration must never escape as a
``RuntimeError`` and snapshots must be internally consistent.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry


def test_snapshot_and_reset_race_instrument_creation():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer(tag: int) -> None:
        serial = 0
        try:
            while not stop.is_set():
                # Fresh names force dict growth on every lap — the case a
                # mid-iteration snapshot used to blow up on.
                registry.counter(f"counter_{tag}_{serial}").inc()
                registry.histogram(f"histogram_{tag}_{serial}").observe(serial)
                serial += 1
        except BaseException as error:  # noqa: BLE001 - reported to the test
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(tag,)) for tag in range(4)
    ]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            snapshot = registry.to_dict()
            assert set(snapshot) == {"counters", "histograms"}
            registry.render()
            registry.reset()
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors, errors


def test_concurrent_increments_are_not_lost():
    registry = MetricsRegistry()
    laps = 2000

    def worker() -> None:
        for _ in range(laps):
            registry.counter("shared").inc()
            registry.histogram("observed").observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.value("shared") == 4 * laps
    summary = registry.to_dict()["histograms"]["observed"]
    assert summary["count"] == 4 * laps
    assert summary["total"] == 4 * laps * 1.0
    assert summary["mean"] == 1.0


def test_histogram_snapshot_is_consistent_under_writes():
    registry = MetricsRegistry()
    stop = threading.Event()

    def writer() -> None:
        while not stop.is_set():
            registry.histogram("h").observe(3.0)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(500):
            summary = registry.histogram("h").to_dict()
            if summary["count"]:
                # count and total move together or not at all.
                assert summary["total"] == summary["count"] * 3.0
                assert summary["mean"] == 3.0
    finally:
        stop.set()
        thread.join()
