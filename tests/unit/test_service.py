"""The query service stack: handle, health monitor, fair-share scheduler,
and the full :class:`~repro.service.QueryService` loop.

The concurrency-sensitive assertions (fairness, shedding, cancellation)
drive real worker threads over the real engine; slow machines only make
them slower, not flaky, because every wait is condition-based with a
generous timeout.
"""

from __future__ import annotations

import time

import pytest

from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.errors import (
    BackendSickError,
    QueryCancelledError,
    QueueFullError,
    ResultTimeoutError,
)
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy
from repro.resilience.health import BackendState, HealthMonitor, HealthPolicy
from repro.service import (
    FairShareScheduler,
    HandleState,
    QueryHandle,
    QueryService,
    ServiceConfig,
    TenantSpec,
)

TEMPORAL = (
    "VALIDTIME SELECT K, COUNT(K) FROM R GROUP BY K ORDER BY K"
)


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE R (K INTEGER, T1 INTEGER, T2 INTEGER)")
    rows = ", ".join(
        f"({i % 7}, {i % 40}, {i % 40 + 12})" for i in range(300)
    )
    instance.execute(f"INSERT INTO R VALUES {rows}")
    instance.analyze("R")
    return instance


class TestQueryHandle:
    def test_lifecycle_done(self):
        handle = QueryHandle("q", tenant="t", priority=2)
        assert handle.status() is HandleState.QUEUED
        assert handle.mark_running()
        assert handle.status() is HandleState.RUNNING
        handle.complete("a result")
        assert handle.status() is HandleState.DONE
        assert handle.result() == "a result"
        assert handle.queue_seconds is not None
        assert handle.total_seconds is not None

    def test_result_timeout(self):
        handle = QueryHandle("q")
        with pytest.raises(ResultTimeoutError):
            handle.result(timeout=0.01)

    def test_result_reraises_failure(self):
        handle = QueryHandle("q")
        handle.mark_running()
        handle.fail(ValueError("boom"))
        assert handle.status() is HandleState.FAILED
        with pytest.raises(ValueError, match="boom"):
            handle.result()

    def test_cancel_while_queued_is_immediate(self):
        handle = QueryHandle("q")
        assert handle.cancel()
        assert handle.status() is HandleState.CANCELLED
        assert not handle.mark_running()  # the scheduler must skip it
        with pytest.raises(QueryCancelledError):
            handle.result()

    def test_cancel_while_running_sets_abort_probe(self):
        handle = QueryHandle("q")
        handle.mark_running()
        assert handle.abort_reason() is None
        assert handle.cancel()
        assert handle.abort_reason() is not None

    def test_cancel_after_done_returns_false(self):
        handle = QueryHandle("q")
        handle.mark_running()
        handle.complete(1)
        assert not handle.cancel()
        assert handle.status() is HandleState.DONE


class TestHealthMonitor:
    def test_healthy_until_min_samples(self):
        monitor = HealthMonitor(HealthPolicy(min_samples=5))
        for _ in range(4):
            monitor.record_failure()
        assert monitor.classify() is BackendState.HEALTHY  # too few samples
        monitor.record_failure()
        assert monitor.classify() is BackendState.SICK

    def test_degraded_band(self):
        monitor = HealthMonitor(
            HealthPolicy(min_samples=4, degraded_ratio=0.2, sick_ratio=0.6)
        )
        for _ in range(7):
            monitor.record_ok()
        for _ in range(3):
            monitor.record_degraded()  # weight 0.5 → badness 1.5/10
        assert monitor.classify() is BackendState.HEALTHY
        for _ in range(3):
            monitor.record_failure()  # badness 4.5/13 ≈ 0.35
        assert monitor.classify() is BackendState.DEGRADED

    def test_window_decay_recovers(self):
        clock = [0.0]
        monitor = HealthMonitor(
            HealthPolicy(window_seconds=10.0, min_samples=2),
            clock=lambda: clock[0],
        )
        monitor.record_failure()
        monitor.record_failure()
        assert monitor.classify() is BackendState.SICK
        clock[0] = 11.0  # the bad samples age out of the window
        assert monitor.classify() is BackendState.HEALTHY


class TestFairShareScheduler:
    def config(self, **kwargs):
        return ServiceConfig(**kwargs)

    def test_weighted_interleaving(self):
        """With both tenants saturated, dispatch order tracks the weights:
        a weight-3 tenant gets ~3 slots per weight-1 slot."""
        scheduler = FairShareScheduler(
            self.config(
                queue_limit=100,
                tenants=(TenantSpec("big", weight=3), TenantSpec("small", weight=1)),
            )
        )
        for index in range(12):
            scheduler.enqueue(QueryHandle(f"b{index}", tenant="big"))
            scheduler.enqueue(QueryHandle(f"s{index}", tenant="small"))
        order = []
        for _ in range(8):
            handle, tenant = scheduler.next_task()
            order.append(tenant)
            scheduler.task_done(tenant)
        assert order.count("big") == 6
        assert order.count("small") == 2

    def test_priority_orders_within_tenant(self):
        scheduler = FairShareScheduler(self.config())
        low = QueryHandle("low", priority=0)
        high = QueryHandle("high", priority=5)
        scheduler.enqueue(low)
        scheduler.enqueue(high)
        first, _ = scheduler.next_task()
        assert first is high

    def test_global_queue_limit_rejects(self):
        scheduler = FairShareScheduler(self.config(queue_limit=2))
        scheduler.enqueue(QueryHandle("a"))
        scheduler.enqueue(QueryHandle("b"))
        with pytest.raises(QueueFullError, match="admission queue is full"):
            scheduler.enqueue(QueryHandle("c"))

    def test_tenant_queue_limit_rejects(self):
        scheduler = FairShareScheduler(
            self.config(tenants=(TenantSpec("t", queue_limit=1),))
        )
        scheduler.enqueue(QueryHandle("a", tenant="t"))
        with pytest.raises(QueueFullError, match="tenant 't'"):
            scheduler.enqueue(QueryHandle("b", tenant="t"))
        scheduler.enqueue(QueryHandle("c", tenant="other"))  # unaffected

    def test_cancelled_entries_are_skipped_and_accounted(self):
        scheduler = FairShareScheduler(self.config())
        doomed = QueryHandle("doomed")
        live = QueryHandle("live")
        scheduler.enqueue(doomed)
        scheduler.enqueue(live)
        doomed.cancel()  # through the handle alone — no scheduler call
        handle, tenant = scheduler.next_task()
        assert handle is live
        scheduler.task_done(tenant)
        assert scheduler.queued_total == 0

    def test_idle_tenant_banks_no_credit(self):
        """A tenant that sat idle re-joins at current virtual time: it
        cannot burst ahead of a tenant that kept the system busy."""
        scheduler = FairShareScheduler(self.config(queue_limit=100))
        for index in range(6):
            scheduler.enqueue(QueryHandle(f"b{index}", tenant="busy"))
        for _ in range(4):
            _, tenant = scheduler.next_task()
            scheduler.task_done(tenant)
        scheduler.enqueue(QueryHandle("late", tenant="idle"))
        scheduler.enqueue(QueryHandle("b-more", tenant="busy"))
        winners = []
        for _ in range(3):
            _, tenant = scheduler.next_task()
            scheduler.task_done(tenant)
            winners.append(tenant)
        # Equal weights from equal pass values → alternation, not an
        # idle-tenant monopoly.
        assert winners.count("idle") <= 2
        assert "busy" in winners

    def test_capacity_callable_bounds_dispatch(self):
        scheduler = FairShareScheduler(self.config())
        scheduler.enqueue(QueryHandle("a"))
        scheduler.enqueue(QueryHandle("b"))
        assert scheduler.next_task(capacity=lambda: 1) is not None
        # capacity 1 is in use: the next call must time out, not dispatch.
        assert scheduler.next_task(capacity=lambda: 1, timeout=0.1) is None

    def test_close_cancels_queued(self):
        scheduler = FairShareScheduler(self.config())
        handle = QueryHandle("a")
        scheduler.enqueue(handle)
        scheduler.close(cancel_queued=True)
        assert handle.status() is HandleState.CANCELLED
        assert scheduler.next_task() is None


class TestQueryService:
    def test_concurrent_tenants_complete(self, db):
        config = ServiceConfig(max_concurrency=3, queue_limit=64)
        with QueryService(db, config) as service:
            handles = [
                service.submit(TEMPORAL, tenant=f"t{index % 4}")
                for index in range(12)
            ]
            results = [handle.result(timeout=60) for handle in handles]
        assert len({tuple(map(tuple, r.rows)) for r in results}) == 1
        assert all(r.rows for r in results)

    def test_plain_sql_passthrough_works_too(self, db):
        with QueryService(db, ServiceConfig(max_concurrency=2)) as service:
            result = service.query("SELECT K FROM R WHERE K = 1", timeout=60)
        assert result.rows

    def test_queue_full_sheds_with_metric(self, db):
        config = ServiceConfig(max_concurrency=1, queue_limit=1)
        service = QueryService(db, config)
        try:
            with pytest.raises(QueueFullError):
                # Far more submissions than one worker + one queue slot can
                # hold at once.
                for _ in range(50):
                    service.submit(TEMPORAL)
            counters = service.metrics.to_dict()["counters"]
            assert counters.get("service_shed_total", 0) >= 1
            assert counters.get("service_shed_queue_full_total", 0) >= 1
            # The bounded queue stayed bounded.
            assert service.scheduler.queued_total <= 1
        finally:
            service.close()

    def test_sick_backend_sheds_new_admissions(self, db):
        """Retry-exhausted failures classify the backend SICK; the next
        submission is refused with BackendSickError, not queued."""
        injector = FaultInjector(
            FaultPolicy(round_trip_p=1.0, load_chunk_p=1.0), seed=7
        )
        config = ServiceConfig(
            max_concurrency=1,
            health=HealthPolicy(min_samples=2, window_seconds=300.0),
        )
        tango_config = TangoConfig(
            retry=RetryPolicy(
                max_attempts=2, base_delay_seconds=0.0, max_delay_seconds=0.0
            ),
            fallback=False,
        )
        service = QueryService(
            db, config, tango_config=tango_config, fault_injector=injector
        )
        try:
            handles = [service.submit(TEMPORAL) for _ in range(3)]
            for handle in handles:
                with pytest.raises(Exception):
                    handle.result(timeout=60)
            assert service.health.classify() is BackendState.SICK
            with pytest.raises(BackendSickError):
                service.submit(TEMPORAL)
            counters = service.metrics.to_dict()["counters"]
            assert counters.get("service_shed_total", 0) >= 1
            assert counters.get("service_shed_sick_total", 0) >= 1
        finally:
            service.close()

    def test_cancel_queued_query(self, db):
        config = ServiceConfig(max_concurrency=1, queue_limit=32)
        with QueryService(db, config) as service:
            handles = [service.submit(TEMPORAL) for _ in range(6)]
            victim = handles[-1]
            assert victim.cancel()
            with pytest.raises(QueryCancelledError):
                victim.result(timeout=60)
            for handle in handles[:-1]:
                handle.result(timeout=60)
        counters = service.metrics.to_dict()["counters"]
        assert counters.get("service_completed_total", 0) == 5

    def test_priority_beats_fifo_under_one_worker(self, db):
        config = ServiceConfig(max_concurrency=1, queue_limit=64)
        with QueryService(db, config) as service:
            # Saturate the single worker, then race a high-priority query
            # against earlier-submitted low-priority ones.
            backlog = [service.submit(TEMPORAL, priority=0) for _ in range(8)]
            urgent = service.submit(TEMPORAL, priority=10)
            urgent.result(timeout=60)
            for handle in backlog:
                handle.result(timeout=60)
        # Deterministic post-hoc check on the monotonic start stamps: of
        # the backlog still queued when urgent arrived, none may start
        # before it — priority jumped the queue.
        contended = [
            handle
            for handle in backlog
            if handle.started_at > urgent.submitted_at
        ]
        assert contended, "backlog drained before the urgent submission"
        assert urgent.started_at < min(
            handle.started_at for handle in contended
        )

    def test_latency_metrics_per_tenant(self, db):
        with QueryService(db, ServiceConfig(max_concurrency=2)) as service:
            service.query(TEMPORAL, tenant="alice", timeout=60)
            service.query(TEMPORAL, tenant="bob", timeout=60)
            histograms = service.metrics.to_dict()["histograms"]
            assert histograms["service_latency_seconds.alice"]["count"] == 1
            assert histograms["service_latency_seconds.bob"]["count"] == 1
            assert histograms["service_latency_seconds"]["count"] == 2

    def test_snapshot_is_json_ready(self, db):
        import json

        with QueryService(db, ServiceConfig(max_concurrency=2)) as service:
            service.query(TEMPORAL, tenant="t", timeout=60)
            frame = service.snapshot()
        json.dumps(frame)
        assert frame["tenants"]["t"]["dispatched"] == 1
        assert frame["health"]["state"] == "healthy"

    def test_close_drains_queued_queries(self, db):
        service = QueryService(db, ServiceConfig(max_concurrency=1))
        handles = [service.submit(TEMPORAL) for _ in range(4)]
        service.close(drain=True)
        assert all(
            handle.status() is HandleState.DONE for handle in handles
        )


class TestTangoServiceIntegration:
    def test_tango_submit_routes_through_service(self, db):
        config = TangoConfig(service=ServiceConfig(max_concurrency=2))
        with Tango(db, config=config) as tango:
            handles = [tango.submit(TEMPORAL, tenant="t") for _ in range(4)]
            results = [handle.result(timeout=60) for handle in handles]
            assert tango.service is not None
            assert all(r.rows for r in results)
        assert tango.service.closed

    def test_tango_query_sugar_in_service_mode(self, db):
        config = TangoConfig(service=ServiceConfig(max_concurrency=2))
        with Tango(db, config=config) as tango:
            result = tango.query(TEMPORAL)
            assert result.rows

    def test_inline_submit_returns_terminal_handle(self, db):
        with Tango(db) as tango:
            handle = tango.submit(TEMPORAL)
            assert handle.done
            assert handle.status() is HandleState.DONE
            assert handle.result().rows

    def test_inline_submit_failure_lands_on_handle(self, db):
        with Tango(db) as tango:
            handle = tango.submit("VALIDTIME SELECT NOPE FROM MISSING")
            assert handle.status() is HandleState.FAILED
            with pytest.raises(Exception):
                handle.result()


class TestRunningCancellation:
    def test_abort_probe_stops_execution_at_batch_boundary(self, db):
        """The engine's cooperative abort: a probe that turns non-None
        mid-execution raises QueryCancelledError at the next boundary."""
        checks = {"count": 0}

        def probe():
            checks["count"] += 1
            if checks["count"] > 1:
                return "client cancelled"
            return None

        with Tango(db, config=TangoConfig(batch_size=1)) as tango:
            with pytest.raises(QueryCancelledError, match="client cancelled"):
                tango.run(TEMPORAL, abort=probe)
            counters = tango.metrics.to_dict()["counters"]
            assert counters.get("queries_cancelled", 0) == 1
            # Cooperative abort must tear down cleanly: no temp tables.
            leaked = [
                name
                for name in db.list_tables()
                if name.upper().startswith("TANGO_TMP")
            ]
            assert not leaked
            # The instance survives and still answers.
            assert tango.query(TEMPORAL).rows

    def test_running_query_cancels_and_worker_survives(self, db):
        """A handle cancelled the instant it starts running aborts with
        QueryCancelledError, and the worker survives to serve more."""
        config = ServiceConfig(max_concurrency=1)
        service = QueryService(
            db, config, tango_config=TangoConfig(batch_size=1)
        )
        try:
            original_mark = QueryHandle.mark_running

            def cancelling_mark(handle):
                outcome = original_mark(handle)
                if outcome:
                    # Deterministically lands while RUNNING, before the
                    # engine's first interrupt check.
                    handle.cancel()
                return outcome

            QueryHandle.mark_running = cancelling_mark
            try:
                handle = service.submit(TEMPORAL)
                with pytest.raises(QueryCancelledError):
                    handle.result(timeout=60)
                assert handle.status() is HandleState.CANCELLED
            finally:
                QueryHandle.mark_running = original_mark
            # The worker thread survived and still serves queries.
            assert service.query(TEMPORAL, timeout=60).rows
            counters = service.metrics.to_dict()["counters"]
            assert counters.get("service_cancelled_total", 0) == 1
        finally:
            service.close()


def test_no_starvation_low_priority_tenant_cannot_block_high(db, monkeypatch):
    """ISSUE acceptance: a weight-1 flood must not starve a weight-8
    tenant — the interactive tenant's queries overtake most of the
    batch backlog."""
    # Floor every query at a few milliseconds: on a fast machine the raw
    # queries finish quicker than the submission loop, the flood drains
    # before the probes are even queued, and the assertion races the
    # hardware instead of testing the scheduler.  The floor keeps the
    # backlog alive so dispatch order is decided by weights alone.
    real_run = Tango.run
    def floored_run(self, query, **kwargs):
        time.sleep(0.005)
        return real_run(self, query, **kwargs)
    monkeypatch.setattr(Tango, "run", floored_run)
    config = ServiceConfig(
        max_concurrency=2,
        queue_limit=256,
        tenants=(
            TenantSpec("batch", weight=1),
            TenantSpec("interactive", weight=8),
        ),
    )
    with QueryService(db, config) as service:
        flood = [service.submit(TEMPORAL, tenant="batch") for _ in range(24)]
        probes = [
            service.submit(TEMPORAL, tenant="interactive") for _ in range(6)
        ]
        for probe in probes:
            probe.result(timeout=120)
        still_queued_flood = sum(1 for handle in flood if not handle.done)
        for handle in flood:
            handle.result(timeout=120)
    # When the last interactive probe finished, a healthy chunk of the
    # earlier-submitted flood was still waiting: weights, not FIFO, ruled.
    assert still_queued_flood >= 4
