"""Unit tests for MiniDB's join planning: method selection, index nested
loops (with local predicates folded into residuals), and multi-way joins."""

import pytest

from repro.dbms.database import MiniDB


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE P (PID INT, EID INT, Tag VARCHAR(4))")
    instance.execute("CREATE TABLE E (EID INT, Name VARCHAR(8), Dept INT)")
    instance.execute(
        "INSERT INTO P VALUES "
        + ", ".join(f"({i % 7}, {i % 5}, 't{i % 3}')" for i in range(40))
    )
    instance.execute(
        "INSERT INTO E VALUES "
        + ", ".join(f"({i}, 'n{i}', {i % 2})" for i in range(5))
    )
    return instance


def reference_join(db, p_filter=lambda r: True, e_filter=lambda r: True):
    p_rows = [r for r in db.table("P").rows if p_filter(r)]
    e_rows = [r for r in db.table("E").rows if e_filter(r)]
    return sorted(
        (p[0], e[1]) for p in p_rows for e in e_rows if p[1] == e[0]
    )


class TestIndexNestedLoop:
    def test_hinted_nl_uses_index_and_is_correct(self, db):
        db.execute("CREATE INDEX E_IX ON E (EID)")
        rows = sorted(db.query(
            "SELECT /*+ USE_NL */ P.PID, E.Name FROM P, E WHERE P.EID = E.EID"
        ))
        assert rows == reference_join(db)

    def test_index_nl_does_less_cpu_work(self, db):
        # Without an index, USE_NL compares every outer row against every
        # inner row; with one, it probes.  Simulated CPU work must drop.
        # (Block I/O can go the other way on a tiny inner table — per-row
        # index fetches vs a one-block scan — which is exactly why real
        # optimizers cost this tradeoff.)
        sql = "SELECT /*+ USE_NL */ P.PID, E.Name FROM P, E WHERE P.EID = E.EID"
        db.meter.reset()
        db.query(sql)
        without_index = db.meter.cpu
        db.execute("CREATE INDEX E_IX ON E (EID)")
        db.meter.reset()
        db.query(sql)
        with_index = db.meter.cpu
        assert with_index < without_index

    def test_inner_local_predicate_still_applied(self, db):
        # The index join bypasses the inner pushdown; its local conjuncts
        # must be enforced as residual filters.
        db.execute("CREATE INDEX E_IX ON E (EID)")
        rows = sorted(db.query(
            "SELECT /*+ USE_NL */ P.PID, E.Name FROM P, E "
            "WHERE P.EID = E.EID AND E.Dept = 1"
        ))
        assert rows == reference_join(db, e_filter=lambda r: r[2] == 1)

    def test_outer_local_predicate_pushed(self, db):
        db.execute("CREATE INDEX E_IX ON E (EID)")
        rows = sorted(db.query(
            "SELECT /*+ USE_NL */ P.PID, E.Name FROM P, E "
            "WHERE P.EID = E.EID AND P.PID = 3"
        ))
        assert rows == reference_join(db, p_filter=lambda r: r[0] == 3)

    def test_cross_side_residual_applied(self, db):
        db.execute("CREATE INDEX E_IX ON E (EID)")
        rows = sorted(db.query(
            "SELECT /*+ USE_NL */ P.PID, E.Name FROM P, E "
            "WHERE P.EID = E.EID AND P.PID < E.Dept + 4"
        ))
        expected = sorted(
            (p[0], e[1])
            for p in db.table("P").rows
            for e in db.table("E").rows
            if p[1] == e[0] and p[0] < e[2] + 4
        )
        assert rows == expected

    def test_derived_inner_never_index_joined(self, db):
        db.execute("CREATE INDEX E_IX ON E (EID)")
        rows = sorted(db.query(
            "SELECT /*+ USE_NL */ P.PID, D.Name FROM P, "
            "(SELECT EID, Name FROM E) D WHERE P.EID = D.EID"
        ))
        assert rows == reference_join(db)


class TestMultiWayJoins:
    def test_three_way_mixed_methods(self, db):
        db.execute("CREATE TABLE D (Dept INT, DeptName VARCHAR(8))")
        db.execute("INSERT INTO D VALUES (0, 'zero'), (1, 'one')")
        for hint in ("", "/*+ USE_NL */", "/*+ USE_MERGE */"):
            rows = sorted(db.query(
                f"SELECT {hint} P.PID, E.Name, D.DeptName FROM P, E, D "
                "WHERE P.EID = E.EID AND E.Dept = D.Dept"
            ))
            expected = sorted(
                (p[0], e[1], d[1])
                for p in db.table("P").rows
                for e in db.table("E").rows
                for d in db.table("D").rows
                if p[1] == e[0] and e[2] == d[0]
            )
            assert rows == expected, hint or "default"

    def test_join_then_group(self, db):
        rows = db.query(
            "SELECT E.Name, COUNT(*) FROM P, E WHERE P.EID = E.EID "
            "GROUP BY E.Name ORDER BY E.Name"
        )
        from collections import Counter

        counts = Counter(
            e[1]
            for p in db.table("P").rows
            for e in db.table("E").rows
            if p[1] == e[0]
        )
        assert rows == sorted(counts.items())
