"""Unit tests for MiniDB save/load."""

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.persistence import load_database, save_database
from repro.errors import DatabaseError


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), "
        "PayRate FLOAT, T1 DATE, T2 DATE)"
    )
    instance.execute(
        "INSERT INTO POSITION VALUES "
        "(1, 'Tom', 12.5, 2, 20), (2, 'O''Brien', 9.0, 5, 10)"
    )
    instance.execute("CREATE INDEX POS_IX ON POSITION (PosID)")
    return instance


class TestRoundTrip:
    def test_rows_survive(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert sorted(restored.table("POSITION").rows) == sorted(
            db.table("POSITION").rows
        )

    def test_schema_types_survive(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        schema = restored.schema_of("POSITION")
        assert schema.type_of("PayRate").value == "float"
        assert schema.type_of("T1").value == "date"
        assert schema["EmpName"].width == 16

    def test_indexes_recreated(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.find_index("POSITION", "PosID") is not None

    def test_quotes_in_strings(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        names = {row[1] for row in restored.table("POSITION").rows}
        assert "O'Brien" in names

    def test_nulls_roundtrip(self, tmp_path):
        db = MiniDB()
        db.execute("CREATE TABLE N (K INT, V INT)")
        db.table("N").bulk_load([(1, None), (2, 5)])
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert sorted(restored.table("N").rows, key=lambda r: r[0]) == [
            (1, None), (2, 5),
        ]

    def test_clustered_order_preserved(self, tmp_path):
        db = MiniDB()
        db.execute("CREATE TABLE S (K INT)")
        db.table("S").bulk_load([(1,), (2,)], order=("K",))
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.clustered_order_of("S") == ("K",)

    def test_temporary_tables_skipped(self, db, tmp_path):
        db.create_table("TMP_X", db.schema_of("POSITION"), temporary=True)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert "TMP_X" not in restored.list_tables()

    def test_load_into_existing_db(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        target = MiniDB()
        target.execute("CREATE TABLE OTHER (X INT)")
        load_database(tmp_path / "snap", target)
        assert set(target.list_tables()) == {"OTHER", "POSITION"}

    def test_missing_catalog_rejected(self, tmp_path):
        with pytest.raises(DatabaseError):
            load_database(tmp_path)

    def test_queries_work_after_reload(self, db, tmp_path):
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        rows = restored.query("SELECT EmpName FROM POSITION WHERE PosID = 1")
        assert rows == [("Tom",)]

    def test_tango_on_restored_db(self, db, tmp_path):
        from repro.core.tango import Tango

        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        tango = Tango(restored)
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        assert len(result.rows) > 0
