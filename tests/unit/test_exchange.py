"""Unit tests for the partition-parallel exchange layer: partition specs,
cut-point selection, the repartition splitter, the exchange cursor's
concat/merge reassembly, failure propagation, and the temp-name/drop
races the parallel engine depends on."""

import threading

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.errors import ExecutionError
from repro.stats.collector import AttributeStats, RelationStats
from repro.stats.histogram import Histogram
from repro.xxl.cursor import Cursor, materialize
from repro.xxl.exchange import (
    ExchangeCursor,
    PartitionSpec,
    RepartitionCursor,
    equal_count_cut_points,
    range_partition_spec,
)
from repro.xxl.sources import IterableCursor, RelationCursor
from repro.xxl.transfer import TransferDCursor, unique_temp_name

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
    ]
)


def rows_for(keys):
    return [(key, key * 10) for key in keys]


class TestPartitionSpec:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ExecutionError):
            PartitionSpec("K", "round-robin", 2, (5.0,))

    def test_rejects_wrong_cut_point_count(self):
        with pytest.raises(ExecutionError):
            PartitionSpec("K", "range", 3, (5.0,))

    def test_rejects_non_increasing_cut_points(self):
        with pytest.raises(ExecutionError):
            PartitionSpec("K", "range", 3, (5.0, 5.0))

    def test_range_assign_uses_half_open_intervals(self):
        spec = PartitionSpec("K", "range", 3, (10.0, 20.0))
        assert spec.assign(9) == 0
        assert spec.assign(10) == 1  # cut point belongs to the upper side
        assert spec.assign(19) == 1
        assert spec.assign(20) == 2
        assert spec.assign(-100) == 0
        assert spec.assign(10_000) == 2

    def test_hash_assign_covers_every_partition(self):
        spec = PartitionSpec("K", "hash", 4)
        indexes = {spec.assign(value) for value in range(100)}
        assert indexes == {0, 1, 2, 3}
        assert all(0 <= spec.assign(v) < 4 for v in range(100))

    def test_bounds_open_at_the_extremes(self):
        spec = PartitionSpec("K", "range", 3, (10.0, 20.0))
        assert spec.bounds(0) == (None, 10.0)
        assert spec.bounds(1) == (10.0, 20.0)
        assert spec.bounds(2) == (20.0, None)

    def test_predicates_cover_the_whole_value_space(self):
        spec = PartitionSpec("K", "range", 3, (10.0, 20.0))
        predicates = spec.predicates_sql("T")
        assert predicates == [
            "T.K < 10",
            "T.K >= 10 AND T.K < 20",
            "T.K >= 20",
        ]

    def test_single_partition_predicate_is_unbounded(self):
        spec = PartitionSpec("K", "range", 1, ())
        assert spec.predicates_sql("T") == ["1 = 1"]

    def test_hash_spec_has_no_sql_form(self):
        with pytest.raises(ExecutionError):
            PartitionSpec("K", "hash", 2).predicates_sql("T")


class TestCutPoints:
    def test_uniform_histogram_splits_evenly(self):
        histogram = Histogram(bounds=(0.0, 10.0, 20.0, 30.0, 40.0),
                              counts=(10, 10, 10, 10))
        assert equal_count_cut_points(histogram, 4) == [10.0, 20.0, 30.0]

    def test_skewed_histogram_interpolates_within_buckets(self):
        # 90 of 100 values in [0, 10): the median lands inside bucket 0.
        histogram = Histogram(bounds=(0.0, 10.0, 20.0), counts=(90, 10))
        (point,) = equal_count_cut_points(histogram, 2)
        assert 0.0 < point < 10.0
        assert point == pytest.approx(50 / 90 * 10)

    def test_degenerate_inputs_yield_no_points(self):
        histogram = Histogram(bounds=(0.0, 1.0), counts=(0,))
        assert equal_count_cut_points(histogram, 4) == []


def stats_for(cardinality, distinct=100, histogram=None, bounds=(0.0, 100.0)):
    return RelationStats(
        cardinality=cardinality,
        avg_row_size=16,
        attributes={
            "k": AttributeStats(
                name="K",
                min_value=bounds[0],
                max_value=bounds[1],
                distinct=distinct,
                histogram=histogram,
            )
        },
    )


class TestRangePartitionSpec:
    def test_uniform_split_from_min_max(self):
        spec = range_partition_spec("K", stats_for(10_000), 4)
        assert spec is not None
        assert spec.degree == 4
        assert spec.cut_points == (25.0, 50.0, 75.0)

    def test_histogram_beats_min_max(self):
        histogram = Histogram(bounds=(0.0, 10.0, 100.0), counts=(900, 100))
        spec = range_partition_spec("K", stats_for(10_000, histogram=histogram), 2)
        assert spec is not None
        # The equal-count point sits in the dense low bucket, not at 50.
        assert spec.cut_points[0] < 10.0

    def test_small_inputs_stay_serial(self):
        assert range_partition_spec("K", stats_for(100), 4) is None

    def test_degree_capped_by_cardinality(self):
        spec = range_partition_spec("K", stats_for(300), 4, min_rows=128)
        assert spec is not None
        assert spec.degree == 2

    def test_degree_capped_by_distinct_values(self):
        spec = range_partition_spec("K", stats_for(10_000, distinct=2), 4)
        assert spec is not None and spec.degree == 2
        assert range_partition_spec("K", stats_for(10_000, distinct=1), 4) is None

    def test_constant_attribute_not_partitionable(self):
        assert (
            range_partition_spec("K", stats_for(10_000, bounds=(5.0, 5.0)), 4)
            is None
        )


class ClosableCursor(IterableCursor):
    """An IterableCursor that records whether it was closed."""

    def __init__(self, schema, rows):
        super().__init__(schema, rows)
        self.closed_count = 0

    def _close(self):
        self.closed_count += 1


class TestRepartitionCursor:
    def test_routes_by_hash_and_loses_nothing(self):
        rows = rows_for(range(50))
        spec = PartitionSpec("K", "hash", 3)
        splitter = RepartitionCursor(IterableCursor(SCHEMA, rows), spec)
        routed = [materialize(output) for output in splitter.outputs]
        assert sorted(row for part in routed for row in part) == sorted(rows)
        for index, part in enumerate(routed):
            assert all(spec.assign(row[0]) == index for row in part)

    def test_groups_stay_whole(self):
        rows = rows_for([1, 2, 1, 3, 2, 1])
        splitter = RepartitionCursor(
            IterableCursor(SCHEMA, rows), PartitionSpec("K", "hash", 2)
        )
        routed = [materialize(output) for output in splitter.outputs]
        for key in (1, 2, 3):
            holders = [i for i, part in enumerate(routed)
                       if any(row[0] == key for row in part)]
            assert len(holders) == 1

    def test_outputs_adopt_input_schema(self):
        splitter = RepartitionCursor(
            IterableCursor(SCHEMA, rows_for([1])), PartitionSpec("K", "hash", 2)
        )
        output = splitter.outputs[0].init()
        assert output.schema.names == ("K", "V")

    def test_shared_input_closed_with_last_output(self):
        source = ClosableCursor(SCHEMA, rows_for(range(10)))
        splitter = RepartitionCursor(source, PartitionSpec("K", "hash", 3))
        for output in splitter.outputs:
            materialize(output)
        assert source.closed_count == 1


class FailingCursor(Cursor):
    """Produces a few rows, then raises."""

    def __init__(self, schema, rows, error):
        super().__init__(schema)
        self._rows = list(rows)
        self._error = error

    def _open(self):
        pass

    def _next(self):
        if self._rows:
            return self._rows.pop(0)
        raise self._error


class TestExchangeCursor:
    def test_concat_preserves_partition_order(self):
        pipelines = [
            IterableCursor(SCHEMA, rows_for(range(0, 10))),
            IterableCursor(SCHEMA, rows_for(range(10, 20))),
            IterableCursor(SCHEMA, rows_for(range(20, 30))),
        ]
        exchange = ExchangeCursor(pipelines, workers=2)
        assert materialize(exchange) == rows_for(range(30))

    def test_merge_reassembles_global_order(self):
        rows = rows_for(range(40))
        spec = PartitionSpec("K", "hash", 3)
        parts = [[], [], []]
        for row in rows:
            parts[spec.assign(row[0])].append(row)
        pipelines = [IterableCursor(SCHEMA, part) for part in parts]
        exchange = ExchangeCursor(pipelines, workers=3, merge_keys=("K",))
        assert materialize(exchange) == rows

    def test_merge_breaks_ties_by_partition_index(self):
        left = [(1, 100), (2, 100)]
        right = [(1, 200), (2, 200)]
        exchange = ExchangeCursor(
            [IterableCursor(SCHEMA, left), IterableCursor(SCHEMA, right)],
            workers=2,
            merge_keys=("K",),
        )
        assert materialize(exchange) == [(1, 100), (1, 200), (2, 100), (2, 200)]

    def test_empty_partitions_still_publish_schema(self):
        exchange = ExchangeCursor(
            [IterableCursor(SCHEMA, []), IterableCursor(SCHEMA, [])],
            workers=2,
        )
        assert materialize(exchange) == []
        assert exchange.schema.names == ("K", "V")

    def test_empty_merge_does_not_crash(self):
        exchange = ExchangeCursor(
            [IterableCursor(SCHEMA, [])], workers=1, merge_keys=("K",)
        )
        assert materialize(exchange) == []

    def test_workers_capped_by_partitions(self):
        exchange = ExchangeCursor([IterableCursor(SCHEMA, [])], workers=8)
        assert exchange.workers == 1

    def test_needs_at_least_one_partition(self):
        with pytest.raises(ExecutionError):
            ExchangeCursor([], workers=2)

    def test_partition_error_reaches_the_consumer(self):
        boom = ValueError("partition exploded")
        pipelines = [
            IterableCursor(SCHEMA, rows_for(range(1000))),
            FailingCursor(SCHEMA, rows_for(range(3)), boom),
        ]
        exchange = ExchangeCursor(pipelines, workers=2, merge_keys=("K",))
        with pytest.raises(ValueError, match="partition exploded"):
            materialize(exchange)

    def test_failed_partition_cancels_siblings(self):
        # The sibling is unbounded; only cancellation lets close() return.
        def endless():
            value = 0
            while True:
                yield (value, value)
                value += 1

        pipelines = [
            IterableCursor(SCHEMA, endless()),
            FailingCursor(SCHEMA, [], RuntimeError("dead partition")),
        ]
        exchange = ExchangeCursor(pipelines, workers=2, queue_batches=1)
        exchange.init()
        with pytest.raises(RuntimeError, match="dead partition"):
            while exchange.next_batch(64):
                pass
        exchange.close()  # must join the endless producer, not hang

    def test_close_without_init_closes_pipelines(self):
        sources = [ClosableCursor(SCHEMA, []), ClosableCursor(SCHEMA, [])]
        exchange = ExchangeCursor(list(sources), workers=2)
        exchange.close()
        assert [source.closed_count for source in sources] == [1, 1]

    def test_efficiency_computed_at_close(self):
        exchange = ExchangeCursor(
            [IterableCursor(SCHEMA, rows_for(range(100)))], workers=1
        )
        materialize(exchange)
        assert 0.0 <= exchange.parallel_efficiency <= 1.0


class TestUniqueTempName:
    def test_contains_pid(self):
        import os

        assert f"_{os.getpid()}_" in unique_temp_name()

    def test_unique_across_threads(self):
        names: list[str] = []
        lock = threading.Lock()

        def grab():
            for _ in range(200):
                name = unique_temp_name()
                with lock:
                    names.append(name)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(names) == len(set(names))


class TestDropRace:
    def make_transfer(self, connection):
        source = RelationCursor(SCHEMA, rows_for(range(10)))
        return TransferDCursor(source, connection, unique_temp_name())

    def test_drop_is_idempotent(self):
        connection = Connection(MiniDB())
        transfer = self.make_transfer(connection).init()
        transfer.drop()
        transfer.drop()  # second drop is a no-op, not an error
        assert transfer.table_name not in connection.db.list_tables()

    def test_concurrent_drops_drop_exactly_once(self):
        connection = Connection(MiniDB())
        transfer = self.make_transfer(connection).init()
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            try:
                transfer.drop()
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=race) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert transfer.table_name not in connection.db.list_tables()
