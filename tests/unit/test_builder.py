"""Unit tests for the fluent plan builder."""

import pytest

from repro.algebra.builder import PlanBuilder, from_operator, scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    Join,
    Location,
    Project,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)


@pytest.fixture
def db(figure3_db):
    return figure3_db


class TestScan:
    def test_scan_reads_catalog(self, db):
        plan = scan(db, "POSITION").build()
        assert plan.table == "POSITION"
        assert plan.schema.names == ("PosID", "EmpName", "T1", "T2")


class TestChaining:
    def test_operators_default_to_current_location(self, db):
        plan = scan(db, "POSITION").select(Comparison("<", col("T1"), lit(5))).build()
        assert isinstance(plan, Select)
        assert plan.location is Location.DBMS

    def test_middleware_after_transfer(self, db):
        plan = (
            scan(db, "POSITION")
            .to_middleware()
            .select(Comparison("<", col("T1"), lit(5)))
            .build()
        )
        assert plan.location is Location.MIDDLEWARE
        assert isinstance(plan.input, TransferM)

    def test_to_middleware_idempotent(self, db):
        builder = scan(db, "POSITION").to_middleware()
        assert builder.to_middleware() is builder

    def test_to_dbms_inserts_transfer_d(self, db):
        plan = scan(db, "POSITION").to_middleware().to_dbms().build()
        assert isinstance(plan, TransferD)

    def test_to_dbms_noop_in_dbms(self, db):
        builder = scan(db, "POSITION")
        assert builder.to_dbms() is builder

    def test_project_names(self, db):
        plan = scan(db, "POSITION").project("PosID", "T1").build()
        assert isinstance(plan, Project)
        assert plan.schema.names == ("PosID", "T1")

    def test_sort(self, db):
        plan = scan(db, "POSITION").sort("PosID", "T1").build()
        assert isinstance(plan, Sort)
        assert plan.keys == ("PosID", "T1")

    def test_taggr_count_sugar(self, db):
        plan = scan(db, "POSITION").taggr(group_by=["PosID"], count="PosID").build()
        assert isinstance(plan, TemporalAggregate)
        assert plan.aggregates[0].output_name == "COUNTofPosID"

    def test_join_of_builders(self, db):
        left = scan(db, "POSITION")
        right = scan(db, "POSITION")
        plan = left.join(right, "PosID", "PosID").build()
        assert isinstance(plan, Join)

    def test_temporal_join(self, db):
        plan = (
            scan(db, "POSITION")
            .temporal_join(scan(db, "POSITION"), "PosID", "PosID")
            .build()
        )
        assert isinstance(plan, TemporalJoin)

    def test_builder_is_immutable(self, db):
        base = scan(db, "POSITION")
        sorted_builder = base.sort("PosID")
        assert base.build() is not sorted_builder.build()
        assert base.build().name == "Scan"

    def test_from_operator_wraps(self, db):
        plan = scan(db, "POSITION").build()
        assert from_operator(plan).build() is plan
