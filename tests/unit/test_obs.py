"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.algebra.builder import scan
from repro.core.engine import ExecutionEngine
from repro.core.feedback import observations_from_trace
from repro.core.plans import compile_plan
from repro.obs import (
    Counter,
    Histogram,
    InstrumentedCursor,
    MetricsRegistry,
    Span,
    Tracer,
    algorithm_name,
    cursor_span,
    execution_trace,
    instrument_plan,
)
from repro.algebra.schema import AttrType, Attribute, Schema
from repro.xxl.sources import RelationCursor


class TestSpan:
    def test_nesting_and_attributes(self):
        tracer = Tracer()
        with tracer.span("query", kind="query") as root:
            with tracer.span("parse", kind="phase") as child:
                child.set(tokens=7)
        assert tracer.spans == [root]
        assert root.children[0].name == "parse"
        assert root.children[0].attributes["tokens"] == 7
        assert root.elapsed_seconds >= root.children[0].elapsed_seconds

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("query") as span:
            span.set(ignored=True)
        assert tracer.spans == []

    def test_attach_adopts_prebuilt_tree(self):
        tracer = Tracer()
        prebuilt = Span("execute", kind="phase", seconds=0.5)
        with tracer.span("query") as root:
            tracer.attach(prebuilt)
        assert prebuilt in root.children

    def test_explicit_seconds_overrides_clock(self):
        span = Span("execute", seconds=1.25)
        assert span.elapsed_seconds == 1.25

    def test_find_and_iter(self):
        root = Span("query", kind="query")
        root.add_child(Span("optimize", kind="phase")).add_child(
            Span("explore", kind="phase")
        )
        assert root.find(name="explore") is not None
        assert root.find(kind="query") is root
        assert root.find(name="missing") is None
        assert len(list(root.iter())) == 3

    def test_to_dict_and_json(self):
        root = Span("query", kind="query", attributes={"sql": "SELECT 1"})
        root.add_child(Span("parse", kind="phase", seconds=0.001))
        exported = root.to_dict()
        assert exported["name"] == "query"
        assert exported["children"][0]["seconds"] == 0.001
        assert json.loads(root.to_json())["attributes"]["sql"] == "SELECT 1"

    def test_render_is_indented(self):
        root = Span("query", seconds=0.001)
        root.add_child(Span("parse", seconds=0.0005))
        lines = root.render().splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  parse")

    def test_drain_clears_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [span.name for span in drained] == ["a"]
        assert tracer.spans == []


class TestMetrics:
    def test_counter_get_or_create(self):
        metrics = MetricsRegistry()
        metrics.counter("queries").inc()
        metrics.counter("queries").inc(2)
        assert metrics.value("queries") == 3
        assert metrics.value("never_touched") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_histogram_summary(self):
        histogram = Histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("empty").mean == 0.0

    def test_to_dict_shape(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc(5)
        metrics.histogram("b").observe(0.5)
        exported = metrics.to_dict()
        assert exported["counters"] == {"a": 5}
        assert exported["histograms"]["b"]["count"] == 1
        assert metrics.flush() == exported

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        metrics.reset()
        assert metrics.to_dict() == {"counters": {}, "histograms": {}}


def _relation_cursor():
    schema = Schema(
        [Attribute("K", AttrType.INT), Attribute("V", AttrType.INT)]
    )
    return RelationCursor(schema, [(1, 10), (2, 20), (3, 30)])


class TestInstrumentedCursor:
    def test_counts_and_rows(self):
        wrapper = InstrumentedCursor(_relation_cursor())
        rows = list(wrapper.init())
        assert rows == [(1, 10), (2, 20), (3, 30)]
        assert wrapper.next_calls == 3
        assert wrapper.rows_produced == 3
        assert wrapper.wall_seconds > 0.0
        assert wrapper.init_seconds >= 0.0

    def test_schema_delegates_to_wrapped(self):
        cursor = _relation_cursor()
        wrapper = InstrumentedCursor(cursor)
        wrapper.init()
        assert wrapper.schema is cursor.schema

    def test_context_manager_protocol(self):
        with InstrumentedCursor(_relation_cursor()) as wrapper:
            assert wrapper.has_next()
            assert wrapper.next() == (1, 10)

    def test_algorithm_name_unwraps(self):
        wrapper = InstrumentedCursor(_relation_cursor())
        assert algorithm_name(wrapper) == "RELATION^M"


class TestExecutionTrace:
    @pytest.fixture
    def execution_plan(self, figure3_db, figure3_connection):
        plan = (
            scan(figure3_db, "POSITION")
            .project("PosID", "T1", "T2")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .build()
        )
        return compile_plan(plan, figure3_connection)

    def test_instrument_plan_wraps_every_cursor(self, execution_plan):
        steps = instrument_plan(execution_plan)
        assert all(isinstance(step, InstrumentedCursor) for step in steps)
        # Interior children are wrapped too.
        taggr = steps[-1].wrapped
        assert isinstance(taggr._input, InstrumentedCursor)

    def test_trace_without_instrumentation(self, execution_plan):
        outcome = ExecutionEngine().execute(execution_plan)
        trace = outcome.trace
        assert trace is not None
        assert trace.name == "execute"
        transfer = trace.find(kind="transfer")
        assert transfer is not None
        assert transfer.attributes["direction"] == "up"
        assert transfer.attributes["tuples"] == 3
        # Uninstrumented spans have no next-call counts.
        assert "next_calls" not in transfer.attributes

    def test_trace_with_instrumentation(self, execution_plan):
        tracer = Tracer()
        outcome = ExecutionEngine().execute(
            execution_plan, tracer=tracer, instrument=True
        )
        trace = outcome.trace
        assert tracer.spans == [trace]
        taggr = trace.find(name="TAGGR^M")
        assert taggr is not None
        # The engine drains batch-wise, so the signal is in batch_calls.
        assert taggr.attributes["batch_calls"] >= 1
        assert taggr.attributes["rows"] == len(outcome.rows)
        assert taggr.elapsed_seconds > 0.0

    def test_plain_tracing_does_not_wrap_cursors(self, execution_plan):
        """tracing=True must stay cheap: spans without per-next() timing."""
        tracer = Tracer()
        outcome = ExecutionEngine().execute(execution_plan, tracer=tracer)
        assert not any(
            isinstance(step, InstrumentedCursor) for step in execution_plan.steps
        )
        taggr = outcome.trace.find(name="TAGGR^M")
        assert taggr is not None
        assert taggr.attributes["rows"] == len(outcome.rows)
        assert "next_calls" not in taggr.attributes

    def test_observations_derive_from_trace(self, execution_plan):
        outcome = ExecutionEngine().execute(execution_plan)
        derived = observations_from_trace(outcome.trace)
        assert [o.direction for o in derived] == [
            o.direction for o in outcome.observations
        ]
        assert derived and derived[0].tuples == 3

    def test_cursor_span_shared_subtree_emitted_once(self):
        cursor = InstrumentedCursor(_relation_cursor())
        list(cursor.init())
        seen = set()
        first = cursor_span(cursor, seen)
        assert first is not None
        assert cursor_span(cursor, seen) is None

    def test_execution_trace_counts_steps(self, execution_plan):
        ExecutionEngine().execute(execution_plan)
        trace = execution_trace(execution_plan, elapsed_seconds=0.0)
        assert trace.attributes["steps"] == len(execution_plan.steps)
