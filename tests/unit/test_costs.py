"""Unit tests for the Figure 6 cost formulas and the plan coster."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import And, Comparison, col, lit
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.optimizer.costs import (
    AlgorithmCosts,
    CostFactors,
    PlanCoster,
    predicate_complexity,
)
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.collector import RelationStats, StatisticsCollector


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE R (K INT, T1 DATE, T2 DATE)")
    rows = ", ".join(f"({i % 20}, {i}, {i + 10})" for i in range(500))
    instance.execute(f"INSERT INTO R VALUES {rows}")
    instance.analyze("R")
    return instance


@pytest.fixture
def coster(db):
    estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
    return PlanCoster(estimator, CostFactors())


def stats(cardinality, width=10):
    return RelationStats(cardinality=cardinality, avg_row_size=width)


class TestFormulas:
    def test_transfer_m_two_term_formula(self):
        # Section 3.2: "the number and size of the tuples transferred".
        algorithms = AlgorithmCosts(CostFactors(p_tm=2.0, p_tmr=5.0))
        assert algorithms.transfer_m(stats(100, 10)) == 100 * 5.0 + 2000.0

    def test_transfer_d_two_term_formula(self):
        algorithms = AlgorithmCosts(CostFactors(p_td=3.0, p_tdr=1.0))
        assert algorithms.transfer_d(stats(10, 10)) == 10 * 1.0 + 300.0

    def test_transfer_cost_monotone_in_rows_at_fixed_bytes(self):
        algorithms = AlgorithmCosts(CostFactors())
        few_wide = algorithms.transfer_m(stats(10, 100))
        many_narrow = algorithms.transfer_m(stats(100, 10))
        assert many_narrow > few_wide  # same bytes, 10x the tuples

    def test_filter_m_scales_with_predicate_complexity(self):
        algorithms = AlgorithmCosts(CostFactors(p_sem=1.0))
        simple = Comparison("<", col("T1"), lit(5))
        compound = And((simple, Comparison(">", col("T2"), lit(1))))
        assert algorithms.filter_m(compound, stats(10)) == pytest.approx(
            2 * algorithms.filter_m(simple, stats(10))
        )

    def test_taggr_m_combines_input_and_output(self):
        algorithms = AlgorithmCosts(CostFactors(p_taggm1=1.0, p_taggm2=2.0))
        assert algorithms.taggr_m(stats(10, 10), stats(5, 10)) == 100 + 100

    def test_taggr_d_uses_own_factors(self):
        algorithms = AlgorithmCosts(CostFactors(p_taggd1=5.0, p_taggd2=0.0))
        assert algorithms.taggr_d(stats(10, 10), stats(1, 10)) == 500.0

    def test_sort_cost_superlinear(self):
        algorithms = AlgorithmCosts(CostFactors())
        small = algorithms.sort_m(stats(100))
        large = algorithms.sort_m(stats(10_000))
        assert large > 100 * small / 100  # grows faster than linear per byte

    def test_predicate_complexity_counts_comparisons(self):
        predicate = And(
            (
                Comparison("<", col("A"), lit(1)),
                Comparison(">", col("B"), lit(2)),
                Comparison("=", col("C"), lit(3)),
            )
        )
        assert predicate_complexity(predicate) == 3.0


class TestPlanCoster:
    def test_dbms_selection_is_free(self, db, coster):
        plan = scan(db, "R").select(Comparison("<", col("T1"), lit(100))).build()
        assert coster.node_cost(plan) == 0.0

    def test_middleware_selection_costs(self, db, coster):
        plan = (
            scan(db, "R")
            .to_middleware()
            .select(Comparison("<", col("T1"), lit(100)))
            .build()
        )
        assert coster.node_cost(plan) > 0.0

    def test_dbms_projection_is_free(self, db, coster):
        plan = scan(db, "R").project("K").build()
        assert coster.node_cost(plan) == 0.0

    def test_cost_sums_subtree(self, db, coster):
        inner = scan(db, "R").sort("K").build()
        outer = scan(db, "R").sort("K").to_middleware().build()
        assert coster.cost(outer) > coster.cost(inner)

    def test_taggr_cheaper_in_middleware(self, db, coster):
        in_dbms = scan(db, "R").taggr(group_by=["K"], count="K").build()
        in_mw = (
            scan(db, "R")
            .sort("K", "T1")
            .to_middleware()
            .taggr(group_by=["K"], count="K")
            .build()
        )
        # Middleware variant pays sort + transfer but wins overall, matching
        # the paper's headline result.
        assert coster.cost(in_mw) < coster.cost(in_dbms)

    def test_breakdown_covers_all_nodes(self, db, coster):
        plan = scan(db, "R").sort("K").to_middleware().build()
        breakdown = coster.breakdown(plan)
        assert len(breakdown) == plan.size()
        assert breakdown[0][0].startswith("T^M")

    def test_transfer_cost_scales_with_argument(self, db, coster):
        full = scan(db, "R").to_middleware().build()
        projected = scan(db, "R").project("K").to_middleware().build()
        assert coster.node_cost(projected) < coster.node_cost(full)
