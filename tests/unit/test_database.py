"""Unit tests for MiniDB DDL/DML and SQL query execution (planner included)."""

import pytest

from repro.dbms.database import MiniDB
from repro.errors import CatalogError, DatabaseError, SQLSyntaxError


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE T (K INT, V INT, Name VARCHAR(8))")
    instance.execute(
        "INSERT INTO T VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c'), (2, 25, 'd')"
    )
    return instance


class TestDDL:
    def test_create_and_list(self, db):
        assert db.list_tables() == ["T"]

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE T (X INT)")

    def test_drop(self, db):
        db.execute("DROP TABLE T")
        assert db.list_tables() == []

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE NOPE")

    def test_drop_if_exists(self, db):
        assert db.execute("DROP TABLE IF EXISTS NOPE") == 0

    def test_create_index_and_find(self, db):
        db.execute("CREATE INDEX IX ON T (K)")
        assert db.find_index("T", "K") is not None
        assert db.find_index("T", "V") is None

    def test_analyze_populates_catalog(self, db):
        db.execute("ANALYZE TABLE T COMPUTE STATISTICS")
        stats = db.statistics_of("T")
        assert stats.cardinality == 4
        assert stats.column("K").num_distinct == 3

    def test_analyze_records_index_availability(self, db):
        db.execute("CREATE INDEX IX ON T (K)")
        db.execute("ANALYZE TABLE T COMPUTE STATISTICS")
        assert db.statistics_of("T").column("K").has_index


class TestDML:
    def test_insert_returns_count(self, db):
        assert db.execute("INSERT INTO T VALUES (9, 90, 'z')") == 1

    def test_insert_arity_checked(self, db):
        with pytest.raises(DatabaseError):
            db.execute("INSERT INTO T VALUES (1, 2)")

    def test_insert_select(self, db):
        db.execute("CREATE TABLE U (K INT, V INT, Name VARCHAR(8))")
        moved = db.execute("INSERT INTO U SELECT K, V, Name FROM T WHERE K = 2")
        assert moved == 2
        assert len(db.query("SELECT * FROM U")) == 2

    def test_delete_with_predicate(self, db):
        removed = db.execute("DELETE FROM T WHERE K = 2")
        assert removed == 2
        assert len(db.query("SELECT * FROM T")) == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM T") == 4

    def test_delete_rebuilds_indexes(self, db):
        db.execute("CREATE INDEX IX ON T (K)")
        db.execute("DELETE FROM T WHERE K = 2")
        assert list(db.find_index("T", "K").lookup(2)) == []


class TestQueries:
    def test_projection_and_alias(self, db):
        rows = db.query("SELECT V AS Value FROM T WHERE K = 1")
        assert rows == [(10,)]

    def test_where_and(self, db):
        rows = db.query("SELECT Name FROM T WHERE K = 2 AND V > 21")
        assert rows == [("d",)]

    def test_order_by_multiple_keys(self, db):
        rows = db.query("SELECT K, V FROM T ORDER BY K DESC, V ASC")
        assert rows == [(3, 30), (2, 20), (2, 25), (1, 10)]

    def test_order_by_unprojected_column(self, db):
        rows = db.query("SELECT Name FROM T ORDER BY V DESC")
        assert rows == [("c",), ("d",), ("b",), ("a",)]

    def test_group_by(self, db):
        rows = db.query("SELECT K, COUNT(*), SUM(V) FROM T GROUP BY K ORDER BY K")
        assert rows == [(1, 1, 10.0), (2, 2, 45.0), (3, 1, 30.0)]

    def test_group_by_having(self, db):
        rows = db.query("SELECT K FROM T GROUP BY K HAVING COUNT(*) > 1")
        assert rows == [(2,)]

    def test_scalar_aggregate(self, db):
        assert db.query("SELECT COUNT(*), MAX(V) FROM T") == [(4, 30)]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT K FROM T ORDER BY K")
        assert rows == [(1,), (2,), (3,)]

    def test_expression_in_select(self, db):
        rows = db.query("SELECT K + 100 FROM T WHERE Name = 'a'")
        assert rows == [(101,)]

    def test_aggregate_in_expression(self, db):
        rows = db.query("SELECT COUNT(*) * 2 FROM T")
        assert rows == [(8,)]

    def test_self_join_with_aliases(self, db):
        rows = db.query(
            "SELECT A.Name, B.Name FROM T A, T B "
            "WHERE A.K = B.K AND A.V < B.V ORDER BY A.Name"
        )
        assert rows == [("b", "d")]

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT K FROM T A, T B WHERE A.K = B.K")

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT 1 FROM T, T")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT Bogus FROM T")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT 1 FROM MISSING")

    def test_star_expansion_disambiguates(self, db):
        rows = db.query("SELECT * FROM T A, T B WHERE A.K = B.K AND A.K = 1")
        assert len(rows) == 1
        assert len(rows[0]) == 6

    def test_derived_table(self, db):
        rows = db.query(
            "SELECT D.K FROM (SELECT K FROM T WHERE V > 15) D ORDER BY D.K"
        )
        assert rows == [(2,), (2,), (3,)]

    def test_union_dedups(self, db):
        rows = db.query("SELECT K FROM T UNION SELECT K FROM T ORDER BY K")
        assert rows == [(1,), (2,), (3,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query("SELECT K FROM T UNION ALL SELECT K FROM T")
        assert len(rows) == 8

    def test_limit(self, db):
        assert len(db.query("SELECT K FROM T ORDER BY K LIMIT 2")) == 2

    def test_query_requires_select(self, db):
        with pytest.raises(DatabaseError):
            db.query("DROP TABLE T")

    def test_hints_change_method_not_result(self, db):
        baseline = sorted(db.query(
            "SELECT A.V, B.V FROM T A, T B WHERE A.K = B.K"
        ))
        nested = sorted(db.query(
            "SELECT /*+ USE_NL */ A.V, B.V FROM T A, T B WHERE A.K = B.K"
        ))
        merged = sorted(db.query(
            "SELECT /*+ USE_MERGE */ A.V, B.V FROM T A, T B WHERE A.K = B.K"
        ))
        assert baseline == nested == merged

    def test_nested_loop_charges_quadratic_cpu(self, db):
        db.meter.reset()
        db.query("SELECT /*+ USE_NL */ A.V FROM T A, T B WHERE A.K = B.K")
        nested_cpu = db.meter.cpu
        db.meter.reset()
        db.query("SELECT /*+ USE_MERGE */ A.V FROM T A, T B WHERE A.K = B.K")
        merged_cpu = db.meter.cpu
        assert nested_cpu > merged_cpu or nested_cpu >= 16

    def test_index_equality_pushdown(self, db):
        db.execute("CREATE INDEX IX ON T (K)")
        rows = db.query("SELECT Name FROM T WHERE K = 2 ORDER BY Name")
        assert rows == [("b",), ("d",)]

    def test_non_equi_join_falls_back_to_nested_loop(self, db):
        rows = db.query(
            "SELECT A.K, B.K FROM T A, T B WHERE A.K < B.K AND A.K = 1 AND B.K = 3"
        )
        assert rows == [(1, 3)]

    def test_three_way_join(self, db):
        rows = db.query(
            "SELECT A.K FROM T A, T B, T C "
            "WHERE A.K = B.K AND B.K = C.K AND A.K = 3"
        )
        assert rows == [(3,)]
