"""Unit tests for the resilience layer: fault injection and retry."""

import pytest

from repro.errors import (
    ConnectionDroppedError,
    DatabaseError,
    RetryExhaustedError,
    TransientError,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy, RetryState


def no_sleep(_seconds):
    pass


class TestFaultInjector:
    def test_deterministic_schedule(self):
        policy = FaultPolicy(transient_p=0.3)

        def schedule(seed):
            injector = FaultInjector(policy, seed=seed)
            outcomes = []
            for _ in range(50):
                try:
                    injector.before("round_trip")
                    outcomes.append(True)
                except TransientError:
                    outcomes.append(False)
            return outcomes

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_reset_replays_the_same_schedule(self):
        injector = FaultInjector(FaultPolicy(transient_p=0.5), seed=3)
        first = [self._fires(injector) for _ in range(20)]
        injector.reset()
        assert [self._fires(injector) for _ in range(20)] == first

    @staticmethod
    def _fires(injector) -> bool:
        try:
            injector.before("round_trip")
            return False
        except TransientError:
            return True

    def test_per_operation_override(self):
        injector = FaultInjector(
            FaultPolicy(transient_p=0.0, load_chunk_p=1.0), seed=0
        )
        injector.before("round_trip")  # default p=0: never faults
        with pytest.raises(TransientError):
            injector.before("load_chunk")

    def test_zero_probability_never_faults(self):
        injector = FaultInjector(FaultPolicy(), seed=0)
        for _ in range(100):
            injector.before("execute")
        assert injector.faults_injected == 0
        assert injector.calls == 100

    def test_drop_after_is_terminal(self):
        injector = FaultInjector(FaultPolicy(drop_after=3), seed=0)
        for _ in range(3):
            injector.before("execute")
        for _ in range(2):
            with pytest.raises(ConnectionDroppedError):
                injector.before("execute")
        assert injector.dropped
        injector.restore_connection()
        injector.before("execute")  # reconnected

    def test_dropped_connection_is_not_transient(self):
        # Retry must not spin on a dropped connection.
        assert not issubclass(ConnectionDroppedError, TransientError)
        assert issubclass(ConnectionDroppedError, DatabaseError)

    def test_latency_spike_sleeps(self):
        slept = []
        injector = FaultInjector(
            FaultPolicy(latency_p=1.0, latency_seconds=0.25),
            seed=0,
            sleep=slept.append,
        )
        injector.before("round_trip")
        assert slept == [0.25]
        assert injector.latency_spikes == 1

    def test_metrics_mirroring(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(FaultPolicy(transient_p=1.0), seed=0, metrics=metrics)
        with pytest.raises(TransientError):
            injector.before("round_trip")
        assert metrics.value("faults_injected") == 1


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=0.01, max_delay_seconds=0.04, jitter=0.0
        )
        delays = [policy.delay_for(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_seconds=0.01, jitter=0.5)
        first = policy.delay_for(1, "fetch")
        assert first == policy.delay_for(1, "fetch")
        assert 0.005 <= first <= 0.01
        # Different call sites desynchronize.
        assert policy.delay_for(1, "fetch") != policy.delay_for(1, "load")

    def test_hashable_for_config_keys(self):
        assert hash(RetryPolicy()) == hash(RetryPolicy())


class TestRetryState:
    def test_returns_result_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("boom")
            return "ok"

        state = RetryState(RetryPolicy(max_attempts=4), sleep=no_sleep)
        assert state.run(flaky, op="test") == "ok"
        assert state.retries == 2

    def test_exhausts_attempts(self):
        state = RetryState(RetryPolicy(max_attempts=3), sleep=no_sleep)

        def always_fails():
            raise TransientError("boom")

        with pytest.raises(RetryExhaustedError) as info:
            state.run(always_fails, op="test")
        assert isinstance(info.value.__cause__, TransientError)

    def test_budget_shared_across_call_sites(self):
        state = RetryState(RetryPolicy(max_attempts=10, budget=3), sleep=no_sleep)
        calls = []

        def fails_twice():
            calls.append(1)
            if len(calls) % 3 != 0:
                raise TransientError("boom")
            return "ok"

        state.run(fails_twice, op="a")  # spends 2 retries
        assert state.budget_left == 1
        with pytest.raises(RetryExhaustedError):
            state.run(lambda: (_ for _ in ()).throw(TransientError("x")), op="b")

    def test_non_transient_errors_propagate_immediately(self):
        state = RetryState(RetryPolicy(), sleep=no_sleep)

        def fatal():
            raise DatabaseError("fatal")

        with pytest.raises(DatabaseError):
            state.run(fatal)
        assert state.retries == 0

    def test_retry_counter_in_metrics(self):
        metrics = MetricsRegistry()
        state = RetryState(RetryPolicy(), metrics=metrics, sleep=no_sleep)
        flag = []

        def once():
            if not flag:
                flag.append(1)
                raise TransientError("boom")
            return 1

        state.run(once)
        assert metrics.value("retries") == 1

    def test_on_retry_callback(self):
        ticks = []
        state = RetryState(RetryPolicy(), sleep=no_sleep)
        flag = []

        def once():
            if not flag:
                flag.append(1)
                raise TransientError("boom")
            return 1

        state.run(once, on_retry=lambda: ticks.append(1))
        assert ticks == [1]
