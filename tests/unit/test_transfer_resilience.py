"""``TRANSFER^D`` edge cases under failure: empty inputs, mid-load faults,
engine teardown, and drop idempotence under the fault injector."""

import pytest

from repro.algebra.schema import Attribute, Schema
from repro.core.engine import ExecutionEngine
from repro.core.plans import ExecutionPlan
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.errors import RetryExhaustedError, TransientError
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy, RetryState
from repro.xxl.sources import IterableCursor
from repro.xxl.transfer import TransferDCursor


def no_sleep(_seconds):
    pass


SCHEMA = Schema([Attribute("K"), Attribute("V")])


def rows(n, start=0):
    return [(start + i, (start + i) * 10) for i in range(n)]


@pytest.fixture
def db():
    return MiniDB()


def make_transfer(db, data, injector=None, retry=None, chunk_size=4):
    connection = Connection(db, injector=injector)
    return TransferDCursor(
        IterableCursor(SCHEMA, data),
        connection,
        chunk_size=chunk_size,
        retry=retry,
    )


class TestEmptyInput:
    def test_empty_input_still_creates_the_table(self, db):
        transfer = make_transfer(db, [])
        transfer.init()
        # Later TRANSFER^M SQL references the table by name, so it must
        # exist even with nothing to load.
        assert db.has_table(transfer.table_name)
        assert transfer.rows_loaded == 0
        transfer.drop()
        assert not db.has_table(transfer.table_name)

    def test_empty_input_under_engine_teardown(self, db):
        transfer = make_transfer(db, [])
        plan = ExecutionPlan(steps=[transfer], transfers_down=[transfer])
        outcome = ExecutionEngine().execute(plan)
        assert outcome.rows == []
        assert not db.has_table(transfer.table_name)


class TestMidLoadFailure:
    def test_failed_load_leaves_no_table_after_engine_teardown(self, db):
        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=0)
        retry = RetryState(RetryPolicy(max_attempts=2, budget=2), sleep=no_sleep)
        transfer = make_transfer(db, rows(10), injector=injector, retry=retry)
        plan = ExecutionPlan(steps=[transfer], transfers_down=[transfer])
        before = set(db.list_tables())
        with pytest.raises(RetryExhaustedError):
            ExecutionEngine().execute(plan)
        # The engine's unconditional teardown dropped the half-created
        # table: no partially-registered TANGO_TMP remains.
        assert set(db.list_tables()) == before

    def test_failure_without_retry_policy_also_cleans_up(self, db):
        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=0)
        transfer = make_transfer(db, rows(10), injector=injector)
        plan = ExecutionPlan(steps=[transfer], transfers_down=[transfer])
        with pytest.raises(TransientError):
            ExecutionEngine().execute(plan)
        assert not db.has_table(transfer.table_name)


class TestRetriedChunks:
    def test_retried_chunk_does_not_double_load(self, db):
        # Every chunk faults once, then succeeds: the table must still end
        # up with each row exactly once.
        class FaultEveryOther:
            def __init__(self):
                self.calls = 0
                self.metrics = None

            def before(self, op):
                if op != "load_chunk":
                    return
                self.calls += 1
                if self.calls % 2 == 1:
                    raise TransientError(f"flaky chunk (call {self.calls})")

        retry = RetryState(RetryPolicy(max_attempts=3, budget=32), sleep=no_sleep)
        data = rows(10)
        transfer = make_transfer(
            db, data, injector=FaultEveryOther(), retry=retry, chunk_size=4
        )
        transfer.init()
        assert transfer.rows_loaded == 10
        assert transfer.retries == 3  # one per chunk: 4 + 4 + 2 rows
        assert sorted(db.table(transfer.table_name).rows) == sorted(data)
        transfer.drop()

    def test_create_temp_retried(self, db):
        class FaultFirstExecute:
            def __init__(self):
                self.failed = False
                self.metrics = None

            def before(self, op):
                if op == "execute" and not self.failed:
                    self.failed = True
                    raise TransientError("flaky DDL")

        retry = RetryState(RetryPolicy(max_attempts=3), sleep=no_sleep)
        transfer = make_transfer(
            db, rows(3), injector=FaultFirstExecute(), retry=retry
        )
        transfer.init()
        assert db.has_table(transfer.table_name)
        assert transfer.rows_loaded == 3
        transfer.drop()


class TestDropIdempotence:
    def test_drop_twice_is_a_noop(self, db):
        transfer = make_transfer(db, rows(3))
        transfer.init()
        transfer.drop()
        transfer.drop()
        assert not db.has_table(transfer.table_name)

    def test_drop_idempotent_under_fault_injector(self, db):
        # drop_temp is not an injection point — cleanup stays reliable
        # whatever the chaos policy says.
        injector = FaultInjector(FaultPolicy(), seed=0)
        transfer = make_transfer(db, rows(3), injector=injector)
        transfer.init()
        assert db.has_table(transfer.table_name)
        injector.policy = FaultPolicy(transient_p=1.0)
        transfer.drop()
        transfer.drop()
        assert not db.has_table(transfer.table_name)
        assert injector.faults_injected == 0

    def test_engine_teardown_after_manual_drop(self, db):
        transfer = make_transfer(db, rows(3))
        plan = ExecutionPlan(steps=[transfer], transfers_down=[transfer])
        outcome = ExecutionEngine().execute(plan)
        assert outcome.rows == []  # TRANSFER^D produces no rows itself
        transfer.drop()  # engine already dropped it; still a no-op
        assert not db.has_table(transfer.table_name)


class TestLoaderChunkAtomicity:
    def test_failed_chunk_rolls_back_its_prefix(self, db):
        connection = Connection(db)
        connection.create_temp("TMP_ATOMIC", SCHEMA)

        def poisoned():
            yield (1, 10)
            yield (2, 20)
            raise TransientError("source died mid-chunk")

        with pytest.raises(TransientError):
            connection.executemany("TMP_ATOMIC", SCHEMA, poisoned())
        assert db.table("TMP_ATOMIC").cardinality == 0
        connection.executemany("TMP_ATOMIC", SCHEMA, rows(2))
        assert db.table("TMP_ATOMIC").cardinality == 2
        connection.drop_temp("TMP_ATOMIC")