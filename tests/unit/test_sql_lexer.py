"""Unit tests for the SQL tokenizer."""

import pytest

from repro.dbms.sql.lexer import Token, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]  # strip EOF


class TestBasics:
    def test_keywords_uppercased(self):
        assert values("select from") == ["SELECT", "FROM"]

    def test_identifiers_keep_spelling_in_text(self):
        token = tokenize("PosID")[0]
        assert token.kind == "IDENT"
        assert token.value == "POSID"
        assert token.text == "PosID"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].kind == "NUMBER" and tokens[0].value == "42"
        assert tokens[1].value == "3.14"

    def test_strings_unescape_quotes(self):
        token = tokenize("'O''Brien'")[0]
        assert token.kind == "STRING"
        assert token.value == "O'Brien"

    def test_operators(self):
        assert values("<= >= <> != = < > + - * / ( ) , .") == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".",
        ]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"


class TestHintsAndComments:
    def test_hint_extracted(self):
        tokens = tokenize("SELECT /*+ USE_NL */ *")
        assert tokens[1].kind == "HINT"
        assert tokens[1].value == "USE_NL"

    def test_line_comment_skipped(self):
        assert values("SELECT -- a comment\n 1") == ["SELECT", "1"]


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        try:
            tokenize("SELECT ~")
        except SQLSyntaxError as error:
            assert error.position == 7
        else:  # pragma: no cover
            pytest.fail("expected SQLSyntaxError")


class TestWhitespaceHandling:
    def test_newlines_and_tabs(self):
        assert values("SELECT\n\t1") == ["SELECT", "1"]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT X")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
