"""Unit tests for the performance-feedback loop (Section 7, and the
abstract's "uses performance feedback from the DBMS to adapt its
partitioning of subsequent queries")."""

import pytest

from repro.core.feedback import FeedbackAdapter, TransferObservation
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.optimizer.costs import CostFactors


def obs(direction="up", tuples=1000, width=50, seconds=0.01):
    return TransferObservation(
        direction=direction,
        tuples=tuples,
        bytes=tuples * width,
        seconds=seconds,
    )


class TestTransferObservation:
    def test_per_tuple_microseconds(self):
        assert obs(tuples=1000, seconds=0.001).per_tuple_us == pytest.approx(1.0)

    def test_zero_tuples_safe(self):
        assert obs(tuples=0).per_tuple_us == 0.0


class TestFeedbackAdapter:
    def test_moves_toward_observation(self):
        factors = CostFactors(p_tmr=1.0, p_tm=0.0)
        adapter = FeedbackAdapter(smoothing=0.5)
        # Observed 10 us/tuple, current estimate 1: EMA midpoint is 5.5.
        updated = adapter.apply(factors, [obs(seconds=0.01, tuples=1000)])
        assert updated.p_tmr == pytest.approx(5.5)

    def test_down_direction_updates_p_tdr(self):
        factors = CostFactors(p_tdr=1.0, p_td=0.0)
        adapter = FeedbackAdapter(smoothing=1.0)
        updated = adapter.apply(
            factors, [obs(direction="down", seconds=0.004, tuples=1000)]
        )
        assert updated.p_tdr == pytest.approx(4.0)

    def test_per_byte_share_subtracted(self):
        # 10 us/tuple observed, 0.1 us/B * 50 B = 5 us already explained.
        factors = CostFactors(p_tmr=0.0, p_tm=0.1)
        adapter = FeedbackAdapter(smoothing=1.0)
        updated = adapter.apply(factors, [obs(seconds=0.01, tuples=1000, width=50)])
        assert updated.p_tmr == pytest.approx(5.0)

    def test_small_transfers_ignored(self):
        factors = CostFactors(p_tmr=1.0)
        adapter = FeedbackAdapter(min_tuples=100)
        updated = adapter.apply(factors, [obs(tuples=5, seconds=1.0)])
        assert updated is factors
        assert adapter.observations_applied == 0

    def test_no_observations_returns_same_object(self):
        factors = CostFactors()
        assert FeedbackAdapter().apply(factors, []) is factors

    def test_counts_applications(self):
        adapter = FeedbackAdapter()
        adapter.apply(CostFactors(), [obs(), obs(direction="down")])
        assert adapter.observations_applied == 2

    def test_unknown_direction_skipped_and_not_counted(self):
        factors = CostFactors(p_tmr=1.0, p_tdr=1.0)
        adapter = FeedbackAdapter(smoothing=1.0)
        updated = adapter.apply(factors, [obs(direction="sideways")])
        assert updated is factors
        assert adapter.observations_applied == 0

    def test_nonpositive_seconds_skipped(self):
        # A zero/negative timing would drag the EMA toward zero.
        factors = CostFactors(p_tmr=5.0, p_tm=0.0)
        adapter = FeedbackAdapter(smoothing=1.0)
        updated = adapter.apply(
            factors, [obs(seconds=0.0), obs(seconds=-0.001)]
        )
        assert updated is factors
        assert adapter.observations_applied == 0

    def test_valid_observation_still_applies_among_skipped(self):
        factors = CostFactors(p_tmr=1.0, p_tm=0.0)
        adapter = FeedbackAdapter(smoothing=1.0)
        updated = adapter.apply(
            factors,
            [obs(seconds=0.0), obs(direction="bogus"), obs(seconds=0.01, tuples=1000)],
        )
        assert updated.p_tmr == pytest.approx(10.0)
        assert adapter.observations_applied == 1

    def test_smoothing_bounds(self):
        with pytest.raises(ValueError):
            FeedbackAdapter(smoothing=0.0)
        with pytest.raises(ValueError):
            FeedbackAdapter(smoothing=1.5)

    def test_converges_under_repetition(self):
        factors = CostFactors(p_tmr=100.0, p_tm=0.0)
        adapter = FeedbackAdapter(smoothing=0.3)
        for _ in range(30):
            factors = adapter.apply(factors, [obs(seconds=0.002, tuples=1000)])
        assert factors.p_tmr == pytest.approx(2.0, rel=0.05)


class TestTangoIntegration:
    @pytest.fixture
    def db(self):
        instance = MiniDB()
        instance.execute("CREATE TABLE R (K INT, T1 DATE, T2 DATE)")
        rows = ", ".join(f"({i % 10}, {i % 50}, {i % 50 + 10})" for i in range(400))
        instance.execute(f"INSERT INTO R VALUES {rows}")
        return instance

    def temporal_query(self):
        return (
            "VALIDTIME SELECT K, COUNT(K) FROM R GROUP BY K ORDER BY K"
        )

    def test_adaptive_updates_factors(self, db):
        tango = Tango(db, config=TangoConfig(adaptive=True), factors=CostFactors(p_tmr=1e6))
        before = tango.factors.p_tmr
        tango.query(self.temporal_query())
        assert tango.factors.p_tmr < before  # moved toward reality

    def test_non_adaptive_keeps_factors(self, db):
        tango = Tango(db, config=TangoConfig(adaptive=False))
        before = tango.factors
        tango.query(self.temporal_query())
        assert tango.factors is before

    def test_observations_collected_even_when_not_adaptive(self, db):
        from repro.core.plans import compile_plan

        tango = Tango(db)
        optimization = tango.optimize(self.temporal_query())
        execution = compile_plan(optimization.plan, tango.connection)
        outcome = tango.engine.execute(execution)
        ups = [o for o in outcome.observations if o.direction == "up"]
        assert ups
        assert all(o.seconds >= 0 for o in ups)
        assert ups[0].tuples > 0

    def test_adaptation_is_used_by_next_optimization(self, db):
        tango = Tango(db, config=TangoConfig(adaptive=True), factors=CostFactors(p_tmr=1e6))
        first_optimizer = tango.optimizer
        tango.query(self.temporal_query())
        assert tango.optimizer is not first_optimizer  # rebuilt on update
