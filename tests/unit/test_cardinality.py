"""Unit tests for per-operator cardinality derivation (Sections 3.3-3.4)."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.collector import StatisticsCollector


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE R (K INT, V INT, T1 DATE, T2 DATE)")
    rows = []
    for i in range(1000):
        start = (i * 13) % 900
        rows.append(f"({i % 50}, {i % 7}, {start}, {start + 30})")
    instance.execute("INSERT INTO R VALUES " + ", ".join(rows))
    instance.analyze("R")
    return instance


@pytest.fixture
def estimator(db):
    return CardinalityEstimator(StatisticsCollector(Connection(db)))


class TestLeafAndUnary:
    def test_scan_matches_catalog(self, db, estimator):
        stats = estimator.estimate(scan(db, "R").build())
        assert stats.cardinality == 1000

    def test_selection_scales_by_selectivity(self, db, estimator):
        plan = scan(db, "R").select(Comparison("=", col("K"), lit(7))).build()
        stats = estimator.estimate(plan)
        assert stats.cardinality == pytest.approx(1000 / 50, rel=0.01)

    def test_projection_keeps_cardinality_changes_width(self, db, estimator):
        plan = scan(db, "R").project("K").build()
        stats = estimator.estimate(plan)
        assert stats.cardinality == 1000
        assert stats.avg_row_size == 8

    def test_sort_and_transfers_transparent(self, db, estimator):
        base = scan(db, "R").sort("K")
        for builder in (base, base.to_middleware(), base.to_middleware().to_dbms()):
            assert estimator.estimate(builder.build()).cardinality == 1000

    def test_dedup_bounded_by_distinct_product(self, db, estimator):
        plan = scan(db, "R").project("V").dedup().build()
        stats = estimator.estimate(plan)
        assert stats.cardinality <= 7

    def test_selection_result_carries_attribute_stats(self, db, estimator):
        plan = scan(db, "R").select(Comparison("=", col("K"), lit(7))).build()
        stats = estimator.estimate(plan)
        assert stats.attribute("V").distinct <= 20


class TestJoins:
    def test_equi_join_formula_uniform_fallback(self, db, estimator):
        # Without histograms, the classic |R|·|R| / max distinct formula.
        from repro.stats.collector import StatisticsCollector
        from repro.stats.selectivity import PredicateEstimator
        from repro.dbms.jdbc import Connection

        no_hist = CardinalityEstimator(
            StatisticsCollector(Connection(db)),
            PredicateEstimator(use_histograms=False),
        )
        plan = scan(db, "R").join(scan(db, "R"), "K", "K").build()
        stats = no_hist.estimate(plan)
        assert stats.cardinality == pytest.approx(1000 * 1000 / 50, rel=0.01)

    def test_equi_join_histogram_estimate_close_on_uniform_keys(self, db, estimator):
        # With histograms (keys are uniform here), the skew-aware estimate
        # should land near the uniform formula's answer.
        plan = scan(db, "R").join(scan(db, "R"), "K", "K").build()
        stats = estimator.estimate(plan)
        assert stats.cardinality == pytest.approx(20_000, rel=0.35)

    def test_equi_join_histogram_captures_skew(self, db, estimator):
        # 90% of keys equal: the uniform formula underestimates the self-join
        # wildly; the histogram-based estimate must get within 2x.
        db.execute("CREATE TABLE SKEW (K INT, T1 DATE, T2 DATE)")
        rows = ", ".join(
            f"({0 if i % 10 else i}, {i}, {i + 5})" for i in range(500)
        )
        db.execute(f"INSERT INTO SKEW VALUES {rows}")
        db.analyze("SKEW", histogram_buckets=20)
        from repro.stats.collector import StatisticsCollector
        from repro.dbms.jdbc import Connection

        fresh = CardinalityEstimator(StatisticsCollector(Connection(db)))
        plan = scan(db, "SKEW").join(scan(db, "SKEW"), "K", "K").build()
        estimated = fresh.estimate(plan).cardinality
        actual = 450 * 450 + 50  # the hot key pairs + singleton keys
        assert estimated == pytest.approx(actual, rel=1.0)
        uniform = 500 * 500 / 51
        assert abs(estimated - actual) < abs(uniform - actual)

    def test_temporal_join_applies_overlap_factor(self, db, estimator):
        equi = estimator.estimate(scan(db, "R").join(scan(db, "R"), "K", "K").build())
        temporal = estimator.estimate(
            scan(db, "R").temporal_join(scan(db, "R"), "K", "K").build()
        )
        assert 0 < temporal.cardinality < equi.cardinality

    def test_product(self, db, estimator):
        plan = scan(db, "R").product(scan(db, "R")).build()
        assert estimator.estimate(plan).cardinality == 1_000_000

    def test_join_output_schema_width(self, db, estimator):
        plan = scan(db, "R").join(scan(db, "R"), "K", "K").build()
        stats = estimator.estimate(plan)
        assert stats.avg_row_size == plan.schema.row_width


class TestTemporalAggregation:
    def test_result_within_section34_bounds(self, db, estimator):
        plan = scan(db, "R").taggr(group_by=["K"], count="K").build()
        stats = estimator.estimate(plan)
        assert 1 <= stats.cardinality <= 2 * 1000 - 1

    def test_sixty_percent_of_max_rule(self, db, estimator):
        plan = scan(db, "R").taggr(group_by=["K"], count="K").build()
        stats = estimator.estimate(plan)
        per_group = 1000 / 50
        maximum = (per_group * 2 - 1) * 50
        assert stats.cardinality == pytest.approx(0.6 * maximum, rel=0.01)

    def test_no_grouping_uses_distinct_instants(self, db, estimator):
        plan = scan(db, "R").taggr(count="K").build()
        stats = estimator.estimate(plan)
        collector_stats = estimator.estimate(scan(db, "R").build())
        maximum = (
            collector_stats.attribute("T1").distinct
            + collector_stats.attribute("T2").distinct
            + 1
        )
        assert stats.cardinality <= maximum

    def test_single_group_single_period(self, db):
        # One grouping value, one distinct period: the paper's maximum
        # (3·2-1)·1 = 5 is tightened by the instants bound 1·(1+1+1) = 3,
        # and 0.6·3 = 1.8 exceeds the minimum of 1, so the estimate is 1.8.
        db.execute("CREATE TABLE ONE (K INT, T1 DATE, T2 DATE)")
        db.execute("INSERT INTO ONE VALUES (1, 0, 10), (1, 0, 10), (1, 0, 10)")
        db.analyze("ONE")
        estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
        plan = scan(db, "ONE").taggr(group_by=["K"], count="K").build()
        assert estimator.estimate(plan).cardinality == pytest.approx(1.8)


class TestCaching:
    def test_structural_sharing(self, db, estimator):
        first = scan(db, "R").sort("K").build()
        second = scan(db, "R").sort("K").build()
        assert estimator.estimate(first) is estimator.estimate(second)
