"""Unit tests for ANALYZE-style catalog statistics."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.statistics import analyze_table
from repro.dbms.table import Table
from repro.errors import StatisticsError

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("Name", AttrType.STR, 16),
        Attribute("T1", AttrType.DATE),
    ]
)


def loaded_table() -> Table:
    table = Table("T", SCHEMA)
    table.bulk_load([(i % 10, f"N{i % 3}", 100 + i) for i in range(50)])
    return table


class TestTableLevel:
    def test_cardinality_and_blocks(self):
        stats = analyze_table(loaded_table())
        assert stats.cardinality == 50
        assert stats.blocks >= 1
        assert stats.avg_row_size == SCHEMA.row_width

    def test_size_bytes_is_cardinality_times_width(self):
        stats = analyze_table(loaded_table())
        assert stats.size_bytes == 50 * SCHEMA.row_width


class TestColumnLevel:
    def test_min_max(self):
        stats = analyze_table(loaded_table())
        column = stats.column("T1")
        assert column.min_value == 100
        assert column.max_value == 149

    def test_distinct_counts(self):
        stats = analyze_table(loaded_table())
        assert stats.column("K").num_distinct == 10
        assert stats.column("Name").num_distinct == 3

    def test_case_insensitive_lookup(self):
        stats = analyze_table(loaded_table())
        assert stats.column("t1").name == "T1"

    def test_missing_column_raises(self):
        stats = analyze_table(loaded_table())
        with pytest.raises(StatisticsError):
            stats.column("Nope")

    def test_has_column(self):
        stats = analyze_table(loaded_table())
        assert stats.has_column("K")
        assert not stats.has_column("Z")


class TestHistogramSelection:
    def test_auto_builds_numeric_histograms(self):
        stats = analyze_table(loaded_table(), histogram_columns="auto")
        assert stats.column("K").histogram is not None
        assert stats.column("T1").histogram is not None
        assert stats.column("Name").histogram is None  # strings never

    def test_none_builds_no_histograms(self):
        stats = analyze_table(loaded_table(), histogram_columns="none")
        assert stats.column("K").histogram is None
        assert stats.column("T1").histogram is None

    def test_explicit_columns(self):
        stats = analyze_table(loaded_table(), histogram_columns=("T1",))
        assert stats.column("T1").histogram is not None
        assert stats.column("K").histogram is None

    def test_bad_mode_rejected(self):
        with pytest.raises(StatisticsError):
            analyze_table(loaded_table(), histogram_columns="some")

    def test_bucket_count_respected(self):
        stats = analyze_table(loaded_table(), histogram_buckets=5)
        assert stats.column("T1").histogram.num_buckets <= 5


class TestNulls:
    def test_null_counting(self):
        table = Table("T", SCHEMA)
        table.bulk_load([(1, "a", None), (2, "b", 5)])
        stats = analyze_table(table)
        column = stats.column("T1")
        assert column.num_nulls == 1
        assert column.min_value == 5

    def test_all_null_column(self):
        table = Table("T", SCHEMA)
        table.bulk_load([(1, "a", None)])
        stats = analyze_table(table)
        assert stats.column("T1").min_value is None
        assert stats.column("T1").num_distinct == 0
