"""Unit tests for the Tango facade."""

import pytest

from repro.core.tango import QueryResult, Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.errors import DatabaseError, PlanError


@pytest.fixture
def tango(figure3_db):
    return Tango(figure3_db)


class TestQueryPath:
    def test_temporal_aggregation_query(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        assert result.rows == [
            (1, 2, 5, 1),
            (1, 5, 20, 2),
            (1, 20, 25, 1),
            (2, 5, 10, 1),
        ]

    def test_result_metadata(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        assert result.schema.has("COUNTofPosID")
        assert result.estimated_cost is not None
        assert result.class_count > 0
        assert result.element_count > 0
        assert result.plan is not None

    def test_temporal_join_query(self, tango):
        result = tango.query(
            "VALIDTIME SELECT A.PosID, A.EmpName, B.EmpName FROM POSITION A, "
            "POSITION B WHERE A.PosID = B.PosID ORDER BY PosID"
        )
        assert len(result.rows) == 5

    def test_passthrough_regular_sql(self, tango):
        result = tango.query("SELECT COUNT(*) FROM POSITION")
        assert result.rows == [(3,)]
        assert result.plan is None

    def test_passthrough_ddl(self, tango):
        result = tango.query("CREATE TABLE SIDE (X INT)")
        assert result.rows == []
        assert tango.db.has_table("SIDE")

    def test_result_is_iterable_sized(self, tango):
        result = tango.query("VALIDTIME SELECT PosID FROM POSITION")
        assert len(result) == 3
        assert len(list(result)) == 3


class TestPlanAPI:
    def test_parse_returns_initial_plan(self, tango):
        plan = tango.parse("VALIDTIME SELECT PosID FROM POSITION")
        assert plan.location.value == "middleware"

    def test_optimize_accepts_sql_or_plan(self, tango):
        sql = (
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        from_sql = tango.optimize(sql)
        from_plan = tango.optimize(tango.parse(sql))
        assert from_sql.cost == from_plan.cost

    def test_execute_plan_validates(self, tango):
        from repro.algebra.builder import scan

        invalid = (
            scan(tango.db, "POSITION")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")  # missing sort
            .build()
        )
        with pytest.raises(PlanError):
            tango.execute_plan(invalid)

    def test_explain_contains_plan_and_costs(self, tango):
        text = tango.explain(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        assert "cost breakdown" in text
        assert "Scan(POSITION)" in text

    def test_plan_cost_positive(self, tango):
        plan = tango.parse("VALIDTIME SELECT PosID FROM POSITION")
        assert tango.plan_cost(plan) > 0


class TestStatisticsLifecycle:
    def test_refresh_statistics(self, tango):
        tango.db.execute("INSERT INTO POSITION VALUES (3, 'Ann', 1, 9)")
        tango.refresh_statistics()
        stats = tango.collector.collect("POSITION")
        assert stats.cardinality == 4

    def test_histogram_toggle(self, figure3_db):
        with_hist = Tango(figure3_db, config=TangoConfig(use_histograms=True))
        without = Tango(figure3_db, config=TangoConfig(use_histograms=False))
        assert with_hist.predicate_estimator.use_histograms
        assert not without.predicate_estimator.use_histograms

    def test_calibrate_returns_factors(self, tango):
        factors = tango.calibrate(sizes=(50,))
        # The two-term transfer fit may attribute everything to the
        # per-tuple share in-process; the combined cost is always positive.
        assert factors.p_tmr + factors.p_tm > 0
        assert tango.factors is factors


class TestTangoConfig:
    def test_defaults(self):
        config = TangoConfig()
        assert config.use_histograms is True
        assert config.prefetch == 50
        assert config.adaptive is False
        assert config.tracing is False

    def test_frozen(self):
        with pytest.raises(Exception):
            TangoConfig().adaptive = True

    def test_config_kwargs_carry_through(self, figure3_db):
        tango = Tango(
            figure3_db,
            config=TangoConfig(use_histograms=False, prefetch=7, adaptive=True),
        )
        assert tango.connection.prefetch == 7
        assert tango.adaptive is True
        assert not tango.predicate_estimator.use_histograms

    @pytest.mark.parametrize(
        "kwarg", ["use_histograms", "prefetch", "adaptive", "tracing"]
    )
    def test_retired_kwargs_error_names_the_config_field(
        self, figure3_db, kwarg
    ):
        """The PR-1 deprecation shim is retired: the error must point the
        caller at the exact TangoConfig field to set instead."""
        with pytest.raises(TypeError, match=rf"TangoConfig\({kwarg}=") as exc:
            Tango(figure3_db, **{kwarg: True})
        assert kwarg in str(exc.value)

    def test_retired_positional_bool_errors(self, figure3_db):
        with pytest.raises(TypeError, match=r"TangoConfig\(use_histograms="):
            Tango(figure3_db, False)

    def test_unknown_kwargs_error_too(self, figure3_db):
        with pytest.raises(TypeError):
            Tango(figure3_db, no_such_option=1)


class TestLifecycle:
    def test_context_manager_closes_connection(self, figure3_db):
        with Tango(figure3_db) as tango:
            tango.query("VALIDTIME SELECT PosID FROM POSITION")
            assert not tango.closed
        assert tango.closed
        assert tango.connection.closed
        with pytest.raises(DatabaseError):
            tango.connection.cursor()
        with pytest.raises(DatabaseError):
            tango.query("SELECT PosID FROM POSITION")  # passthrough too

    def test_close_is_idempotent_and_flushes_metrics(self, figure3_db):
        tango = Tango(figure3_db)
        tango.query("VALIDTIME SELECT PosID FROM POSITION")
        tango.close()
        tango.close()
        assert tango.final_metrics["counters"]["queries_total"] == 1


class TestTimingFields:
    def test_elapsed_covers_execution(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        assert result.execution_seconds is not None
        assert result.execution_seconds > 0.0
        # Total query time includes parse/optimize/translate on top of the
        # engine share (this was conflated before the observability layer).
        assert result.elapsed_seconds >= result.execution_seconds

    def test_passthrough_sets_both(self, tango):
        result = tango.query("SELECT COUNT(*) FROM POSITION")
        assert result.execution_seconds == result.elapsed_seconds


class TestQueryResultToDict:
    def test_round_trip_shape(self, figure3_db):
        tango = Tango(figure3_db, config=TangoConfig(tracing=True))
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        exported = result.to_dict()
        assert exported["columns"] == list(result.schema.names)
        assert exported["rows"] == [list(row) for row in result.rows]
        assert exported["trace"]["name"] == "query"
        assert exported["execution_seconds"] <= exported["elapsed_seconds"]

    def test_trace_none_without_tracing(self, tango):
        result = tango.query("VALIDTIME SELECT PosID FROM POSITION")
        assert result.to_dict()["trace"] is None
