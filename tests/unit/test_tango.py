"""Unit tests for the Tango facade."""

import pytest

from repro.core.tango import QueryResult, Tango
from repro.dbms.database import MiniDB
from repro.errors import PlanError


@pytest.fixture
def tango(figure3_db):
    return Tango(figure3_db)


class TestQueryPath:
    def test_temporal_aggregation_query(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        assert result.rows == [
            (1, 2, 5, 1),
            (1, 5, 20, 2),
            (1, 20, 25, 1),
            (2, 5, 10, 1),
        ]

    def test_result_metadata(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        assert result.schema.has("COUNTofPosID")
        assert result.estimated_cost is not None
        assert result.class_count > 0
        assert result.element_count > 0
        assert result.plan is not None

    def test_temporal_join_query(self, tango):
        result = tango.query(
            "VALIDTIME SELECT A.PosID, A.EmpName, B.EmpName FROM POSITION A, "
            "POSITION B WHERE A.PosID = B.PosID ORDER BY PosID"
        )
        assert len(result.rows) == 5

    def test_passthrough_regular_sql(self, tango):
        result = tango.query("SELECT COUNT(*) FROM POSITION")
        assert result.rows == [(3,)]
        assert result.plan is None

    def test_passthrough_ddl(self, tango):
        result = tango.query("CREATE TABLE SIDE (X INT)")
        assert result.rows == []
        assert tango.db.has_table("SIDE")

    def test_result_is_iterable_sized(self, tango):
        result = tango.query("VALIDTIME SELECT PosID FROM POSITION")
        assert len(result) == 3
        assert len(list(result)) == 3


class TestPlanAPI:
    def test_parse_returns_initial_plan(self, tango):
        plan = tango.parse("VALIDTIME SELECT PosID FROM POSITION")
        assert plan.location.value == "middleware"

    def test_optimize_accepts_sql_or_plan(self, tango):
        sql = (
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        from_sql = tango.optimize(sql)
        from_plan = tango.optimize(tango.parse(sql))
        assert from_sql.cost == from_plan.cost

    def test_execute_plan_validates(self, tango):
        from repro.algebra.builder import scan

        invalid = (
            scan(tango.db, "POSITION")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")  # missing sort
            .build()
        )
        with pytest.raises(PlanError):
            tango.execute_plan(invalid)

    def test_explain_contains_plan_and_costs(self, tango):
        text = tango.explain(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
        )
        assert "cost breakdown" in text
        assert "Scan(POSITION)" in text

    def test_plan_cost_positive(self, tango):
        plan = tango.parse("VALIDTIME SELECT PosID FROM POSITION")
        assert tango.plan_cost(plan) > 0


class TestStatisticsLifecycle:
    def test_refresh_statistics(self, tango):
        tango.db.execute("INSERT INTO POSITION VALUES (3, 'Ann', 1, 9)")
        tango.refresh_statistics()
        stats = tango.collector.collect("POSITION")
        assert stats.cardinality == 4

    def test_histogram_toggle(self, figure3_db):
        with_hist = Tango(figure3_db, use_histograms=True)
        without = Tango(figure3_db, use_histograms=False)
        assert with_hist.predicate_estimator.use_histograms
        assert not without.predicate_estimator.use_histograms

    def test_calibrate_returns_factors(self, tango):
        factors = tango.calibrate(sizes=(50,))
        # The two-term transfer fit may attribute everything to the
        # per-tuple share in-process; the combined cost is always positive.
        assert factors.p_tmr + factors.p_tm > 0
        assert tango.factors is factors
