"""Unit tests for execution-plan compilation and the Execution Engine."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.schema import Attribute, Schema
from repro.core.engine import ExecutionEngine
from repro.core.plans import ExecutionPlan, compile_plan
from repro.dbms.jdbc import Connection
from repro.errors import DatabaseError, ExecutionError, PlanError
from repro.xxl.cursor import GeneratorCursor
from repro.xxl.sources import RelationCursor, SQLCursor
from repro.xxl.transfer import TransferDCursor


@pytest.fixture
def connection(figure3_db):
    return Connection(figure3_db)


def figure3_plan(db):
    """Figure 4(b): sort in DBMS, TAGGR^M, T^D, temporal join in DBMS."""
    aggregated = (
        scan(db, "POSITION")
        .project("PosID", "T1", "T2")
        .sort("PosID", "T1")
        .to_middleware()
        .taggr(group_by=["PosID"], count="PosID")
    )
    return (
        aggregated.to_dbms()
        .temporal_join(
            scan(db, "POSITION").project("PosID", "EmpName", "T1", "T2"),
            "PosID",
            "PosID",
        )
        .project("PosID", "EmpName", "T1", "T2", "COUNTofPosID")
        .sort("PosID")
        .to_middleware()
        .build()
    )


class TestCompilePlan:
    def test_simple_transfer(self, figure3_db, connection):
        plan = scan(figure3_db, "POSITION").to_middleware().build()
        execution = compile_plan(plan, connection)
        assert len(execution.steps) == 1
        assert isinstance(execution.output, SQLCursor)

    def test_dbms_root_rejected(self, figure3_db, connection):
        plan = scan(figure3_db, "POSITION").build()
        with pytest.raises(PlanError):
            compile_plan(plan, connection)

    def test_figure5_step_sequence(self, figure3_db, connection):
        execution = compile_plan(figure3_plan(figure3_db), connection)
        kinds = [type(step).__name__ for step in execution.steps]
        # TRANSFER^D must be initialized before the final TRANSFER^M.
        assert kinds == ["TransferDCursor", "SQLCursor"]

    def test_describe_mentions_transfers(self, figure3_db, connection):
        execution = compile_plan(figure3_plan(figure3_db), connection)
        description = execution.describe()
        assert "TRANSFER^D" in description
        assert "TRANSFER^M" in description

    def test_middleware_pipeline_compiles_cursors(self, figure3_db, connection):
        plan = (
            scan(figure3_db, "POSITION")
            .to_middleware()
            .select(Comparison("=", col("PosID"), lit(1)))
            .sort("T1")
            .build()
        )
        execution = compile_plan(plan, connection)
        rows = ExecutionEngine().execute(execution).rows
        assert [row[2] for row in rows] == [2, 5]


class TestExecutionEngine:
    def test_full_figure3_query(self, figure3_db, connection):
        execution = compile_plan(figure3_plan(figure3_db), connection)
        outcome = ExecutionEngine().execute(execution)
        expected = [
            (1, "Tom", 2, 5, 1),
            (1, "Tom", 5, 20, 2),
            (1, "Jane", 5, 20, 2),
            (1, "Jane", 20, 25, 1),
            (2, "Tom", 5, 10, 1),
        ]
        assert sorted(outcome.rows) == sorted(expected)

    def test_temp_tables_cleaned_up(self, figure3_db, connection):
        tables_before = set(figure3_db.list_tables())
        execution = compile_plan(figure3_plan(figure3_db), connection)
        ExecutionEngine().execute(execution)
        assert set(figure3_db.list_tables()) == tables_before

    def test_cleanup_can_be_disabled(self, figure3_db, connection):
        execution = compile_plan(figure3_plan(figure3_db), connection)
        ExecutionEngine(cleanup_temp_tables=False).execute(execution)
        temp_tables = [
            name for name in figure3_db.list_tables() if name.startswith("TANGO_TMP")
        ]
        assert temp_tables
        execution.cleanup()

    def test_outcome_metadata(self, figure3_db, connection):
        plan = scan(figure3_db, "POSITION").to_middleware().build()
        outcome = ExecutionEngine().execute(compile_plan(plan, connection))
        assert outcome.schema.names == ("PosID", "EmpName", "T1", "T2")
        assert outcome.elapsed_seconds >= 0
        assert outcome.steps == 1
        assert len(outcome) == 3

    def test_transfer_d_order_recorded(self, figure3_db, connection):
        execution = compile_plan(figure3_plan(figure3_db), connection)
        transfer = execution.transfers_down[0]
        transfer_step = next(
            step for step in execution.steps if isinstance(step, TransferDCursor)
        )
        assert transfer is transfer_step
        ExecutionEngine(cleanup_temp_tables=False).execute(execution)
        table = connection.db.table(transfer.table_name)
        assert table.clustered_order == ("PosID", "T1")
        execution.cleanup()


class TestTeardownOnFailure:
    """A mid-query failure must never leave TANGO_TMP* tables behind."""

    @staticmethod
    def make_transfer_down(connection):
        schema = Schema([Attribute("X")])
        return TransferDCursor(
            RelationCursor(schema, [(1,), (2,), (3,)]), connection
        )

    def test_failure_during_drain_drops_temp_tables(self, figure3_db, connection):
        class ExplodingCursor(GeneratorCursor):
            def _generate(self):
                yield (1,)
                raise ExecutionError("mid-query failure")

        tables_before = set(figure3_db.list_tables())
        transfer = self.make_transfer_down(connection)
        plan = ExecutionPlan(
            steps=[transfer, ExplodingCursor(Schema([Attribute("X")]))],
            transfers_down=[transfer],
        )
        with pytest.raises(ExecutionError, match="mid-query failure"):
            ExecutionEngine().execute(plan)
        assert set(figure3_db.list_tables()) == tables_before

    def test_failure_during_init_drops_temp_tables(self, figure3_db, connection):
        tables_before = set(figure3_db.list_tables())
        transfer = self.make_transfer_down(connection)
        # The second step's SQL is invalid: init() raises after the
        # TRANSFER^D step has already materialized its table.
        bad = SQLCursor(connection, "SELECT * FROM NO_SUCH_TABLE")
        plan = ExecutionPlan(steps=[transfer, bad], transfers_down=[transfer])
        with pytest.raises(DatabaseError):
            ExecutionEngine().execute(plan)
        assert set(figure3_db.list_tables()) == tables_before

    def test_drop_is_idempotent(self, connection):
        transfer = self.make_transfer_down(connection)
        transfer.init()
        transfer.drop()
        transfer.drop()  # second drop is a no-op, not an error
