"""Unit tests for the basic middleware algorithms: source, filter,
project, sort."""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.xxl.cursor import materialize
from repro.xxl.filter import FilterCursor
from repro.xxl.project import ProjectCursor
from repro.xxl.sort import SortCursor
from repro.xxl.sources import RelationCursor, SQLCursor

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
    ]
)
ROWS = [(3, 30), (1, 10), (2, 20), (1, 15)]


def source():
    return RelationCursor(SCHEMA, ROWS)


class TestSQLCursor:
    def test_streams_query_results(self, figure3_connection):
        cursor = SQLCursor(figure3_connection, "SELECT PosID FROM POSITION ORDER BY PosID")
        assert materialize(cursor) == [(1,), (1,), (2,)]

    def test_schema_from_result_metadata(self, figure3_connection):
        cursor = SQLCursor(figure3_connection, "SELECT PosID, T1 FROM POSITION")
        cursor.init()
        assert cursor.schema.names == ("PosID", "T1")

    def test_sql_property(self, figure3_connection):
        cursor = SQLCursor(figure3_connection, "SELECT 1 FROM POSITION")
        assert "SELECT 1" in cursor.sql


class TestFilter:
    def test_filters(self):
        cursor = FilterCursor(source(), Comparison("=", col("K"), lit(1)))
        assert materialize(cursor) == [(1, 10), (1, 15)]

    def test_order_preserving(self):
        cursor = FilterCursor(source(), Comparison(">", col("V"), lit(12)))
        assert materialize(cursor) == [(3, 30), (2, 20), (1, 15)]

    def test_meter_charged_per_input_row(self):
        meter = CostMeter()
        materialize(FilterCursor(source(), Comparison(">", col("V"), lit(0)), meter))
        assert meter.cpu == len(ROWS)

    def test_empty_result(self):
        cursor = FilterCursor(source(), Comparison(">", col("V"), lit(999)))
        assert materialize(cursor) == []


class TestProject:
    def test_column_projection(self):
        cursor = ProjectCursor.of_columns(source(), ["V"])
        assert materialize(cursor) == [(30,), (10,), (20,), (15,)]

    def test_expression_projection(self):
        from repro.algebra.expressions import BinOp

        cursor = ProjectCursor(source(), [("Sum", BinOp("+", col("K"), col("V")))])
        assert materialize(cursor) == [(33,), (11,), (22,), (16,)]

    def test_output_schema(self):
        cursor = ProjectCursor.of_columns(source(), ["V", "K"])
        cursor.init()
        assert cursor.schema.names == ("V", "K")


class TestSort:
    def test_sorts_on_keys(self):
        cursor = SortCursor(source(), ("K", "V"))
        assert materialize(cursor) == [(1, 10), (1, 15), (2, 20), (3, 30)]

    def test_single_key(self):
        cursor = SortCursor(source(), ("V",))
        assert materialize(cursor) == [(1, 10), (1, 15), (2, 20), (3, 30)]

    def test_stable_on_equal_keys(self):
        rows = [(1, "b"), (1, "a")]
        schema = Schema([Attribute("K"), Attribute("Tag", AttrType.STR)])
        cursor = SortCursor(RelationCursor(schema, rows), ("K",))
        assert materialize(cursor) == [(1, "b"), (1, "a")]

    def test_external_merge_many_runs(self):
        rows = [(i % 97, i) for i in range(1000)]
        cursor = SortCursor(RelationCursor(SCHEMA, rows), ("K",), run_size=64)
        result = materialize(cursor)
        assert [row[0] for row in result] == sorted(row[0] for row in rows)
        assert len(result) == 1000

    def test_empty_input(self):
        cursor = SortCursor(RelationCursor(SCHEMA, []), ("K",))
        assert materialize(cursor) == []

    def test_meter_charged(self):
        meter = CostMeter()
        materialize(SortCursor(source(), ("K",), meter))
        assert meter.cpu > 0
