"""Unit tests for schemas and attributes."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.errors import SchemaError


def sample_schema() -> Schema:
    return Schema(
        [
            Attribute("PosID", AttrType.INT),
            Attribute("EmpName", AttrType.STR, 16),
            Attribute("T1", AttrType.DATE),
            Attribute("T2", AttrType.DATE),
        ]
    )


class TestAttrType:
    def test_python_types(self):
        assert AttrType.INT.python_type is int
        assert AttrType.DATE.python_type is int
        assert AttrType.FLOAT.python_type is float
        assert AttrType.STR.python_type is str

    def test_numeric_flags(self):
        assert AttrType.INT.is_numeric
        assert AttrType.DATE.is_numeric
        assert AttrType.FLOAT.is_numeric
        assert not AttrType.STR.is_numeric

    def test_attribute_width_override(self):
        assert Attribute("Name", AttrType.STR, 40).byte_width == 40

    def test_attribute_default_width(self):
        assert Attribute("X", AttrType.INT).byte_width == 8


class TestSchemaBasics:
    def test_len(self):
        assert len(sample_schema()) == 4

    def test_index_of_case_insensitive(self):
        assert sample_schema().index_of("posid") == 0
        assert sample_schema().index_of("POSID") == 0

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            sample_schema().index_of("missing")

    def test_contains(self):
        schema = sample_schema()
        assert "T1" in schema
        assert "t1" in schema
        assert "T3" not in schema

    def test_getitem_by_name_and_index(self):
        schema = sample_schema()
        assert schema["EmpName"].name == "EmpName"
        assert schema[0].name == "PosID"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("A"), Attribute("a")])

    def test_names(self):
        assert sample_schema().names == ("PosID", "EmpName", "T1", "T2")

    def test_row_width(self):
        assert sample_schema().row_width == 8 + 16 + 8 + 8

    def test_equality_and_hash(self):
        assert sample_schema() == sample_schema()
        assert hash(sample_schema()) == hash(sample_schema())

    def test_type_of(self):
        assert sample_schema().type_of("T1") is AttrType.DATE


class TestSchemaDerivation:
    def test_project_order_follows_argument(self):
        projected = sample_schema().project(["T1", "PosID"])
        assert projected.names == ("T1", "PosID")

    def test_concat_disjoint(self):
        left = Schema([Attribute("A"), Attribute("B")])
        right = Schema([Attribute("C")])
        assert left.concat(right).names == ("A", "B", "C")

    def test_concat_disambiguates(self):
        left = Schema([Attribute("PosID"), Attribute("T1")])
        right = Schema([Attribute("PosID"), Attribute("T1")])
        assert left.concat(right).names == ("PosID", "T1", "PosID_2", "T1_2")

    def test_concat_disambiguation_cascades(self):
        left = Schema([Attribute("X"), Attribute("X_2")])
        right = Schema([Attribute("X")])
        assert left.concat(right).names == ("X", "X_2", "X_3")

    def test_concat_strict_raises(self):
        left = Schema([Attribute("A")])
        with pytest.raises(SchemaError):
            left.concat(left, disambiguate=False)

    def test_rename(self):
        renamed = sample_schema().rename({"PosID": "ID", "t2": "Until"})
        assert renamed.names == ("ID", "EmpName", "T1", "Until")

    def test_rename_preserves_types(self):
        renamed = sample_schema().rename({"T1": "Start"})
        assert renamed.type_of("Start") is AttrType.DATE
