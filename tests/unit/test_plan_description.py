"""Unit tests for execution-plan rendering and nested transfer sequencing
(the Figure 5 'algorithm sequence' details)."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.core.engine import ExecutionEngine
from repro.core.plans import compile_plan
from repro.dbms.jdbc import Connection


@pytest.fixture
def connection(figure3_db):
    return Connection(figure3_db)


class TestDescribe:
    def test_middleware_pipeline_rendering(self, figure3_db, connection):
        plan = (
            scan(figure3_db, "POSITION")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .build()
        )
        text = compile_plan(plan, connection).describe()
        assert "TAGGR^M" in text
        assert "GroupBy: PosID" in text
        assert "COUNT(PosID)" in text
        assert "TRANSFER^M  Query:" in text
        assert "FROM POSITION" in text

    def test_join_and_filter_rendering(self, figure3_db, connection):
        left = scan(figure3_db, "POSITION").sort("PosID").to_middleware()
        right = scan(figure3_db, "POSITION").sort("PosID").to_middleware()
        plan = (
            left.temporal_join(right, "PosID", "PosID")
            .select(Comparison("<", col("T1"), lit(100)))
            .build()
        )
        text = compile_plan(plan, connection).describe()
        assert "TJOIN^M  On: PosID=PosID" in text
        assert "FILTER^M  Predicate: T1 < 100" in text

    def test_transfer_d_shows_temp_table(self, figure3_db, connection):
        plan = (
            scan(figure3_db, "POSITION")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .to_dbms()
            .to_middleware()
            .build()
        )
        text = compile_plan(plan, connection).describe()
        assert "TRANSFER^D  TableName: TANGO_TMP" in text

    def test_long_sql_truncated(self, figure3_db, connection):
        wide = scan(figure3_db, "POSITION").project(
            "PosID", "EmpName", "T1", "T2"
        )
        plan = wide.join(
            scan(figure3_db, "POSITION").project("PosID", "EmpName", "T1", "T2"),
            "PosID",
            "PosID",
        ).to_middleware().build()
        text = compile_plan(plan, connection).describe()
        transfer_lines = [l for l in text.splitlines() if "TRANSFER^M" in l]
        assert all(len(line) < 140 for line in transfer_lines)


class TestNestedTransfers:
    def test_two_transfer_d_steps_ordered_before_final_select(
        self, figure3_db, connection
    ):
        # Two independent middleware results loaded down, then joined in
        # the DBMS: both TRANSFER^D steps must precede the final TRANSFER^M.
        left = (
            scan(figure3_db, "POSITION")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .to_dbms()
        )
        right = (
            scan(figure3_db, "POSITION")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], aggregates=[
                __import__("repro.algebra.operators", fromlist=["AggregateSpec"]).AggregateSpec("MIN", "T1", "FirstT1"),
            ])
            .to_dbms()
        )
        plan = left.join(right, "PosID", "PosID").to_middleware().build()
        execution = compile_plan(plan, connection)
        kinds = [type(step).__name__ for step in execution.steps]
        assert kinds == ["TransferDCursor", "TransferDCursor", "SQLCursor"]
        outcome = ExecutionEngine().execute(execution)
        # Equi-join on PosID pairs every left interval with every right
        # interval of the same position: 3x3 for position 1 plus 1x1.
        assert len(outcome.rows) == 10
        # Both temp tables cleaned up.
        leftovers = [
            name for name in figure3_db.list_tables()
            if name.startswith("TANGO_TMP")
        ]
        assert leftovers == []

    def test_observations_cover_all_transfers(self, figure3_db, connection):
        plan = (
            scan(figure3_db, "POSITION")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .to_dbms()
            .to_middleware()
            .build()
        )
        outcome = ExecutionEngine().execute(compile_plan(plan, connection))
        directions = sorted(o.direction for o in outcome.observations)
        assert directions == ["down", "up", "up"]
