"""Unit tests for closed-open period arithmetic."""

import pytest

from repro.temporal.period import (
    Period,
    coalesce_periods,
    constant_intervals,
    intersect,
    overlaps,
)


class TestPeriod:
    def test_duration(self):
        assert Period(2, 20).duration == 18

    def test_empty_period(self):
        assert Period(5, 5).is_empty()

    def test_nonempty_period(self):
        assert not Period(5, 6).is_empty()

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Period(10, 5)

    def test_contains_start(self):
        assert Period(2, 20).contains(2)

    def test_excludes_end(self):
        assert not Period(2, 20).contains(20)

    def test_contains_interior(self):
        assert Period(2, 20).contains(10)


class TestOverlap:
    def test_overlapping(self):
        assert Period(2, 20).overlaps(Period(5, 25))

    def test_meets_is_not_overlap(self):
        # Closed-open: [2,5) and [5,8) share no day.
        assert not Period(2, 5).overlaps(Period(5, 8))

    def test_disjoint(self):
        assert not Period(2, 5).overlaps(Period(8, 10))

    def test_containment_overlaps(self):
        assert Period(1, 100).overlaps(Period(40, 50))

    def test_symmetric(self):
        a, b = Period(2, 20), Period(5, 25)
        assert a.overlaps(b) == b.overlaps(a)

    def test_raw_matches_period(self):
        assert overlaps(2, 20, 5, 25)
        assert not overlaps(2, 5, 5, 8)


class TestIntersect:
    def test_basic(self):
        assert Period(2, 20).intersect(Period(5, 25)) == Period(5, 20)

    def test_disjoint_is_none(self):
        assert Period(2, 5).intersect(Period(5, 8)) is None

    def test_raw_form(self):
        assert intersect(2, 20, 5, 25) == (5, 20)
        assert intersect(2, 5, 5, 8) is None

    def test_intersection_is_greatest_least(self):
        # Figure 5's GREATEST(T1)/LEAST(T2) projection.
        result = intersect(3, 30, 10, 40)
        assert result == (max(3, 10), min(30, 40))


class TestMergeAndMeets:
    def test_meets(self):
        assert Period(2, 5).meets(Period(5, 8))

    def test_merge_overlapping(self):
        assert Period(1, 5).merge(Period(4, 8)) == Period(1, 8)

    def test_merge_adjacent(self):
        assert Period(1, 5).merge(Period(5, 8)) == Period(1, 8)

    def test_merge_disjoint_raises(self):
        with pytest.raises(ValueError):
            Period(1, 3).merge(Period(5, 8))


class TestConstantIntervals:
    def test_figure3_position_one(self):
        # Tom [2,20) and Jane [5,25): intervals of Figure 3(c), position 1.
        assert list(constant_intervals([(2, 20), (5, 25)])) == [
            (2, 5),
            (5, 20),
            (20, 25),
        ]

    def test_single_period(self):
        assert list(constant_intervals([(5, 10)])) == [(5, 10)]

    def test_gap_is_skipped(self):
        assert list(constant_intervals([(1, 3), (5, 8)])) == [(1, 3), (5, 8)]

    def test_empty_input(self):
        assert list(constant_intervals([])) == []

    def test_empty_periods_ignored(self):
        assert list(constant_intervals([(5, 5), (7, 7)])) == []

    def test_identical_periods_one_interval(self):
        assert list(constant_intervals([(1, 4), (1, 4), (1, 4)])) == [(1, 4)]

    def test_nested_periods(self):
        assert list(constant_intervals([(1, 10), (3, 5)])) == [
            (1, 3),
            (3, 5),
            (5, 10),
        ]


class TestCoalescePeriods:
    def test_overlapping_merge(self):
        assert coalesce_periods([(1, 5), (4, 8)]) == [(1, 8)]

    def test_adjacent_merge(self):
        assert coalesce_periods([(1, 5), (5, 8)]) == [(1, 8)]

    def test_disjoint_stay_apart(self):
        assert coalesce_periods([(1, 5), (6, 8)]) == [(1, 5), (6, 8)]

    def test_unordered_input(self):
        assert coalesce_periods([(10, 12), (1, 5), (4, 8)]) == [(1, 8), (10, 12)]

    def test_empty_periods_dropped(self):
        assert coalesce_periods([(3, 3), (1, 2)]) == [(1, 2)]
