"""Unit tests for the simulated cost meter."""

from repro.dbms.costmodel import IO_WEIGHT, CostMeter, CostSnapshot, MeterWindow


class TestCostMeter:
    def test_starts_at_zero(self):
        meter = CostMeter()
        assert meter.ticks == 0

    def test_io_weighting(self):
        meter = CostMeter()
        meter.charge_io(2)
        meter.charge_cpu(5)
        assert meter.ticks == 2 * IO_WEIGHT + 5

    def test_reset(self):
        meter = CostMeter()
        meter.charge_cpu(7)
        meter.reset()
        assert meter.ticks == 0

    def test_snapshot_is_immutable_copy(self):
        meter = CostMeter()
        meter.charge_cpu(3)
        snapshot = meter.snapshot()
        meter.charge_cpu(4)
        assert snapshot.cpu == 3
        assert meter.cpu == 7


class TestSnapshotArithmetic:
    def test_subtraction(self):
        delta = CostSnapshot(5, 100) - CostSnapshot(2, 40)
        assert delta.io == 3
        assert delta.cpu == 60

    def test_ticks(self):
        assert CostSnapshot(1, 1).ticks == IO_WEIGHT + 1


class TestMeterWindow:
    def test_measures_delta_only(self):
        meter = CostMeter()
        meter.charge_cpu(100)
        with MeterWindow(meter) as window:
            meter.charge_cpu(5)
            meter.charge_io(1)
        assert window.delta.cpu == 5
        assert window.delta.io == 1

    def test_nested_windows(self):
        meter = CostMeter()
        with MeterWindow(meter) as outer:
            meter.charge_cpu(1)
            with MeterWindow(meter) as inner:
                meter.charge_cpu(2)
        assert inner.delta.cpu == 2
        assert outer.delta.cpu == 3
