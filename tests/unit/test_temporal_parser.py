"""Unit tests for the VALIDTIME temporal SQL parser."""

import pytest

from repro.algebra.operators import (
    Location,
    Project,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferM,
)
from repro.core.parser import is_temporal_query, parse_temporal_query
from repro.errors import SQLSyntaxError


def nodes(plan, node_type):
    return [node for node in plan.walk() if isinstance(node, node_type)]


class TestDetection:
    def test_validtime_prefix(self):
        assert is_temporal_query("VALIDTIME SELECT * FROM T")
        assert is_temporal_query("  validtime select * from t")

    def test_regular_sql_not_temporal(self):
        assert not is_temporal_query("SELECT * FROM T")

    def test_missing_prefix_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query("SELECT * FROM POSITION", figure3_db)


class TestInitialPlanShape:
    def test_transfer_m_on_top(self, figure3_db):
        plan = parse_temporal_query("VALIDTIME SELECT * FROM POSITION", figure3_db)
        assert isinstance(plan, TransferM)

    def test_all_processing_in_dbms(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID",
            figure3_db,
        )
        below = plan.input
        assert all(node.location is Location.DBMS for node in below.walk())

    def test_group_by_becomes_temporal_aggregate(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID",
            figure3_db,
        )
        assert len(nodes(plan, TemporalAggregate)) == 1

    def test_aggregate_alias_names_output(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID",
            figure3_db,
        )
        taggr = nodes(plan, TemporalAggregate)[0]
        assert taggr.schema.has("Cnt")

    def test_join_becomes_temporal_join(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT A.PosID, B.EmpName FROM POSITION A, POSITION B "
            "WHERE A.PosID = B.PosID",
            figure3_db,
        )
        assert len(nodes(plan, TemporalJoin)) == 1

    def test_single_table_predicates_pushed_to_scans(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT A.PosID, B.EmpName FROM POSITION A, POSITION B "
            "WHERE A.PosID = B.PosID AND A.T1 < 5",
            figure3_db,
        )
        join = nodes(plan, TemporalJoin)[0]
        assert isinstance(join.left, Select)

    def test_missing_join_condition_rejected(self, figure3_db):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            parse_temporal_query(
                "VALIDTIME SELECT A.PosID FROM POSITION A, POSITION B",
                figure3_db,
            )

    def test_order_by_becomes_sort(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID, EmpName FROM POSITION ORDER BY PosID",
            figure3_db,
        )
        assert isinstance(plan.input, Sort)

    def test_period_attributes_appended_implicitly(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID FROM POSITION", figure3_db
        )
        project = nodes(plan, Project)[0]
        assert project.schema.names == ("PosID", "T1", "T2")

    def test_explicit_period_attributes_not_duplicated(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT PosID, T1, T2 FROM POSITION", figure3_db
        )
        project = nodes(plan, Project)[0]
        assert project.schema.names == ("PosID", "T1", "T2")


class TestResolution:
    def test_disambiguated_join_columns(self, figure3_db):
        plan = parse_temporal_query(
            "VALIDTIME SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B "
            "WHERE A.PosID = B.PosID",
            figure3_db,
        )
        project = nodes(plan, Project)[0]
        assert "EmpName" in project.schema.names
        assert "EmpName_2" in project.schema.names

    def test_unknown_column_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT Bogus FROM POSITION", figure3_db
            )

    def test_ambiguous_column_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT EmpName FROM POSITION A, POSITION B "
                "WHERE A.PosID = B.PosID",
                figure3_db,
            )

    def test_unknown_alias_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT Z.PosID FROM POSITION A", figure3_db
            )


class TestRestrictions:
    def test_derived_tables_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT X FROM (SELECT 1 FROM POSITION) D", figure3_db
            )

    def test_union_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT PosID FROM POSITION UNION "
                "SELECT PosID FROM POSITION",
                figure3_db,
            )

    def test_group_by_expression_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT COUNT(PosID) FROM POSITION GROUP BY PosID + 1",
                figure3_db,
            )

    def test_bare_column_with_group_by_must_be_grouped(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT EmpName, COUNT(PosID) FROM POSITION "
                "GROUP BY PosID",
                figure3_db,
            )

    def test_desc_order_rejected(self, figure3_db):
        with pytest.raises(SQLSyntaxError):
            parse_temporal_query(
                "VALIDTIME SELECT PosID FROM POSITION ORDER BY PosID DESC",
                figure3_db,
            )
