"""Unit tests for the persistent cardinality feedback store.

Covers the q-error metric, fingerprint invariances (predicate
reordering, commuted joins, cardinality-preserving wrappers), EMA
convergence with tolerance-gated epochs, persistence round-trips across
Tango sessions, and the plan cache keying on the feedback epoch.
"""

import pytest

from repro.algebra.expressions import And, ColumnRef, Comparison, Literal
from repro.algebra.operators import (
    Join,
    Location,
    Project,
    Scan,
    Select,
    Sort,
    TransferD,
    TransferM,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.core.cardinality import (
    CardinalityFeedbackStore,
    plan_fingerprint,
    qerror,
    trusted_nodes,
)
from repro.core.tango import Tango, TangoConfig

R_SCHEMA = Schema(
    [Attribute("RA", AttrType.INT), Attribute("RB", AttrType.INT)]
)
S_SCHEMA = Schema(
    [Attribute("SA", AttrType.INT), Attribute("SC", AttrType.INT)]
)


def lt(column, value):
    return Comparison("<", ColumnRef(column), Literal(value))


def gt(column, value):
    return Comparison(">", ColumnRef(column), Literal(value))


class TestQError:
    def test_exact_estimate_is_one(self):
        assert qerror(100, 100) == 1.0

    def test_symmetric(self):
        assert qerror(10, 1000) == qerror(1000, 10) == 100.0

    def test_clamps_empty_results(self):
        assert qerror(0, 0) == 1.0
        assert qerror(0, 50) == 50.0
        assert qerror(0.2, 5) == 5.0


class TestFingerprint:
    def test_conjunct_order_normalizes(self):
        scan = Scan("R", R_SCHEMA)
        forward = Select(scan, Location.DBMS, And((lt("RA", 5), gt("RB", 2))))
        reversed_ = Select(scan, Location.DBMS, And((gt("RB", 2), lt("RA", 5))))
        assert plan_fingerprint(forward) == plan_fingerprint(reversed_)

    def test_different_predicates_differ(self):
        scan = Scan("R", R_SCHEMA)
        one = Select(scan, Location.DBMS, lt("RA", 5))
        other = Select(scan, Location.DBMS, lt("RA", 7))
        assert plan_fingerprint(one) != plan_fingerprint(other)

    def test_cardinality_preserving_wrappers_are_transparent(self):
        scan = Scan("R", R_SCHEMA)
        base = plan_fingerprint(scan)
        assert plan_fingerprint(TransferM(scan)) == base
        assert plan_fingerprint(Sort(TransferM(scan), Location.MIDDLEWARE, ("RA",))) == base
        assert (
            plan_fingerprint(
                Project.of_columns(TransferM(scan), ["RA"], Location.MIDDLEWARE)
            )
            == base
        )
        assert plan_fingerprint(TransferD(TransferM(scan))) == base

    def test_commuted_join_sides_share_fingerprint(self):
        r, s = Scan("R", R_SCHEMA), Scan("S", S_SCHEMA)
        left = Join(TransferM(r), TransferM(s), Location.MIDDLEWARE, "RA", "SA")
        right = Join(TransferM(s), TransferM(r), Location.MIDDLEWARE, "SA", "RA")
        fp = plan_fingerprint(left)
        assert fp is not None
        assert fp == plan_fingerprint(right)

    def test_temp_table_subtree_is_unlearnable(self):
        temp = Scan("TANGO_TMP_1_2", R_SCHEMA)
        assert plan_fingerprint(temp) is None
        assert plan_fingerprint(Select(temp, Location.DBMS, lt("RA", 5))) is None
        # A join with one unlearnable side is itself unlearnable.
        join = Join(
            TransferM(Scan("R", R_SCHEMA)),
            TransferM(temp),
            Location.MIDDLEWARE,
            "RA",
            "RA",
        )
        assert plan_fingerprint(join) is None

    def test_fingerprint_is_a_session_stable_string(self):
        # Raw strings, never hash() values: Python string hashing is
        # per-process seeded, which would break persistence.
        scan = Scan("R", R_SCHEMA)
        assert plan_fingerprint(scan) == "scan:r"


class TestTrustedNodes:
    def test_join_inputs_are_untrusted(self):
        r, s = Scan("R", R_SCHEMA), Scan("S", S_SCHEMA)
        tm_r, tm_s = TransferM(r), TransferM(s)
        join = Join(tm_r, tm_s, Location.MIDDLEWARE, "RA", "SA")
        trusted = trusted_nodes(join)
        assert id(join) in trusted
        assert id(tm_r) not in trusted
        assert id(r) not in trusted

    def test_blocking_operator_restores_trust(self):
        r, s = Scan("R", R_SCHEMA), Scan("S", S_SCHEMA)
        sorted_side = Sort(TransferM(r), Location.MIDDLEWARE, ("RA",))
        join = Join(
            sorted_side, TransferM(s), Location.MIDDLEWARE, "RA", "SA"
        )
        assert id(sorted_side.input) in trusted_nodes(join)
        # ... but not under the strict policy used for zero-row rechecks.
        assert id(sorted_side.input) not in trusted_nodes(
            join, restore_blocking=False
        )


class TestFeedbackStoreEMA:
    def test_first_observation_seeds(self):
        store = CardinalityFeedbackStore()
        assert store.observe("fp", 500) is True
        assert store.learned_cardinality("fp") == 500.0
        assert store.observations("fp") == 1

    def test_converges_toward_repeated_actual(self):
        store = CardinalityFeedbackStore(smoothing=0.3)
        store.observe("fp", 10)
        for _ in range(40):
            store.observe("fp", 1000)
        assert store.learned_cardinality("fp") == pytest.approx(1000, rel=0.01)

    def test_epoch_stops_moving_once_converged(self):
        store = CardinalityFeedbackStore(smoothing=0.3, tolerance=0.05)
        store.observe("fp", 1000)
        epoch_after_seed = store.epoch
        # Identical re-observations are immaterial: no epoch movement, so
        # a converged workload keeps its plan-cache hits.
        for _ in range(5):
            assert store.observe("fp", 1000) is False
        assert store.epoch == epoch_after_seed
        # A genuine shift is material again.
        assert store.observe("fp", 5000) is True
        assert store.epoch == epoch_after_seed + 1

    def test_unknown_fingerprint(self):
        store = CardinalityFeedbackStore()
        assert store.learned_cardinality("missing") is None
        assert store.observations("missing") == 0

    def test_clear_bumps_epoch_once(self):
        store = CardinalityFeedbackStore()
        store.observe("fp", 10)
        before = store.epoch
        store.clear()
        assert len(store) == 0
        assert store.epoch == before + 1
        store.clear()  # empty clear is a no-op
        assert store.epoch == before + 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "feedback.json")
        store = CardinalityFeedbackStore()
        store.observe("scan:r", 123)
        store.observe("select[RA < 5](scan:r)", 7)
        store.save(path)
        fresh = CardinalityFeedbackStore()
        assert fresh.load(path) == 2
        assert fresh.learned_cardinality("scan:r") == 123.0
        assert fresh.observations("select[RA < 5](scan:r)") == 1
        assert fresh.epoch == 1  # one material bump for the whole merge

    def test_load_overwrites_in_memory(self, tmp_path):
        path = str(tmp_path / "feedback.json")
        store = CardinalityFeedbackStore()
        store.observe("fp", 100)
        store.save(path)
        other = CardinalityFeedbackStore()
        other.observe("fp", 999)
        other.load(path)
        assert other.learned_cardinality("fp") == 100.0

    def test_round_trip_across_tango_sessions(self, tmp_path):
        path = str(tmp_path / "feedback.json")
        config = TangoConfig(learn_cardinalities=True, feedback_path=path)
        from tests.conftest import make_figure3_db

        sql = (
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        with Tango(make_figure3_db(), config=config) as first:
            baseline = first.query(sql).rows
            assert len(first.feedback_store) > 0
        # close() persisted the learned store ...
        assert (tmp_path / "feedback.json").exists()
        # ... and a brand-new session loads it back and answers identically.
        with Tango(make_figure3_db(), config=config) as second:
            assert len(second.feedback_store) > 0
            assert second.feedback_store.epoch >= 1
            assert second.query(sql).rows == baseline

    def test_missing_feedback_file_is_fine(self, tmp_path):
        config = TangoConfig(
            learn_cardinalities=True,
            feedback_path=str(tmp_path / "absent.json"),
        )
        from tests.conftest import make_figure3_db

        with Tango(make_figure3_db(), config=config) as tango:
            assert len(tango.feedback_store) == 0


class TestPlanCacheEpoch:
    SQL = (
        "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID"
    )

    def _counters(self, tango):
        hits = tango.metrics.counter("plan_cache_hits").value
        misses = tango.metrics.counter("plan_cache_misses").value
        return hits, misses

    def test_feedback_epoch_invalidates_cached_plans(self, figure3_db):
        tango = Tango(figure3_db)
        tango.optimize(self.SQL)
        tango.optimize(self.SQL)
        hits, misses = self._counters(tango)
        assert hits == 1 and misses == 1
        # An epoch move means the learned world changed: the cached plan
        # was costed against stale estimates and must not be reused.
        tango.feedback_store.observe("scan:somewhere", 42)
        tango.optimize(self.SQL)
        hits, misses = self._counters(tango)
        assert hits == 1 and misses == 2

    def test_converged_store_keeps_cache_hits(self, figure3_db):
        tango = Tango(figure3_db)
        tango.feedback_store.observe("fp", 100)
        tango.optimize(self.SQL)
        # Immaterial updates leave the epoch alone: still a cache hit.
        tango.feedback_store.observe("fp", 100)
        tango.optimize(self.SQL)
        hits, misses = self._counters(tango)
        assert hits == 1 and misses == 1
