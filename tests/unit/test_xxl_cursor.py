"""Unit tests for the cursor protocol (Figure 2's result-set model)."""

import pytest

from repro.algebra.schema import Attribute, Schema
from repro.errors import ExecutionError
from repro.xxl.cursor import Cursor, GeneratorCursor, materialize
from repro.xxl.sources import IterableCursor, RelationCursor

SCHEMA = Schema([Attribute("X")])


class TestProtocol:
    def test_init_is_idempotent(self):
        cursor = RelationCursor(SCHEMA, [(1,)])
        cursor.init()
        cursor.init()
        assert cursor.next() == (1,)

    def test_has_next_buffers_without_consuming(self):
        cursor = RelationCursor(SCHEMA, [(1,)])
        assert cursor.has_next()
        assert cursor.has_next()
        assert cursor.next() == (1,)
        assert not cursor.has_next()

    def test_next_past_end_raises(self):
        cursor = RelationCursor(SCHEMA, [])
        with pytest.raises(ExecutionError):
            cursor.next()

    def test_iteration(self):
        cursor = RelationCursor(SCHEMA, [(1,), (2,)])
        assert list(cursor.init()) == [(1,), (2,)]

    def test_rows_produced_counter(self):
        cursor = RelationCursor(SCHEMA, [(1,), (2,)])
        list(cursor.init())
        assert cursor.rows_produced == 2

    def test_use_after_close_raises(self):
        cursor = RelationCursor(SCHEMA, [(1,)])
        cursor.close()
        with pytest.raises(ExecutionError):
            cursor.init()

    def test_context_manager(self):
        with RelationCursor(SCHEMA, [(1,)]) as cursor:
            assert cursor.next() == (1,)

    def test_materialize(self):
        assert materialize(RelationCursor(SCHEMA, [(1,), (2,)])) == [(1,), (2,)]


class TestGeneratorCursor:
    def test_generator_subclass(self):
        class Doubler(GeneratorCursor):
            def _generate(self):
                for value in range(3):
                    yield (value * 2,)

        assert materialize(Doubler(SCHEMA)) == [(0,), (2,), (4,)]

    def test_iterable_cursor(self):
        cursor = IterableCursor(SCHEMA, ((i,) for i in range(3)))
        assert materialize(cursor) == [(0,), (1,), (2,)]
