"""Unit tests for the plan cache and the query fingerprint."""

from repro.core.plan_cache import PlanCache, fingerprint
from repro.workloads import queries
from tests.conftest import make_figure3_db


class TestFingerprint:
    def test_whitespace_and_case_insensitive(self):
        assert fingerprint("SELECT  *\n FROM   POSITION") == fingerprint(
            "select * from position"
        )

    def test_trailing_semicolon_ignored(self):
        assert fingerprint("SELECT 1;") == fingerprint("SELECT 1")

    def test_string_literals_preserved(self):
        a = fingerprint("SELECT * FROM T WHERE Name = 'Alice'")
        b = fingerprint("SELECT * FROM T WHERE Name = 'alice'")
        assert a != b
        # Whitespace inside literals also survives normalization.
        assert fingerprint("SELECT * FROM T WHERE Name = 'a b'") != fingerprint(
            "SELECT * FROM T WHERE Name = 'a  b'"
        )

    def test_different_queries_differ(self):
        assert fingerprint("SELECT A FROM T") != fingerprint("SELECT B FROM T")

    def test_operator_tree_fingerprint(self):
        db = make_figure3_db()
        plan_a = queries.query1_initial_plan(db)
        plan_b = queries.query1_initial_plan(db)
        assert fingerprint(plan_a) == fingerprint(plan_b)
        other = queries.query3_initial_plan(db, "1995-01-01")
        assert fingerprint(plan_a) != fingerprint(other)
        # The same shape with a different literal is a different plan.
        assert fingerprint(queries.query3_initial_plan(db, "1995-01-01")) != (
            fingerprint(queries.query3_initial_plan(db, "1996-01-01"))
        )


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(max_size=4)
        assert cache.get("k") is None
        cache.put("k", "plan")
        assert cache.get("k") == "plan"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_zero_size_disables_caching(self):
        cache = PlanCache(max_size=0)
        cache.put("k", "plan")
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_clear(self):
        cache = PlanCache()
        cache.put("k", "plan")
        cache.clear()
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_to_dict(self):
        cache = PlanCache(max_size=8)
        cache.put("k", "plan")
        cache.get("k")
        cache.get("missing")
        assert cache.to_dict() == {
            "size": 1,
            "max_size": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
