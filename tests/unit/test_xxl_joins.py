"""Unit tests for the middleware sort-merge joins (regular and temporal)."""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.xxl.cursor import materialize
from repro.xxl.merge_join import MergeJoinCursor, read_group
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_join import TemporalJoinCursor

LEFT_SCHEMA = Schema([Attribute("K"), Attribute("L")])
RIGHT_SCHEMA = Schema([Attribute("K2"), Attribute("R")])

TEMPORAL_SCHEMA = Schema(
    [
        Attribute("PosID", AttrType.INT),
        Attribute("Name", AttrType.STR),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def left(rows):
    return RelationCursor(LEFT_SCHEMA, rows)


def right(rows):
    return RelationCursor(RIGHT_SCHEMA, rows)


class TestReadGroup:
    def test_reads_value_pack(self):
        cursor = RelationCursor(LEFT_SCHEMA, [(1, "a"), (1, "b"), (2, "c")]).init()
        first = cursor.next()
        group, lookahead = read_group(cursor, 0, first)
        assert group == [(1, "a"), (1, "b")]
        assert lookahead == (2, "c")

    def test_last_group_returns_none_lookahead(self):
        cursor = RelationCursor(LEFT_SCHEMA, [(1, "a")]).init()
        group, lookahead = read_group(cursor, 0, cursor.next())
        assert group == [(1, "a")]
        assert lookahead is None


class TestMergeJoin:
    def test_basic(self):
        cursor = MergeJoinCursor(
            left([(1, "a"), (2, "b"), (4, "d")]),
            right([(2, "x"), (3, "y"), (4, "z")]),
            "K",
            "K2",
        )
        assert materialize(cursor) == [(2, "b", 2, "x"), (4, "d", 4, "z")]

    def test_value_pack_cross_product(self):
        cursor = MergeJoinCursor(
            left([(1, "a"), (1, "b")]),
            right([(1, "x"), (1, "y")]),
            "K",
            "K2",
        )
        assert len(materialize(cursor)) == 4

    def test_residual_predicate(self):
        cursor = MergeJoinCursor(
            left([(1, 5), (1, 9)]),
            right([(1, 7)]),
            "K",
            "K2",
            residual=Comparison("<", col("L"), col("R")),
        )
        assert materialize(cursor) == [(1, 5, 1, 7)]

    def test_schema_concat_disambiguates(self):
        cursor = MergeJoinCursor(
            RelationCursor(LEFT_SCHEMA, []),
            RelationCursor(LEFT_SCHEMA, []),
            "K",
            "K",
        )
        cursor.init()
        assert cursor.schema.names == ("K", "L", "K_2", "L_2")

    def test_empty_sides(self):
        assert materialize(MergeJoinCursor(left([]), right([(1, "x")]), "K", "K2")) == []

    def test_output_ordered_on_join_key(self):
        cursor = MergeJoinCursor(
            left([(1, "a"), (2, "b"), (3, "c")]),
            right([(1, "x"), (2, "y"), (3, "z")]),
            "K",
            "K2",
        )
        keys = [row[0] for row in materialize(cursor)]
        assert keys == sorted(keys)


class TestTemporalJoin:
    def make(self, left_rows, right_rows, meter=None):
        return TemporalJoinCursor(
            RelationCursor(TEMPORAL_SCHEMA, left_rows),
            RelationCursor(TEMPORAL_SCHEMA, right_rows),
            "PosID",
            "PosID",
            meter=meter,
        )

    def test_overlap_and_intersection(self):
        cursor = self.make(
            [(1, "Tom", 2, 20)],
            [(1, "Jane", 5, 25)],
        )
        assert materialize(cursor) == [(1, "Tom", 1, "Jane", 5, 20)]

    def test_non_overlapping_dropped(self):
        cursor = self.make([(1, "Tom", 2, 5)], [(1, "Jane", 5, 8)])
        assert materialize(cursor) == []

    def test_key_mismatch_dropped(self):
        cursor = self.make([(1, "Tom", 2, 20)], [(2, "Jane", 5, 25)])
        assert materialize(cursor) == []

    def test_schema_single_period(self):
        cursor = self.make([], [])
        cursor.init()
        assert cursor.schema.names == (
            "PosID", "Name", "PosID_2", "Name_2", "T1", "T2",
        )

    def test_figure3_shape(self):
        # Aggregation result joined back with POSITION (Figure 3(b) counts).
        agg_schema = Schema(
            [
                Attribute("PosID", AttrType.INT),
                Attribute("T1", AttrType.DATE),
                Attribute("T2", AttrType.DATE),
                Attribute("CNT", AttrType.INT),
            ]
        )
        aggregated = RelationCursor(
            agg_schema,
            [(1, 2, 5, 1), (1, 5, 20, 2), (1, 20, 25, 1), (2, 5, 10, 1)],
        )
        position = RelationCursor(
            TEMPORAL_SCHEMA,
            [(1, "Tom", 2, 20), (1, "Jane", 5, 25), (2, "Tom", 5, 10)],
        )
        cursor = TemporalJoinCursor(aggregated, position, "PosID", "PosID")
        rows = materialize(cursor)
        assert len(rows) == 5
        # row layout: (PosID, CNT, PosID_2, Name, T1, T2)
        tom_first = [row for row in rows if row[3] == "Tom" and row[4] == 2]
        assert tom_first == [(1, 1, 1, "Tom", 2, 5)]

    def test_multiple_overlaps_per_pack(self):
        cursor = self.make(
            [(1, "A", 0, 10)],
            [(1, "B", 2, 4), (1, "C", 6, 12), (1, "D", 20, 30)],
        )
        rows = materialize(cursor)
        assert [(row[3], row[4], row[5]) for row in rows] == [
            ("B", 2, 4),
            ("C", 6, 10),
        ]

    def test_meter_charged(self):
        meter = CostMeter()
        materialize(self.make([(1, "A", 0, 10)], [(1, "B", 2, 4)], meter))
        assert meter.cpu > 0
