"""Unit tests for the Translator-To-SQL.

Each test translates a DBMS-located plan subtree to SQL, runs the SQL on
MiniDB, and checks the rows — the translator's contract is semantic, not
textual.
"""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import Location, TransferD, TransferM
from repro.core.translator import SQLTranslator
from repro.errors import PlanError


@pytest.fixture
def db(figure3_db):
    return figure3_db


@pytest.fixture
def translator():
    return SQLTranslator()


def run(db, sql):
    return db.query(sql)


class TestBasics:
    def test_scan(self, db, translator):
        sql = translator.translate(scan(db, "POSITION").build())
        assert sorted(run(db, sql)) == sorted(
            [(1, "Tom", 2, 20), (1, "Jane", 5, 25), (2, "Tom", 5, 10)]
        )

    def test_selection(self, db, translator):
        plan = scan(db, "POSITION").select(Comparison("=", col("PosID"), lit(2))).build()
        assert run(db, translator.translate(plan)) == [(2, "Tom", 5, 10)]

    def test_projection(self, db, translator):
        plan = scan(db, "POSITION").project("EmpName", "T1").build()
        assert sorted(run(db, translator.translate(plan))) == [
            ("Jane", 5), ("Tom", 2), ("Tom", 5),
        ]

    def test_top_sort_becomes_order_by(self, db, translator):
        plan = scan(db, "POSITION").sort("T1", "EmpName").build()
        sql = translator.translate(plan)
        assert "ORDER BY T1, EmpName" in sql
        rows = run(db, sql)
        assert [row[2] for row in rows] == [2, 5, 5]

    def test_interior_sort_dropped(self, db, translator):
        plan = (
            scan(db, "POSITION")
            .sort("T1")
            .select(Comparison("=", col("PosID"), lit(1)))
            .build()
        )
        sql = translator.translate(plan)
        assert "ORDER BY" not in sql
        assert len(run(db, sql)) == 2

    def test_middleware_subtree_rejected(self, db, translator):
        plan = scan(db, "POSITION").to_middleware().build()
        with pytest.raises(PlanError):
            translator.translate(plan)


class TestJoins:
    def test_regular_join(self, db, translator):
        plan = scan(db, "POSITION").join(scan(db, "POSITION"), "PosID", "PosID").build()
        rows = run(db, translator.translate(plan))
        assert len(rows) == 5  # 2x2 for position 1 plus 1x1 for position 2
        assert len(rows[0]) == 8

    def test_join_with_residual(self, db, translator):
        residual = Comparison("<", col("T1"), col("T1_2"))
        plan = (
            scan(db, "POSITION")
            .join(scan(db, "POSITION"), "PosID", "PosID", residual=residual)
            .build()
        )
        rows = run(db, translator.translate(plan))
        assert len(rows) == 1  # only Tom(2) before Jane(5)

    def test_temporal_join_figure5_shape(self, db, translator):
        plan = (
            scan(db, "POSITION")
            .temporal_join(scan(db, "POSITION"), "PosID", "PosID")
            .build()
        )
        sql = translator.translate(plan)
        assert "GREATEST" in sql and "LEAST" in sql
        rows = run(db, sql)
        # Overlapping self-pairs: pos1 Tom-Tom, Tom-Jane, Jane-Tom,
        # Jane-Jane; pos2 Tom-Tom.
        assert len(rows) == 5
        tom_jane = [row for row in rows if row[1] == "Tom" and row[3] == "Jane"]
        assert tom_jane[0][-2:] == (5, 20)

    def test_product(self, db, translator):
        plan = scan(db, "POSITION").product(scan(db, "POSITION")).build()
        assert len(run(db, translator.translate(plan))) == 9


class TestTemporalAggregation:
    def test_taggr_d_matches_figure3(self, db, translator):
        plan = (
            scan(db, "POSITION")
            .project("PosID", "T1", "T2")
            .taggr(group_by=["PosID"], count="PosID")
            .sort("PosID", "T1")
            .build()
        )
        rows = run(db, translator.translate(plan))
        assert rows == [(1, 2, 5, 1), (1, 5, 20, 2), (1, 20, 25, 1), (2, 5, 10, 1)]

    def test_taggr_d_no_grouping(self, db, translator):
        plan = (
            scan(db, "POSITION")
            .project("T1", "T2")
            .taggr(count="T1")
            .sort("T1")
            .build()
        )
        rows = run(db, translator.translate(plan))
        # Global constant intervals over {[2,20),[5,25),[5,10)}.
        assert rows == [
            (2, 5, 1), (5, 10, 3), (10, 20, 2), (20, 25, 1),
        ]

    def test_taggr_d_other_aggregates(self, db, translator):
        from repro.algebra.operators import AggregateSpec

        plan = (
            scan(db, "POSITION")
            .project("PosID", "T1", "T2")
            .taggr(
                group_by=["PosID"],
                aggregates=[AggregateSpec("MIN", "T1", "FirstStart")],
            )
            .sort("PosID", "T1")
            .build()
        )
        rows = run(db, translator.translate(plan))
        assert rows[0] == (1, 2, 5, 2)


class TestTransferDReferences:
    def test_temp_table_substituted(self, db, translator):
        db.execute("CREATE TABLE TMP_42 (PosID INT, CNT INT)")
        db.execute("INSERT INTO TMP_42 VALUES (1, 2), (2, 1)")
        mw_part = scan(db, "POSITION").project("PosID", "T1", "T2").to_middleware()
        transfer_down = TransferD(mw_part.build())
        from repro.algebra.operators import Sort

        plan = Sort(transfer_down, Location.DBMS, ("PosID",))
        sql = translator.translate(plan, {id(transfer_down): "TMP_42"})
        assert "TMP_42" in sql

    def test_unassigned_temp_table_rejected(self, db, translator):
        transfer_down = TransferD(scan(db, "POSITION").to_middleware().build())
        with pytest.raises(PlanError):
            translator.translate(transfer_down, {})


class TestDedup:
    def test_distinct(self, db, translator):
        plan = scan(db, "POSITION").project("EmpName").dedup().build()
        rows = run(db, translator.translate(plan))
        assert sorted(rows) == [("Jane",), ("Tom",)]
