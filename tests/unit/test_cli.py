"""Unit tests for the interactive shell."""

import io

import pytest

from repro.cli import Shell, format_table, split_statements
from repro.core.tango import Tango
from repro.dbms.database import MiniDB


@pytest.fixture
def shell():
    db = MiniDB()
    db.execute("CREATE TABLE T (K INT, Name VARCHAR(8))")
    db.execute("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
    out = io.StringIO()
    return Shell(Tango(db), out=out), out


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("K", "Name"), [(1, "alpha"), (22, "b")])
        lines = text.splitlines()
        assert lines[0].startswith("K ")
        assert "(2 rows)" in lines[-1]

    def test_truncation(self):
        text = format_table(("K",), [(i,) for i in range(100)], limit=5)
        assert "... 95 more rows" in text
        assert "(100 rows)" in text

    def test_singular_row(self):
        assert "(1 row)" in format_table(("K",), [(1,)])


class TestSplitStatements:
    def test_basic(self):
        assert split_statements("A; B; C") == ["A", "B", "C"]

    def test_semicolon_inside_string_kept(self):
        statements = split_statements("INSERT INTO T VALUES (1, 'a;b'); SELECT 1 FROM T")
        assert len(statements) == 2
        assert "a;b" in statements[0]

    def test_trailing_statement_without_semicolon(self):
        assert split_statements("SELECT 1 FROM T") == ["SELECT 1 FROM T"]

    def test_empty_segments_dropped(self):
        assert split_statements(";;  ;") == []


class TestShell:
    def test_select_prints_table(self, shell):
        sh, out = shell
        sh.run_line("SELECT K FROM T ORDER BY K;")
        text = out.getvalue()
        assert "(2 rows)" in text

    def test_temporal_statement_reports_optimizer(self, shell):
        sh, out = shell
        sh.tango.db.execute("CREATE TABLE P (K INT, T1 DATE, T2 DATE)")
        sh.tango.db.execute("INSERT INTO P VALUES (1, 0, 5)")
        sh.run_line("VALIDTIME SELECT K, COUNT(K) FROM P GROUP BY K;")
        assert "optimizer:" in out.getvalue()

    def test_error_reported_not_raised(self, shell):
        sh, out = shell
        sh.run_line("SELECT Bogus FROM T;")
        assert "error:" in out.getvalue()

    def test_ddl_prints_ok(self, shell):
        sh, out = shell
        sh.run_line("CREATE TABLE U (X INT);")
        assert "ok" in out.getvalue()

    def test_tables_meta(self, shell):
        sh, out = shell
        sh.run_line("\\tables")
        assert "T" in out.getvalue()
        assert "2 rows" in out.getvalue()

    def test_quit_returns_false(self, shell):
        sh, _ = shell
        assert sh.run_line("\\q") is False

    def test_unknown_meta(self, shell):
        sh, out = shell
        sh.run_line("\\frobnicate")
        assert "unknown command" in out.getvalue()

    def test_timing_toggle(self, shell):
        sh, out = shell
        sh.run_line("\\timing off")
        sh.run_line("SELECT K FROM T;")
        assert "time:" not in out.getvalue().split("timing off")[-1]

    def test_explain_meta(self, shell):
        sh, out = shell
        sh.tango.db.execute("CREATE TABLE P (K INT, T1 DATE, T2 DATE)")
        sh.tango.db.execute("INSERT INTO P VALUES (1, 0, 5)")
        sh.run_line("\\explain VALIDTIME SELECT K, COUNT(K) FROM P GROUP BY K")
        assert "cost breakdown" in out.getvalue()

    def test_plan_meta(self, shell):
        sh, out = shell
        sh.tango.db.execute("CREATE TABLE P (K INT, T1 DATE, T2 DATE)")
        sh.tango.db.execute("INSERT INTO P VALUES (1, 0, 5)")
        sh.run_line("\\plan VALIDTIME SELECT K, COUNT(K) FROM P GROUP BY K")
        assert "TRANSFER^M" in out.getvalue()

    def test_analyze_meta(self, shell):
        sh, out = shell
        sh.run_line("\\analyze")
        assert "analyzed" in out.getvalue()
        assert sh.tango.db.statistics_of("T") is not None

    def test_empty_line_is_noop(self, shell):
        sh, out = shell
        assert sh.run_line("   ;") is True
        assert out.getvalue() == ""
