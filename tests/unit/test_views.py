"""Unit tests for materialized views: the refresh chooser's decision
boundary, the delta algebra's edges, and the update-path plumbing."""

from __future__ import annotations

import pytest

from repro.algebra import builder
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import AggregateSpec
from repro.core.cardinality import CardinalityFeedbackStore, plan_fingerprint
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.dbms.loader import DirectPathLoader
from repro.errors import CatalogError, DatabaseError, ViewError
from repro.views.delta import (
    Delta,
    DeltaState,
    DeltaUnsupported,
    apply_delta_rows,
    compute_delta,
    net_delta,
)
from repro.workloads.generator import (
    ColumnSpec,
    RandomRelationSpec,
    generate_relation_rows,
)
from repro.algebra.schema import AttrType


def uis_relation(name: str = "BASE", cardinality: int = 400) -> RandomRelationSpec:
    return RandomRelationSpec(
        name=name,
        columns=(ColumnSpec("K0", AttrType.INT, distinct=8),),
        cardinality=cardinality,
        window_start=0,
        window_end=365,
        max_duration=30,
        skew=0.5,
        seed=7,
    )


@pytest.fixture()
def tango():
    spec = uis_relation()
    db = MiniDB()
    DirectPathLoader(db).load(
        spec.name, spec.schema, generate_relation_rows(spec), temporary=False
    )
    db.analyze(spec.name)
    with Tango(db, TangoConfig(learn_cardinalities=True)) as instance:
        yield instance


def taggr_plan(db):
    return (
        builder.scan(db, "BASE")
        .taggr(group_by=("K0",), aggregates=(AggregateSpec("COUNT", "K0"),))
        .to_middleware()
        .build()
    )


def sample_rows(db, count: int) -> list[tuple]:
    return list(db.table("BASE").rows[:count])


class TestRefreshChooser:
    def test_tiny_delta_chooses_incremental(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        doomed = sample_rows(tango.db, 2)
        tango.apply_updates("BASE", deletes=doomed)
        decision = tango.views.choose("V")
        assert decision.strategy == "incremental"
        assert decision.delta_rows == 2
        assert decision.estimated_incremental_us < decision.estimated_full_us

    def test_delta_rivaling_table_chooses_full(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        everything = list(tango.db.table("BASE").rows)
        # Replace every row with a shifted copy: churn ≈ 2 — the delta
        # alone is twice the table, so recomputing must win.  (Deleting
        # and reinserting *identical* rows would net to an empty delta.)
        shifted = [(k, t1 + 1000, t2 + 1000) for k, t1, t2 in everything]
        tango.apply_updates("BASE", inserts=shifted, deletes=everything)
        decision = tango.views.choose("V")
        assert decision.strategy == "full"
        assert decision.churn == pytest.approx(2.0, rel=0.01)

    def test_corrupted_feedback_estimate_flips_the_decision(self, tango):
        view = tango.create_view("V", taggr_plan(tango.db))
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 2))
        assert tango.views.choose("V").strategy == "incremental"
        # Poison the learned cardinality for the view's fingerprint: the
        # chooser prices the re-merge at the estimate it believes, so a
        # wildly inflated entry makes incremental look ruinous.
        fingerprint = plan_fingerprint(view.plan)
        assert fingerprint is not None
        tango.feedback_store.observe(fingerprint, 1e9)
        decision = tango.views.choose("V")
        assert decision.strategy == "full"
        assert "feedback" in decision.reason

    def test_honest_feedback_keeps_incremental(self, tango):
        view = tango.create_view("V", taggr_plan(tango.db))
        fingerprint = plan_fingerprint(view.plan)
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 2))
        # An accurate learned cardinality (the actual view size) must not
        # disturb the low-churn decision.  (Observed after the update —
        # apply_updates rightly invalidates entries that read BASE.)
        tango.feedback_store.observe(
            fingerprint, tango.db.table("V").cardinality
        )
        decision = tango.views.choose("V")
        assert decision.strategy == "incremental"
        assert "feedback" in decision.reason

    def test_forced_strategy_bypasses_the_cost_model(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        everything = list(tango.db.table("BASE").rows)
        shifted = [(k, t1 + 1000, t2 + 1000) for k, t1, t2 in everything]
        tango.apply_updates("BASE", inserts=shifted, deletes=everything)
        outcome = tango.refresh_view("V", strategy="incremental")
        assert outcome.decision.forced
        assert outcome.strategy == "incremental"

    def test_unknown_strategy_rejected(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        with pytest.raises(ViewError):
            tango.refresh_view("V", strategy="sideways")


class TestRefreshExecution:
    def test_refresh_clears_pending_and_counts(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 3))
        view = tango.views.get("V")
        assert view.pending_rows == 3
        outcome = tango.refresh_view("V")
        assert view.pending_rows == 0
        assert view.refreshes == 1
        assert outcome.rows == tango.db.table("V").cardinality
        assert tango.metrics.counter("view_refreshes").value == 1
        if outcome.strategy == "incremental":
            assert tango.metrics.counter("view_refresh_incremental").value == 1

    def test_unsupported_shape_falls_back_to_full(self, tango):
        plan = (
            builder.scan(tango.db, "BASE")
            .project("K0")
            .dedup()
            .to_middleware()
            .build()
        )
        tango.create_view("V", plan)
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 1))
        outcome = tango.refresh_view("V", strategy="incremental")
        assert outcome.strategy == "full"
        assert tango.metrics.counter("view_refresh_fallbacks").value == 1

    def test_drifted_view_contents_fall_back_to_full(self, tango):
        plan = (
            builder.scan(tango.db, "BASE")
            .select(Comparison("<=", col("K0"), lit(50)))
            .to_middleware()
            .build()
        )
        tango.create_view("V", plan)
        # Tamper with the materialization: strip every stored copy of one
        # row, then delete that row from the base — the delta's delete no
        # longer reconciles, and the refresh must notice rather than
        # corrupt the view.
        doomed = tango.db.table("BASE").rows[0]
        view_table = tango.db.table("V")
        view_table.rows[:] = [row for row in view_table.rows if row != doomed]
        tango.apply_updates("BASE", deletes=[doomed])
        outcome = tango.refresh_view("V", strategy="incremental")
        assert outcome.strategy == "full"
        assert tango.metrics.counter("view_refresh_fallbacks").value == 1
        # The fallback healed the drift.
        oracle = tango.execute_plan(tango.optimize(plan).plan)
        assert tango.db.table("V").cardinality == len(oracle.rows)

    def test_explain_banner_records_the_decision(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 2))
        outcome = tango.refresh_view("V", explain=True)
        assert outcome.report is not None
        assert outcome.report.banner.startswith("view refresh:")
        assert "churn" in str(outcome.report)
        assert outcome.report.to_dict()["banner"] == outcome.report.banner


class TestViewLifecycle:
    def test_create_collision_raises(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        with pytest.raises(ViewError):
            tango.create_view("V", taggr_plan(tango.db))
        with pytest.raises(ViewError):
            tango.create_view("BASE", taggr_plan(tango.db))

    def test_drop_view_removes_table_and_registration(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        assert tango.list_views() == ["V"]
        tango.drop_view("V")
        assert tango.list_views() == []
        assert not tango.db.has_table("V")
        with pytest.raises(ViewError):
            tango.views.get("V")

    def test_view_is_queryable_as_a_table(self, tango):
        tango.create_view("V", taggr_plan(tango.db))
        result = tango.db.execute("SELECT COUNT(*) FROM V")
        assert result.fetchall()[0][0] == tango.db.table("V").cardinality


class TestUpdatePath:
    def test_unknown_table_raises(self, tango):
        with pytest.raises(CatalogError):
            tango.apply_updates("NOPE", inserts=[(1, 0, 1)])

    def test_missing_delete_row_aborts_atomically(self, tango):
        before = list(tango.db.table("BASE").rows)
        with pytest.raises(DatabaseError):
            tango.apply_updates(
                "BASE", deletes=[before[0], ("no-such", -1, -2)]
            )
        assert tango.db.table("BASE").rows == before

    def test_updates_move_the_stats_delta_until_analyze(self, tango):
        assert tango.db.stats_delta_of("BASE") == 0
        tango.apply_updates("BASE", deletes=sample_rows(tango.db, 2))
        # apply_updates re-ANALYZEs, so the delta is consumed already.
        assert tango.db.stats_delta_of("BASE") == 0
        tango.db.table("BASE").append((1, 0, 5))
        assert tango.db.stats_delta_of("BASE") == 1
        tango.db.analyze("BASE")
        assert tango.db.stats_delta_of("BASE") == 0


class TestDeltaAlgebra:
    def test_net_delta_cancels_matching_rows(self):
        inserts, deletes = net_delta([(1,), (2,), (2,)], [(2,), (3,)])
        assert sorted(inserts) == [(1,), (2,)]
        assert deletes == [(3,)]

    def test_select_distributes_over_the_delta(self, tango):
        plan = (
            builder.scan(tango.db, "BASE")
            .select(Comparison("<=", col("K0"), lit(1)))
            .build()
        )
        passing = (0, 10, 20)
        failing = (5, 10, 20)
        state = DeltaState(
            tango.db, {"base": ([passing, failing], [])}
        )
        delta = compute_delta(plan, state)
        assert delta.inserts == [passing]
        assert delta.deletes == []

    def test_unsupported_operator_raises(self, tango):
        plan = builder.scan(tango.db, "BASE").project("K0").dedup().build()
        state = DeltaState(tango.db, {"base": ([(1, 0, 1)], [])})
        with pytest.raises(DeltaUnsupported):
            compute_delta(plan, state)

    def test_apply_delta_rows_round_trips(self):
        stored = [(1, 5), (2, 7)]
        updated = apply_delta_rows(stored, Delta([(3, 9)], [(1, 5)]))
        assert updated == [(2, 7), (3, 9)]


class TestFeedbackInvalidation:
    def test_invalidate_table_drops_matching_entries(self):
        store = CardinalityFeedbackStore()
        store.observe("scan:base", 10)
        store.observe("select[K0 <= 1](scan:base)", 4)
        store.observe("scan:other", 9)
        epoch = store.epoch
        assert store.invalidate_table("BASE") == 2
        assert store.epoch == epoch + 1
        assert store.learned_cardinality("scan:other") == 9
        assert store.learned_cardinality("scan:base") is None

    def test_invalidate_table_without_matches_keeps_epoch(self):
        store = CardinalityFeedbackStore()
        store.observe("scan:other", 9)
        epoch = store.epoch
        assert store.invalidate_table("BASE") == 0
        assert store.epoch == epoch
