"""Unit tests for cost-factor calibration."""

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.errors import CalibrationError
from repro.optimizer.calibration import Calibrator, _sample_rows
from repro.optimizer.costs import CostFactors


@pytest.fixture
def connection():
    return Connection(MiniDB())


class TestSampleRows:
    def test_deterministic(self):
        assert _sample_rows(100, seed=1) == _sample_rows(100, seed=1)

    def test_count(self):
        assert len(_sample_rows(250)) == 250

    def test_periods_are_well_formed(self):
        assert all(row[2] < row[3] for row in _sample_rows(100))


class TestCalibrator:
    def test_requires_sizes(self, connection):
        with pytest.raises(CalibrationError):
            Calibrator(connection, sizes=())

    def test_produces_positive_factors(self, connection):
        factors = Calibrator(connection, sizes=(100,)).calibrate()
        for name in ("p_sortm", "p_taggm1", "p_taggd1", "p_scand", "p_joind"):
            assert getattr(factors, name) > 0, name
        # Transfers fit a two-term model; in-process the per-byte share can
        # legitimately measure zero, but the combined cost never can.
        assert factors.p_tm >= 0 and factors.p_td >= 0
        assert factors.p_tmr + factors.p_tm > 0
        assert factors.p_tdr + factors.p_td > 0

    def test_taggr_d_costs_more_than_taggr_m(self, connection):
        # The headline asymmetry the whole paper rests on: the SQL rewrite
        # of temporal aggregation is far more expensive per byte than the
        # middleware algorithm.
        factors = Calibrator(connection, sizes=(300,)).calibrate()
        assert factors.p_taggd1 > factors.p_taggm1

    def test_base_factors_preserved_for_unfitted_fields(self, connection):
        base = CostFactors(p_prodd=123.0, p_sem=9.0)
        factors = Calibrator(connection, sizes=(100,)).calibrate(base)
        assert factors.p_prodd == 123.0
        assert factors.p_sem == 9.0

    def test_no_tables_leak(self, connection):
        Calibrator(connection, sizes=(100,)).calibrate()
        assert connection.db.list_tables() == []
