"""Unit tests for the direct-path loader (the TRANSFER^D target)."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.database import MiniDB
from repro.dbms.loader import DirectPathLoader
from repro.errors import CatalogError

SCHEMA = Schema([Attribute("K", AttrType.INT), Attribute("T1", AttrType.DATE)])


@pytest.fixture
def db():
    return MiniDB()


class TestLoad:
    def test_creates_and_fills_table(self, db):
        loader = DirectPathLoader(db)
        assert loader.load("TMP", SCHEMA, [(1, 5), (2, 6)]) == 2
        assert db.table("TMP").cardinality == 2

    def test_existing_target_rejected(self, db):
        loader = DirectPathLoader(db)
        loader.load("TMP", SCHEMA, [])
        with pytest.raises(CatalogError):
            loader.load("TMP", SCHEMA, [])

    def test_clustered_order_recorded(self, db):
        DirectPathLoader(db).load("TMP", SCHEMA, [(1, 5)], order=("K",))
        assert db.table("TMP").clustered_order == ("K",)

    def test_temporary_flag(self, db):
        DirectPathLoader(db).load("TMP", SCHEMA, [])
        assert db.table("TMP").temporary

    def test_charges_block_io(self, db):
        before = db.meter.io
        DirectPathLoader(db).load("TMP", SCHEMA, [(i, i) for i in range(5000)])
        assert db.meter.io > before

    def test_direct_path_cheaper_than_inserts(self, db):
        rows = [(i, i) for i in range(2000)]
        db.meter.reset()
        DirectPathLoader(db).load("FAST", SCHEMA, rows)
        direct_ticks = db.meter.ticks
        db.meter.reset()
        db.create_table("SLOW", SCHEMA)
        db.insert_rows("SLOW", rows)
        insert_ticks = db.meter.ticks
        assert direct_ticks < insert_ticks


class TestUnload:
    def test_unload_drops(self, db):
        loader = DirectPathLoader(db)
        loader.load("TMP", SCHEMA, [])
        loader.unload("TMP")
        assert not db.has_table("TMP")

    def test_unload_missing_is_noop(self, db):
        DirectPathLoader(db).unload("NEVER_EXISTED")
