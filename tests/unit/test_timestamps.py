"""Unit tests for day-granularity calendar arithmetic."""

import datetime

import pytest

from repro.temporal.timestamps import (
    DAY_ORIGIN,
    date_of,
    day_of,
    days_between,
    iso_of,
    year_start,
)


class TestDayOf:
    def test_origin_is_day_zero(self):
        assert day_of("1830-01-01") == 0

    def test_day_after_origin(self):
        assert day_of("1830-01-02") == 1

    def test_accepts_date_objects(self):
        assert day_of(datetime.date(1830, 1, 3)) == 2

    def test_string_and_date_agree(self):
        assert day_of("1997-02-01") == day_of(datetime.date(1997, 2, 1))

    def test_monotonic_over_month_boundary(self):
        assert day_of("1997-02-01") - day_of("1997-01-31") == 1

    def test_leap_year_february(self):
        assert day_of("1996-03-01") - day_of("1996-02-28") == 2

    def test_non_leap_year_february(self):
        assert day_of("1997-03-01") - day_of("1997-02-28") == 1

    def test_invalid_date_raises(self):
        with pytest.raises(ValueError):
            day_of("1997-13-01")


class TestDateOf:
    def test_roundtrip_origin(self):
        assert date_of(0) == DAY_ORIGIN

    def test_roundtrip_arbitrary(self):
        day = day_of("1995-06-15")
        assert date_of(day) == datetime.date(1995, 6, 15)

    def test_iso_of_roundtrip(self):
        assert iso_of(day_of("1999-12-31")) == "1999-12-31"


class TestHelpers:
    def test_days_between_week(self):
        assert days_between("1997-02-01", "1997-02-08") == 7

    def test_days_between_negative(self):
        assert days_between("1997-02-08", "1997-02-01") == -7

    def test_year_start_origin_year(self):
        assert year_start(1830) == 0

    def test_year_start_is_january_first(self):
        assert date_of(year_start(1995)) == datetime.date(1995, 1, 1)

    def test_paper_example_distinct_day_count(self):
        # Section 3.3: "the number of days between their minimum and maximum
        # values" for T1 = 1995-01-01 .. 1999-12-25 is 1819.
        assert day_of("1999-12-25") - day_of("1995-01-01") == 1819
