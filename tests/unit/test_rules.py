"""Unit tests for the transformation rules T1-T12 and E1-E5.

Each rule is exercised against a memo seeded with its left-hand-side
pattern; assertions check the expected right-hand-side element or merge
appears.  Soundness (result equality of rewritten plans) is covered by the
property tests in ``tests/property/test_prop_rules.py``.
"""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    Join,
    Location,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
    AggregateSpec,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.optimizer.memo import Memo
from repro.optimizer.rules import (
    E1SwapProjectSelect,
    E2CommuteBinary,
    E4SwapSortSelect,
    E5SwapSortProject,
    P1PushSelectThroughJoin,
    P2PushSelectThroughTemporalJoin,
    T1MoveTemporalAggregate,
    T2MoveJoin,
    T3MoveTemporalJoin,
    T4MoveSelection,
    T6MoveSort,
    T7EliminateTransferPairMD,
    T8EliminateTransferPairDM,
    T9DropIdentityProjection,
    T11DropSort,
    T12CollapseSortPair,
    default_rules,
)

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

MW = Location.MIDDLEWARE
DB = Location.DBMS


def scan() -> Scan:
    return Scan("R", SCHEMA)


def apply_rule(rule, plan) -> Memo:
    """Insert *plan*, apply *rule* to every element once, return the memo."""
    memo = Memo()
    memo.insert_tree(plan)
    for eq_class in memo.classes():
        for element in list(eq_class.elements):
            rule.apply(memo, memo.find(eq_class.id), element)
    return memo


def templates(memo: Memo) -> list[str]:
    return [
        f"{type(element.template).__name__}@{element.template.location.superscript}"
        for eq_class in memo.classes()
        for element in eq_class.elements
    ]


class TestHeuristicGroup1:
    def test_t1_moves_taggr(self):
        plan = TemporalAggregate(scan(), DB, ("K",), (AggregateSpec("COUNT", "K"),))
        memo = apply_rule(T1MoveTemporalAggregate(), plan)
        names = templates(memo)
        assert "TemporalAggregate@M" in names
        assert "TransferD@D" in names
        assert "Sort@D" in names

    def test_t1_skips_middleware_located(self):
        plan = TemporalAggregate(
            TransferM(scan()), MW, ("K",), (AggregateSpec("COUNT", "K"),)
        )
        memo = apply_rule(T1MoveTemporalAggregate(), plan)
        assert "TransferD@D" not in templates(memo)

    def test_t2_moves_join(self):
        plan = Join(scan(), scan(), DB, "K", "K")
        memo = apply_rule(T2MoveJoin(), plan)
        assert "Join@M" in templates(memo)

    def test_t2_ignores_temporal_join(self):
        plan = TemporalJoin(scan(), scan(), DB, "K", "K")
        memo = apply_rule(T2MoveJoin(), plan)
        assert "TemporalJoin@M" not in templates(memo)

    def test_t3_moves_temporal_join(self):
        plan = TemporalJoin(scan(), scan(), DB, "K", "K")
        memo = apply_rule(T3MoveTemporalJoin(), plan)
        assert "TemporalJoin@M" in templates(memo)

    def test_t4_pulls_selection_into_middleware(self):
        plan = TransferM(Select(scan(), DB, Comparison("<", col("V"), lit(5))))
        memo = apply_rule(T4MoveSelection(), plan)
        assert "Select@M" in templates(memo)

    def test_t6_pulls_sort_into_middleware(self):
        plan = TransferM(Sort(scan(), DB, ("K",)))
        memo = apply_rule(T6MoveSort(), plan)
        assert "Sort@M" in templates(memo)


class TestHeuristicGroup2:
    def test_t7_merges_transfer_pair(self):
        plan = TransferM(TransferD(TransferM(scan())))
        memo = Memo()
        root = memo.insert_tree(plan)
        inner = memo.insert_tree(TransferM(scan()))
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T7EliminateTransferPairMD().apply(memo, memo.find(eq_class.id), element)
        assert memo.find(root) == memo.find(inner)

    def test_t8_merges_transfer_pair(self):
        plan = TransferD(TransferM(scan()))
        memo = Memo()
        root = memo.insert_tree(plan)
        base = memo.insert_tree(scan())
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T8EliminateTransferPairDM().apply(memo, memo.find(eq_class.id), element)
        assert memo.find(root) == memo.find(base)

    def test_t9_merges_identity_projection(self):
        plan = Project.of_columns(scan(), ["K", "V", "T1", "T2"])
        memo = Memo()
        root = memo.insert_tree(plan)
        base = memo.insert_tree(scan())
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T9DropIdentityProjection().apply(memo, memo.find(eq_class.id), element)
        assert memo.find(root) == memo.find(base)

    def test_t9_skips_reordering_projection(self):
        plan = Project.of_columns(scan(), ["V", "K", "T1", "T2"])
        memo = Memo()
        root = memo.insert_tree(plan)
        base = memo.insert_tree(scan())
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T9DropIdentityProjection().apply(memo, memo.find(eq_class.id), element)
        assert memo.find(root) != memo.find(base)

    def test_t11_merges_sort_with_argument(self):
        plan = Sort(scan(), DB, ("K",))
        memo = Memo()
        root = memo.insert_tree(plan)
        base = memo.insert_tree(scan())
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T11DropSort().apply(memo, memo.find(eq_class.id), element)
        assert memo.find(root) == memo.find(base)

    def test_t12_collapses_sort_pair(self):
        plan = Sort(Sort(scan(), DB, ("K",)), DB, ("K", "T1"))
        memo = apply_rule(T12CollapseSortPair(), plan)
        # A new Sort(K,T1) element over the scan class appears.
        sort_elements = [
            element
            for eq_class in memo.classes()
            for element in eq_class.elements
            if isinstance(element.template, Sort)
            and element.template.keys == ("K", "T1")
        ]
        assert any(
            isinstance(memo.class_of(element.children[0]).representative, Scan)
            for element in sort_elements
        )

    def test_t12_requires_prefix(self):
        plan = Sort(Sort(scan(), DB, ("V",)), DB, ("K", "T1"))
        memo = Memo()
        memo.insert_tree(plan)
        before = memo.element_count
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                T12CollapseSortPair().apply(memo, memo.find(eq_class.id), element)
        assert memo.element_count == before


class TestEquivalences:
    def test_e1_pushes_select_below_projection(self):
        plan = Select(
            Project.of_columns(scan(), ["K", "V"]),
            DB,
            Comparison("<", col("V"), lit(5)),
        )
        memo = apply_rule(E1SwapProjectSelect(), plan)
        names = templates(memo)
        assert names.count("Select@D") == 2  # original + pushed-down variant

    def test_e2_commutes_join_with_projection_wrapper(self):
        plan = Join(Project.of_columns(scan(), ["K"]), scan(), DB, "K", "K")
        memo = apply_rule(E2CommuteBinary(), plan)
        assert "Project@D" in templates(memo)

    def test_e4_pushes_select_below_sort_in_middleware(self):
        plan = Select(
            Sort(TransferM(scan()), MW, ("K",)),
            MW,
            Comparison("<", col("V"), lit(5)),
        )
        memo = apply_rule(E4SwapSortSelect(), plan)
        assert templates(memo).count("Sort@M") == 2

    def test_e4_skips_dbms(self):
        plan = Select(Sort(scan(), DB, ("K",)), DB, Comparison("<", col("V"), lit(5)))
        memo = Memo()
        memo.insert_tree(plan)
        before = memo.element_count
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                E4SwapSortSelect().apply(memo, memo.find(eq_class.id), element)
        assert memo.element_count == before

    def test_e5_moves_sort_above_projection(self):
        plan = Project.of_columns(
            Sort(TransferM(scan()), MW, ("K",)), ["K", "V"], MW
        )
        memo = apply_rule(E5SwapSortProject(), plan)
        assert templates(memo).count("Project@M") == 2

    def test_e5_requires_keys_survive(self):
        plan = Project.of_columns(Sort(TransferM(scan()), MW, ("T1",)), ["K"], MW)
        memo = Memo()
        memo.insert_tree(plan)
        before = memo.element_count
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                E5SwapSortProject().apply(memo, memo.find(eq_class.id), element)
        assert memo.element_count == before


class TestPushdowns:
    def test_p1_splits_conjuncts_by_side(self):
        predicate = Comparison("<", col("V"), lit(5)) & Comparison(
            "<", col("V_2"), lit(9)
        )
        plan = Select(Join(scan(), scan(), DB, "K", "K"), DB, predicate)
        memo = apply_rule(P1PushSelectThroughJoin(), plan)
        assert templates(memo).count("Select@D") >= 3

    def test_p2_pushes_overlap_bounds_to_both_sides(self):
        predicate = Comparison("<", col("T1"), lit(100)) & Comparison(
            ">", col("T2"), lit(50)
        )
        plan = Select(TemporalJoin(scan(), scan(), DB, "K", "K"), DB, predicate)
        memo = apply_rule(P2PushSelectThroughTemporalJoin(), plan)
        select_elements = [
            element
            for eq_class in memo.classes()
            for element in eq_class.elements
            if isinstance(element.template, Select)
        ]
        assert len(select_elements) >= 2

    def test_p2_keeps_non_pushable_temporal_conjuncts(self):
        predicate = Comparison("=", col("T1"), lit(100))
        plan = Select(TemporalJoin(scan(), scan(), DB, "K", "K"), DB, predicate)
        memo = Memo()
        memo.insert_tree(plan)
        before = memo.element_count
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                P2PushSelectThroughTemporalJoin().apply(
                    memo, memo.find(eq_class.id), element
                )
        assert memo.element_count == before


class TestDefaultRuleSet:
    def test_contains_paper_rules(self):
        names = {rule.name for rule in default_rules()}
        for expected in ("T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                         "T9", "T11", "T12", "E1", "E2", "E3", "E4", "E5"):
            assert expected in names

    def test_join_order_rules_optional(self):
        names = {rule.name for rule in default_rules(include_join_order=False)}
        assert "E2" not in names
        assert "E3" not in names

    def test_rules_carry_equivalence_types(self):
        by_name = {rule.name: rule.equivalence for rule in default_rules()}
        assert by_name["T6"] == "L"   # T^M preserves order
        assert by_name["T1"] == "M"
        assert by_name["E1"] == "L"
