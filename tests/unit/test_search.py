"""Unit tests for the two-phase optimizer search."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    Location,
    Sort,
    TemporalAggregate,
    TransferM,
)
from repro.algebra.properties import guaranteed_order
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.optimizer.costs import CostFactors
from repro.optimizer.physical import validate_plan
from repro.optimizer.search import Optimizer
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.collector import StatisticsCollector


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE R (K INT, V INT, T1 DATE, T2 DATE)")
    rows = []
    for i in range(2000):
        start = (i * 17) % 1500
        rows.append(f"({i % 100}, {i % 11}, {start}, {start + 40})")
    instance.execute("INSERT INTO R VALUES " + ", ".join(rows))
    instance.analyze("R")
    return instance


@pytest.fixture
def optimizer(db):
    estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
    return Optimizer(estimator)


def taggr_query(db):
    return (
        scan(db, "R")
        .project("K", "T1", "T2")
        .taggr(group_by=["K"], count="K")
        .sort("K")
        .to_middleware()
        .build()
    )


class TestOptimize:
    def test_returns_valid_plan(self, db, optimizer):
        result = optimizer.optimize(taggr_query(db))
        validate_plan(result.plan)

    def test_moves_taggr_to_middleware(self, db, optimizer):
        result = optimizer.optimize(taggr_query(db))
        taggr_nodes = [
            node for node in result.plan.walk()
            if isinstance(node, TemporalAggregate)
        ]
        assert taggr_nodes[0].location is Location.MIDDLEWARE

    def test_respects_required_order(self, db, optimizer):
        result = optimizer.optimize(taggr_query(db))
        assert guaranteed_order(result.plan)[:1] == ("K",)

    def test_cost_not_worse_than_initial(self, db, optimizer):
        initial = taggr_query(db)
        result = optimizer.optimize(initial)
        assert result.cost <= optimizer.coster.cost(initial) + 1e-9

    def test_reports_memo_complexity(self, db, optimizer):
        result = optimizer.optimize(taggr_query(db))
        assert result.class_count > 0
        assert result.element_count >= result.class_count
        assert result.passes >= 1

    def test_deterministic(self, db, optimizer):
        first = optimizer.optimize(taggr_query(db))
        second = optimizer.optimize(taggr_query(db))
        assert first.cost == second.cost
        assert first.plan.cache_key == second.plan.cache_key

    def test_plain_transfer_query(self, db, optimizer):
        plan = scan(db, "R").to_middleware().build()
        result = optimizer.optimize(plan)
        validate_plan(result.plan)

    def test_explain_mentions_complexity(self, db, optimizer):
        result = optimizer.optimize(taggr_query(db))
        assert "classes=" in result.explain()

    def test_selection_stays_in_dbms_when_cheap(self, db, optimizer):
        plan = (
            scan(db, "R")
            .select(Comparison("=", col("K"), lit(1)))
            .to_middleware()
            .build()
        )
        result = optimizer.optimize(plan)
        validate_plan(result.plan)
        # A lone selective filter has no reason to move: expect it below T^M.
        transfer = next(
            node for node in result.plan.walk() if isinstance(node, TransferM)
        )
        assert transfer.input.location is Location.DBMS

    def test_enumerate_costs_orders_plans(self, db, optimizer):
        fast = taggr_query(db)
        slow = (
            scan(db, "R")
            .project("K", "T1", "T2")
            .taggr(group_by=["K"], count="K")
            .sort("K")
            .to_middleware()
            .build()
        )
        costs = optimizer.enumerate_costs([fast, slow])
        assert len(costs) == 2
        assert all(cost > 0 for _, cost in costs)


class TestBudgets:
    def test_element_budget_caps_exploration(self, db):
        estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
        tight = Optimizer(estimator, max_elements=5)
        result = tight.optimize(taggr_query(db))
        validate_plan(result.plan)  # still returns something executable

    def test_single_pass(self, db):
        estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
        quick = Optimizer(estimator, max_passes=1)
        result = quick.optimize(taggr_query(db))
        validate_plan(result.plan)


class TestCostFactorsInfluence:
    def test_expensive_transfer_keeps_work_in_dbms(self, db):
        # A relation whose aggregation result is tiny: with transfers made
        # absurdly expensive, shipping the whole argument to the middleware
        # can never pay off, so TAGGR stays in the DBMS.
        db.execute("CREATE TABLE SMALLR (K INT, T1 DATE, T2 DATE)")
        rows = ", ".join(
            f"({i % 3}, {(i % 5) * 10}, {(i % 5) * 10 + 10})" for i in range(2000)
        )
        db.execute(f"INSERT INTO SMALLR VALUES {rows}")
        db.analyze("SMALLR")
        estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
        factors = CostFactors(p_tm=1e6, p_td=1e6)
        optimizer = Optimizer(estimator, factors)
        plan = (
            scan(db, "SMALLR")
            .taggr(group_by=["K"], count="K")
            .sort("K")
            .to_middleware()
            .build()
        )
        result = optimizer.optimize(plan)
        taggr_nodes = [
            node for node in result.plan.walk()
            if isinstance(node, TemporalAggregate)
        ]
        assert taggr_nodes[0].location is Location.DBMS

    def test_free_middleware_pulls_work_up(self, db):
        estimator = CardinalityEstimator(StatisticsCollector(Connection(db)))
        factors = CostFactors(p_taggd1=100.0, p_taggd2=100.0)
        optimizer = Optimizer(estimator, factors)
        result = optimizer.optimize(taggr_query(db))
        taggr_nodes = [
            node for node in result.plan.walk()
            if isinstance(node, TemporalAggregate)
        ]
        assert taggr_nodes[0].location is Location.MIDDLEWARE
