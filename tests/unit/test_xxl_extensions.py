"""Unit tests for the Section 7 extension operators: duplicate
elimination, coalescing, and difference — plus TRANSFER^D."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.errors import ExecutionError
from repro.xxl.coalesce import CoalesceCursor
from repro.xxl.cursor import materialize
from repro.xxl.dedup import DedupCursor
from repro.xxl.difference import DifferenceCursor
from repro.xxl.sources import RelationCursor
from repro.xxl.transfer import TransferDCursor, unique_temp_name

SCHEMA = Schema([Attribute("K"), Attribute("V")])

TEMPORAL = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


class TestDedup:
    def test_hash_dedup_keeps_first(self):
        rows = [(1, "a"), (2, "b"), (1, "a")]
        assert materialize(DedupCursor(RelationCursor(SCHEMA, rows))) == [
            (1, "a"), (2, "b"),
        ]

    def test_sorted_dedup(self):
        rows = [(1, "a"), (1, "a"), (2, "b")]
        cursor = DedupCursor(RelationCursor(SCHEMA, rows), assume_sorted=True)
        assert materialize(cursor) == [(1, "a"), (2, "b")]

    def test_sorted_dedup_misses_scattered_duplicates(self):
        # Documented contract: sorted mode only removes adjacent duplicates.
        rows = [(1, "a"), (2, "b"), (1, "a")]
        cursor = DedupCursor(RelationCursor(SCHEMA, rows), assume_sorted=True)
        assert len(materialize(cursor)) == 3

    def test_order_preserved(self):
        rows = [(3, "x"), (1, "y"), (3, "x"), (2, "z")]
        assert materialize(DedupCursor(RelationCursor(SCHEMA, rows))) == [
            (3, "x"), (1, "y"), (2, "z"),
        ]


class TestCoalesce:
    def run(self, rows):
        return materialize(CoalesceCursor(RelationCursor(TEMPORAL, rows)))

    def test_merges_overlapping(self):
        assert self.run([(1, 0, 5), (1, 3, 9)]) == [(1, 0, 9)]

    def test_merges_adjacent(self):
        assert self.run([(1, 0, 5), (1, 5, 9)]) == [(1, 0, 9)]

    def test_keeps_gaps(self):
        assert self.run([(1, 0, 3), (1, 5, 9)]) == [(1, 0, 3), (1, 5, 9)]

    def test_respects_value_equivalence(self):
        assert self.run([(1, 0, 5), (2, 3, 9)]) == [(1, 0, 5), (2, 3, 9)]

    def test_chain_of_three(self):
        assert self.run([(1, 0, 4), (1, 4, 8), (1, 8, 12)]) == [(1, 0, 12)]

    def test_contained_period_absorbed(self):
        assert self.run([(1, 0, 10), (1, 2, 5)]) == [(1, 0, 10)]


class TestDifference:
    def run(self, left_rows, right_rows):
        return materialize(
            DifferenceCursor(
                RelationCursor(SCHEMA, left_rows), RelationCursor(SCHEMA, right_rows)
            )
        )

    def test_multiset_semantics(self):
        left = [(1, "a"), (1, "a"), (2, "b")]
        right = [(1, "a")]
        assert self.run(left, right) == [(1, "a"), (2, "b")]

    def test_removes_all_matching_copies(self):
        left = [(1, "a"), (1, "a")]
        right = [(1, "a"), (1, "a"), (1, "a")]
        assert self.run(left, right) == []

    def test_left_order_preserved(self):
        left = [(3, "c"), (1, "a"), (2, "b")]
        assert self.run(left, [(1, "a")]) == [(3, "c"), (2, "b")]

    def test_arity_mismatch_rejected(self):
        narrow = Schema([Attribute("K")])
        cursor = DifferenceCursor(
            RelationCursor(SCHEMA, []), RelationCursor(narrow, [])
        )
        with pytest.raises(ExecutionError):
            cursor.init()


class TestTransferD:
    def test_loads_on_init_and_produces_no_rows(self):
        db = MiniDB()
        connection = Connection(db)
        cursor = TransferDCursor(
            RelationCursor(SCHEMA, [(1, "a"), (2, "b")]), connection, "TMP_X"
        )
        assert materialize(cursor) == []
        assert db.table("TMP_X").cardinality == 2
        assert cursor.rows_loaded == 2

    def test_clustered_order_recorded(self):
        db = MiniDB()
        connection = Connection(db)
        cursor = TransferDCursor(
            RelationCursor(SCHEMA, [(1, "a")]), connection, "TMP_Y", order=("K",)
        )
        cursor.init()
        assert db.table("TMP_Y").clustered_order == ("K",)

    def test_drop(self):
        db = MiniDB()
        connection = Connection(db)
        cursor = TransferDCursor(RelationCursor(SCHEMA, []), connection, "TMP_Z")
        cursor.init()
        cursor.drop()
        assert not db.has_table("TMP_Z")

    def test_unique_temp_names(self):
        assert unique_temp_name() != unique_temp_name()
