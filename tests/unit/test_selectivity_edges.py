"""Edge cases for the Section 3.3 estimators: StartBefore/EndBefore and
the temporal selectivities built on them.

Every estimate must stay a valid selectivity (in ``[0, 1]`` after
normalization, in ``[0, cardinality]`` as a tuple count) and degrade to
the documented defaults when statistics are missing — empty or absent
histograms, single-bucket histograms, all-ties columns (``min == max``)
and predicate intervals entirely outside the data range.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.stats.collector import AttributeStats, RelationStats
from repro.stats.histogram import Histogram, build_height_balanced
from repro.stats.selectivity import (
    DEFAULT_SELECTIVITY,
    PredicateEstimator,
    end_before,
    naive_overlaps_selectivity,
    overlaps_selectivity,
    start_before,
    timeslice_selectivity,
)
from repro.algebra.expressions import Comparison, col, lit

CARD = 100.0


def relation(
    t1: AttributeStats | None = None,
    t2: AttributeStats | None = None,
    cardinality: float = CARD,
) -> RelationStats:
    attributes = {}
    if t1 is not None:
        attributes["t1"] = t1
    if t2 is not None:
        attributes["t2"] = t2
    return RelationStats(cardinality, avg_row_size=32, attributes=attributes)


def uniform(name: str, low: float, high: float) -> AttributeStats:
    return AttributeStats(name=name, min_value=low, max_value=high, distinct=10)


# -- StartBefore / EndBefore -------------------------------------------------------


def test_start_before_without_any_statistics_uses_default():
    stats = relation()  # T1 entirely unknown: no min/max, no histogram
    assert start_before(50, stats) == CARD * DEFAULT_SELECTIVITY


def test_start_before_interpolates_between_min_and_max():
    stats = relation(t1=uniform("T1", 0, 100))
    assert start_before(50, stats) == pytest.approx(CARD / 2)


def test_start_before_clamps_below_and_above_the_range():
    stats = relation(t1=uniform("T1", 10, 20))
    assert start_before(-1000, stats) == 0.0
    assert start_before(1000, stats) == CARD


def test_start_before_all_ties_column_is_a_step_function():
    # min == max: every tuple carries the same timestamp, so the estimate
    # must be all-or-nothing, never a division by a zero-width range.
    stats = relation(t1=uniform("T1", 42, 42))
    assert start_before(42, stats) == 0.0
    assert start_before(43, stats) == CARD


def test_end_before_is_start_before_on_t2():
    stats = relation(t2=uniform("T2", 0, 100))
    assert end_before(25, stats) == pytest.approx(start_before(25, stats, "T2"))


def test_start_before_with_zero_count_histogram_estimates_zero():
    empty_mass = Histogram(bounds=(0.0, 100.0), counts=(0,))
    stats = relation(
        t1=AttributeStats(name="T1", min_value=0, max_value=100, histogram=empty_mass)
    )
    assert start_before(50, stats) == 0.0


def test_histogram_with_no_buckets_is_rejected_at_construction():
    with pytest.raises(ReproError):
        Histogram(bounds=(0.0,), counts=())


def test_start_before_single_bucket_histogram_interpolates():
    one_bucket = Histogram(bounds=(0.0, 100.0), counts=(100,))
    stats = relation(t1=AttributeStats(name="T1", histogram=one_bucket))
    assert start_before(25, stats) == pytest.approx(CARD / 4)
    assert start_before(-5, stats) == 0.0
    assert start_before(500, stats) == CARD


def test_start_before_degenerate_single_value_histogram():
    # All mass on one point (bounds collapse): built from an all-ties column.
    spike = build_height_balanced([7.0] * 50, num_buckets=4)
    stats = relation(t1=AttributeStats(name="T1", histogram=spike))
    assert start_before(7, stats) == 0.0
    assert start_before(8, stats) == CARD


# -- temporal selectivities --------------------------------------------------------


def _temporal_stats(**overrides) -> RelationStats:
    return relation(
        t1=overrides.get("t1", uniform("T1", 0, 100)),
        t2=overrides.get("t2", uniform("T2", 0, 100)),
        cardinality=overrides.get("cardinality", CARD),
    )


@pytest.mark.parametrize(
    "start,end",
    [(-500, -400), (400, 500), (0, 100), (-10, 110), (50, 50)],
    ids=["before-range", "after-range", "exact-range", "covering", "instant"],
)
def test_overlaps_selectivity_stays_in_unit_interval(start, end):
    stats = _temporal_stats()
    estimate = overlaps_selectivity(start, end, stats)
    assert 0.0 <= estimate <= 1.0


def test_overlaps_entirely_before_the_data_is_zero():
    stats = _temporal_stats()
    assert overlaps_selectivity(-500, -400, stats) == 0.0


def test_overlaps_covering_the_whole_range_is_one():
    stats = _temporal_stats()
    assert overlaps_selectivity(-10, 200, stats) == pytest.approx(1.0)


def test_overlaps_on_empty_relation_is_zero():
    stats = _temporal_stats(cardinality=0.0)
    assert overlaps_selectivity(0, 100, stats) == 0.0
    assert timeslice_selectivity(50, stats) == 0.0
    assert naive_overlaps_selectivity(0, 100, stats) == 0.0


def test_overlaps_all_ties_periods():
    # Every tuple is [42, 43): a window touching 42 selects everything,
    # a window strictly after 42 selects nothing.
    stats = _temporal_stats(t1=uniform("T1", 42, 42), t2=uniform("T2", 43, 43))
    assert overlaps_selectivity(40, 41, stats) == 0.0
    assert overlaps_selectivity(42, 100, stats) == pytest.approx(1.0)
    assert overlaps_selectivity(50, 60, stats) == 0.0


def test_timeslice_stays_in_unit_interval_out_of_range():
    stats = _temporal_stats()
    for instant in (-1000, -1, 0, 50, 100, 1000):
        estimate = timeslice_selectivity(instant, stats)
        assert 0.0 <= estimate <= 1.0
    assert timeslice_selectivity(-1000, stats) == 0.0


def test_naive_overlaps_stays_in_unit_interval():
    stats = _temporal_stats()
    for start, end in ((-500, -400), (400, 500), (0, 100), (-10, 110)):
        estimate = naive_overlaps_selectivity(start, end, stats)
        assert 0.0 <= estimate <= 1.0


def test_semantic_beats_naive_on_short_periods():
    # The paper's point: short periods near the query window make the
    # independence assumption overestimate; the semantic estimate is never
    # larger on the uniform model.
    stats = _temporal_stats(t1=uniform("T1", 0, 100), t2=uniform("T2", 1, 101))
    semantic = overlaps_selectivity(40, 41, stats)
    naive = naive_overlaps_selectivity(40, 41, stats)
    assert semantic <= naive


# -- PredicateEstimator degradation -----------------------------------------------


def test_predicate_estimator_without_statistics_uses_defaults():
    stats = relation()  # nothing known about any attribute
    estimator = PredicateEstimator()
    predicate = Comparison("<", col("T1"), lit(10)) & Comparison(
        ">", col("T2"), lit(5)
    )
    estimate = estimator.estimate(predicate, stats)
    assert 0.0 <= estimate <= 1.0


def test_predicate_estimator_on_empty_relation_is_bounded():
    stats = relation(cardinality=0.0)
    estimator = PredicateEstimator()
    estimate = estimator.estimate(Comparison("=", col("K"), lit(1)), stats)
    assert 0.0 <= estimate <= 1.0


def test_predicate_estimator_out_of_range_overlap_is_zero():
    stats = _temporal_stats()
    estimator = PredicateEstimator()
    predicate = Comparison("<", col("T1"), lit(-400)) & Comparison(
        ">", col("T2"), lit(-500)
    )
    assert estimator.estimate(predicate, stats) == 0.0


def test_predicate_estimator_histograms_off_matches_interpolation():
    histogram = build_height_balanced(list(range(100)), num_buckets=10)
    stats = relation(
        t1=AttributeStats(
            name="T1", min_value=0, max_value=99, distinct=100, histogram=histogram
        )
    )
    with_hist = PredicateEstimator(use_histograms=True)
    without = PredicateEstimator(use_histograms=False)
    predicate = Comparison("<", col("T1"), lit(50))
    for estimator in (with_hist, without):
        estimate = estimator.estimate(predicate, stats)
        assert 0.0 <= estimate <= 1.0
    # Stripping histograms falls back to min/max interpolation.
    assert without.estimate(predicate, stats) == pytest.approx(50 / 99)
