"""Unit tests for physical plan validation."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    Join,
    Location,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
    AggregateSpec,
    Scan,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.optimizer.physical import PlanValidityError, algorithm_name, validate_plan

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

MW = Location.MIDDLEWARE
DB = Location.DBMS


def base() -> Scan:
    return Scan("R", SCHEMA)


class TestAlgorithmNames:
    def test_paper_notation(self):
        assert algorithm_name(TransferM(base())) == "TRANSFER^M"
        assert algorithm_name(Sort(base(), DB, ("K",))) == "SORT^D"
        select = Select(TransferM(base()), MW, Comparison("<", col("K"), lit(1)))
        assert algorithm_name(select) == "FILTER^M"
        taggr = TemporalAggregate(base(), DB, ("K",), (AggregateSpec("COUNT", "K"),))
        assert algorithm_name(taggr) == "TAGGR^D"


class TestLocationStructure:
    def test_valid_transfer_sandwich(self):
        plan = TransferM(Sort(base(), DB, ("K",)))
        validate_plan(plan)

    def test_middleware_op_over_dbms_child_rejected(self):
        plan = Select(base(), MW, Comparison("<", col("K"), lit(1)))
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_dbms_op_over_middleware_child_rejected(self):
        mw = Select(TransferM(base()), MW, Comparison("<", col("K"), lit(1)))
        plan = Sort(mw, DB, ("K",))
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_transfer_m_requires_dbms_input(self):
        plan = TransferM(TransferM(base()))
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_transfer_d_requires_middleware_input(self):
        plan = TransferD(base())
        with pytest.raises(PlanValidityError):
            validate_plan(plan)


class TestOrderPrerequisites:
    def test_taggr_m_with_dbms_sort(self):
        plan = TemporalAggregate(
            TransferM(Sort(base(), DB, ("K", "T1"))),
            MW,
            ("K",),
            (AggregateSpec("COUNT", "K"),),
        )
        validate_plan(plan)

    def test_taggr_m_without_sort_rejected(self):
        plan = TemporalAggregate(
            TransferM(base()), MW, ("K",), (AggregateSpec("COUNT", "K"),)
        )
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_taggr_m_with_wrong_sort_rejected(self):
        plan = TemporalAggregate(
            TransferM(Sort(base(), DB, ("T1",))),
            MW,
            ("K",),
            (AggregateSpec("COUNT", "K"),),
        )
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_taggr_m_with_middleware_sort(self):
        plan = TemporalAggregate(
            Sort(TransferM(base()), MW, ("K", "T1")),
            MW,
            ("K",),
            (AggregateSpec("COUNT", "K"),),
        )
        validate_plan(plan)

    def test_merge_join_requires_sorted_inputs(self):
        left = TransferM(Sort(base(), DB, ("K",)))
        right = TransferM(base())
        plan = Join(left, right, MW, "K", "K")
        with pytest.raises(PlanValidityError):
            validate_plan(plan)

    def test_merge_join_with_sorted_inputs(self):
        left = TransferM(Sort(base(), DB, ("K",)))
        right = TransferM(Sort(base(), DB, ("K",)))
        validate_plan(Join(left, right, MW, "K", "K"))

    def test_temporal_join_prerequisites(self):
        left = TransferM(Sort(base(), DB, ("K",)))
        right = TransferM(Sort(base(), DB, ("K",)))
        validate_plan(TemporalJoin(left, right, MW, "K", "K"))

    def test_taggr_preserves_order_for_downstream_join(self):
        # TAGGR^M's output order (group attrs, T1) feeds a temporal join
        # without an extra sort — the Query 2 Plan 2 shape.
        aggregated = TemporalAggregate(
            TransferM(Sort(base(), DB, ("K", "T1"))),
            MW,
            ("K",),
            (AggregateSpec("COUNT", "K"),),
        )
        right = TransferM(Sort(base(), DB, ("K",)))
        validate_plan(TemporalJoin(aggregated, right, MW, "K", "K"))

    def test_dbms_located_operators_have_no_order_requirements(self):
        plan = TemporalAggregate(base(), DB, ("K",), (AggregateSpec("COUNT", "K"),))
        validate_plan(plan)

    def test_error_message_names_algorithm(self):
        plan = TemporalAggregate(
            TransferM(base()), MW, ("K",), (AggregateSpec("COUNT", "K"),)
        )
        with pytest.raises(PlanValidityError, match="TAGGR"):
            validate_plan(plan)
