"""Unit tests for the SQL parser."""

import pytest

from repro.algebra.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Not,
    Or,
)
from repro.algebra.schema import AttrType
from repro.dbms.sql.ast import (
    AggregateCall,
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DerivedTable,
    DropTableStmt,
    InsertSelectStmt,
    InsertValuesStmt,
    SelectStmt,
    TableRef,
)
from repro.dbms.sql.parser import parse_expression, parse_statement
from repro.errors import SQLSyntaxError
from repro.temporal.timestamps import day_of


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.terms[1], And)

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_qualified_column(self):
        expr = parse_expression("A.PosID")
        assert expr == ColumnRef("A.PosID")

    def test_between_desugars(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, And)
        assert expr.terms[0].op == ">="
        assert expr.terms[1].op == "<="

    def test_in_desugars_to_or(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, Or)
        assert len(expr.terms) == 3

    def test_is_null(self):
        expr = parse_expression("x IS NULL")
        assert expr == Comparison("=", ColumnRef("x"), Literal(None))

    def test_is_not_null(self):
        assert isinstance(parse_expression("x IS NOT NULL"), Not)

    def test_not(self):
        assert isinstance(parse_expression("NOT x = 1"), Not)

    def test_date_literal(self):
        expr = parse_expression("DATE '1997-02-01'")
        assert expr == Literal(day_of("1997-02-01"), AttrType.DATE)

    def test_bad_date_literal(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("DATE 'not-a-date'")

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert expr == BinOp("-", Literal(0), Literal(5))

    def test_greatest_function(self):
        expr = parse_expression("GREATEST(a, b)")
        assert isinstance(expr, FuncCall)
        assert expr.name == "GREATEST"

    def test_aggregate_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == AggregateCall("COUNT", None)

    def test_aggregate_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr == AggregateCall("COUNT", ColumnRef("x"), True)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra stuff ~~")


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT X FROM T")
        assert isinstance(stmt, SelectStmt)
        assert stmt.from_items == (TableRef("T"),)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM T")
        assert stmt.items[0].star == "*"

    def test_qualified_star(self):
        stmt = parse_statement("SELECT A.* FROM T A")
        assert stmt.items[0].star == "A"

    def test_aliases(self):
        stmt = parse_statement("SELECT X AS Y, Z W FROM T")
        assert stmt.items[0].alias == "Y"
        assert stmt.items[1].alias == "W"

    def test_table_alias_forms(self):
        stmt = parse_statement("SELECT * FROM T1 A, T2 AS B")
        assert stmt.from_items[0].alias == "A"
        assert stmt.from_items[1].alias == "B"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            "SELECT K, COUNT(*) FROM T WHERE V > 0 GROUP BY K "
            "HAVING COUNT(*) > 1 ORDER BY K DESC"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT X FROM T) D")
        assert isinstance(stmt.from_items[0], DerivedTable)
        assert stmt.from_items[0].alias == "D"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT * FROM (SELECT X FROM T)")

    def test_union(self):
        stmt = parse_statement("SELECT X FROM T UNION SELECT Y FROM U")
        assert len(stmt.unions) == 1
        assert stmt.unions[0][0] is False  # not ALL

    def test_union_all(self):
        stmt = parse_statement("SELECT X FROM T UNION ALL SELECT Y FROM U")
        assert stmt.unions[0][0] is True

    def test_union_order_by_applies_to_whole(self):
        stmt = parse_statement("SELECT X FROM T UNION SELECT Y FROM U ORDER BY X")
        assert len(stmt.order_by) == 1

    def test_hint_captured(self):
        stmt = parse_statement("SELECT /*+ USE_NL */ * FROM T")
        assert stmt.hints == ("USE_NL",)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT X FROM T").distinct

    def test_limit(self):
        assert parse_statement("SELECT X FROM T LIMIT 5").limit == 5


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE T (K INT, Name VARCHAR(16), D DATE, F FLOAT)"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert [c.type for c in stmt.columns] == [
            AttrType.INT, AttrType.STR, AttrType.DATE, AttrType.FLOAT,
        ]
        assert stmt.columns[1].width == 16

    def test_create_table_unknown_type(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("CREATE TABLE T (K BLOB)")

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX IX ON T (K)")
        assert isinstance(stmt, CreateIndexStmt)
        assert (stmt.index, stmt.table, stmt.column) == ("IX", "T", "K")

    def test_create_clustered_index(self):
        stmt = parse_statement("CREATE CLUSTER INDEX IX ON T (K)")
        assert stmt.clustered

    def test_insert_values_multi_row(self):
        stmt = parse_statement("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertValuesStmt)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO T SELECT * FROM U")
        assert isinstance(stmt, InsertSelectStmt)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM T WHERE K = 1")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is not None

    def test_drop(self):
        assert isinstance(parse_statement("DROP TABLE T"), DropTableStmt)

    def test_analyze(self):
        stmt = parse_statement("ANALYZE TABLE T COMPUTE STATISTICS")
        assert isinstance(stmt, AnalyzeStmt)
        assert stmt.histogram_columns == "auto"

    def test_analyze_for_columns(self):
        stmt = parse_statement("ANALYZE TABLE T COMPUTE STATISTICS FOR COLUMNS T1, T2")
        assert stmt.histogram_columns == ("T1", "T2")

    def test_unparseable_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("EXPLAIN PLAN FOR SELECT 1")
