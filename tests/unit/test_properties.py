"""Unit tests for order properties — Section 4's list/multiset discipline."""

from repro.algebra.expressions import BinOp, Comparison, col, lit
from repro.algebra.operators import (
    Join,
    Location,
    Project,
    Scan,
    Select,
    Sort,
    TransferD,
    TransferM,
)
from repro.algebra.properties import guaranteed_order, is_prefix_of, satisfies_order
from repro.algebra.schema import Attribute, AttrType, Schema

SCHEMA = Schema(
    [
        Attribute("PosID", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def scan() -> Scan:
    return Scan("POSITION", SCHEMA)


class TestIsPrefixOf:
    def test_empty_is_prefix_of_anything(self):
        assert is_prefix_of([], ["a", "b"])

    def test_proper_prefix(self):
        assert is_prefix_of(["PosID"], ["posid", "t1"])

    def test_equal_lists(self):
        assert is_prefix_of(["a", "b"], ["A", "B"])

    def test_not_a_prefix(self):
        assert not is_prefix_of(["T1"], ["posid", "t1"])

    def test_longer_than_order(self):
        assert not is_prefix_of(["a", "b"], ["a"])


class TestGuaranteedOrder:
    def test_dbms_scan_guarantees_nothing(self):
        # Even a clustered table gives no SQL-level order guarantee.
        clustered = Scan("POSITION", SCHEMA, ("PosID",))
        assert guaranteed_order(clustered) == ()

    def test_dbms_sort_at_top_guarantees(self):
        sort = Sort(scan(), Location.DBMS, ("PosID", "T1"))
        assert guaranteed_order(sort) == ("PosID", "T1")

    def test_dbms_operator_above_sort_destroys_order(self):
        sort = Sort(scan(), Location.DBMS, ("PosID",))
        select = Select(sort, Location.DBMS, Comparison("<", col("T1"), lit(5)))
        assert guaranteed_order(select) == ()

    def test_transfer_m_preserves_dbms_sort(self):
        # The paper's T6 precondition: T^M preserves order.
        sort = Sort(scan(), Location.DBMS, ("PosID",))
        assert guaranteed_order(TransferM(sort)) == ("PosID",)

    def test_transfer_m_of_unsorted_guarantees_nothing(self):
        assert guaranteed_order(TransferM(scan())) == ()

    def test_middleware_select_preserves(self):
        sorted_in_mw = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        select = Select(
            sorted_in_mw, Location.MIDDLEWARE, Comparison("<", col("T1"), lit(5))
        )
        assert guaranteed_order(select) == ("PosID",)

    def test_transfer_d_destroys_order(self):
        sorted_in_mw = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        assert guaranteed_order(TransferD(sorted_in_mw)) == ()

    def test_middleware_join_delivers_left_attr(self):
        left = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        right = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        join = Join(left, right, Location.MIDDLEWARE, "PosID", "PosID")
        assert guaranteed_order(join) == ("PosID",)

    def test_projection_keeps_order_of_passthrough_columns(self):
        sorted_in_mw = TransferM(Sort(scan(), Location.DBMS, ("PosID", "T1")))
        project = Project.of_columns(
            sorted_in_mw, ["PosID", "T1"], Location.MIDDLEWARE
        )
        assert guaranteed_order(project) == ("PosID", "T1")

    def test_renaming_projection_carries_order_to_the_output_name(self):
        # A renaming projection moves the ordered values to a new column:
        # the guarantee must follow the *output* name.  (Found by the
        # differential fuzzer on E2's compensating projection, which swaps
        # the two join sides' columns.)
        sorted_in_mw = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        swap = Project(
            sorted_in_mw,
            Location.MIDDLEWARE,
            (("PosID", col("T1")), ("T1", col("PosID")), ("T2", col("T2"))),
        )
        assert guaranteed_order(swap) == ("T1",)

    def test_projection_of_computed_expression_drops_order(self):
        # The ordered column only survives as a *bare* reference; an
        # arithmetic wrapper computes new values in a new order.
        sorted_in_mw = TransferM(Sort(scan(), Location.DBMS, ("PosID",)))
        computed = Project(
            sorted_in_mw,
            Location.MIDDLEWARE,
            (("PosID", BinOp("+", col("PosID"), lit(1))), ("T1", col("T1"))),
        )
        assert guaranteed_order(computed) == ()


class TestSatisfiesOrder:
    def test_empty_requirement_always_satisfied(self):
        assert satisfies_order(scan(), ())

    def test_satisfied_by_sort(self):
        sort = Sort(scan(), Location.DBMS, ("PosID", "T1"))
        assert satisfies_order(sort, ("PosID",))

    def test_unsatisfied(self):
        assert not satisfies_order(scan(), ("PosID",))
