"""Table-driven property checks: one minimal plan per transformation rule.

For every rule in :func:`repro.optimizer.rules.default_rules` there is one
minimal left-hand-side plan the rule fires on.  After applying the rule to
a seeded memo, every plan derivable from the root class must

* **preserve the schema** — same attribute names and types in the same
  order (an equivalence rewrite never changes the relation's shape);
* **preserve the declared order** when the rule claims list equivalence
  (``equivalence == "L"``): the original plan's guaranteed order stays a
  prefix of every alternative's;
* **compute the same multiset of rows** — every executable alternative is
  run against a small concrete database (rows with duplicates and
  adjacent periods, so dedup/coalesce rewrites are actually exercised)
  and compared with canonical multiset semantics.
"""

from __future__ import annotations

import itertools

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    AggregateSpec,
    Coalesce,
    Dedup,
    Join,
    Location,
    Operator,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)
from repro.algebra.properties import guaranteed_order, is_prefix_of
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.database import MiniDB
from repro.errors import ReproError
from repro.fuzz.compare import canonical_rows
from repro.fuzz.oracle import execute_with_config
from repro.optimizer.memo import Memo
from repro.optimizer.physical import PlanValidityError, validate_plan
from repro.optimizer.rules import default_rules

MW = Location.MIDDLEWARE
DB = Location.DBMS

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

#: Duplicates and adjacent periods on purpose: dedup and coalesce rewrites
#: must be told apart from the identity.
ROWS = [
    (1, 5, 10, 20),
    (1, 5, 10, 20),
    (1, 5, 20, 30),
    (2, 7, 10, 15),
    (2, 9, 40, 50),
    (3, 5, 5, 45),
]


def scan() -> Scan:
    return Scan("R", SCHEMA)


def mw_sorted() -> TransferM:
    """A middleware-resident input sorted on all attributes.

    The sort keys cover the ``(value attributes, T1)`` prerequisite of the
    streaming middleware coalesce, so coalesce/dedup towers built on top
    stay executable after a rewrite peels layers off.
    """
    return TransferM(Sort(scan(), DB, ("K", "V", "T1", "T2")))


#: Three snapshot relations with pairwise-disjoint attribute names: E3's
#: provenance guard refuses to reassociate when any names collide, so the
#: usual self-join shapes can never fire it.
SCHEMA_A = Schema([Attribute("A_K", AttrType.INT), Attribute("A_V", AttrType.INT)])
SCHEMA_B = Schema([Attribute("B_K", AttrType.INT), Attribute("B_V", AttrType.INT)])
SCHEMA_C = Schema([Attribute("C_K", AttrType.INT), Attribute("C_V", AttrType.INT)])
ROWS_A = [(1, 10), (2, 20), (3, 30)]
ROWS_B = [(1, 100), (1, 101), (2, 200)]
ROWS_C = [(1, 7), (2, 8), (8, 9)]


def _minimal_plan(name: str) -> Operator:
    """The minimal LHS the rule named *name* fires on."""
    v_lt_5 = Comparison("<", col("V"), lit(5))
    plans = {
        "T1": TemporalAggregate(scan(), DB, ("K",), (AggregateSpec("COUNT", "K"),)),
        "T2": Join(scan(), scan(), DB, "K", "K"),
        "T3": TemporalJoin(scan(), scan(), DB, "K", "K"),
        "T4": TransferM(Select(scan(), DB, v_lt_5)),
        "T5": TransferM(Project.of_columns(scan(), ["K", "V"])),
        "T6": TransferM(Sort(scan(), DB, ("K",))),
        "T7": TransferM(TransferD(TransferM(scan()))),
        "T8": TransferD(TransferM(scan())),
        "T9": Project.of_columns(scan(), ["K", "V", "T1", "T2"]),
        "T11": Sort(scan(), DB, ("K",)),
        "T12": Sort(Sort(scan(), DB, ("K",)), DB, ("K", "T1")),
        "E1": Select(Project.of_columns(scan(), ["K", "V"]), DB, v_lt_5),
        "E2": Join(Project.of_columns(scan(), ["K"]), scan(), DB, "K", "K"),
        "E3": Join(
            Join(
                Scan("A", SCHEMA_A), Scan("B", SCHEMA_B), DB, "A_K", "B_K"
            ),
            Scan("C", SCHEMA_C),
            DB,
            "B_K",  # outer join attribute from r2: E3's provenance guard
            "C_K",
        ),
        "E4": Select(Sort(TransferM(scan()), MW, ("K",)), MW, v_lt_5),
        "E5": Project.of_columns(Sort(TransferM(scan()), MW, ("K",)), ["K", "V"], MW),
        "P1": Select(
            Join(scan(), scan(), DB, "K", "K"),
            DB,
            Comparison("<", col("V"), lit(5))
            & Comparison("<", col("V_2"), lit(9)),
        ),
        "P2": Select(
            TemporalJoin(scan(), scan(), DB, "K", "K"),
            DB,
            Comparison("<", col("T1"), lit(100))
            & Comparison(">", col("T2"), lit(50)),
        ),
        "X1": Coalesce(scan(), DB),
        "X2": Coalesce(Coalesce(mw_sorted(), MW), MW),
        "X3": Coalesce(Dedup(mw_sorted(), MW), MW),
        "X4": Dedup(Coalesce(mw_sorted(), MW), MW),
        "X5": Dedup(Dedup(mw_sorted(), MW), MW),
    }
    return plans[name]


def _apply_until_fired(rule, plan: Operator) -> tuple[Memo, int, bool]:
    """Apply *rule* to saturation; report whether it ever fired.

    Firing must be read off ``apply``'s return value: merge rules (T8, T9,
    T11, X2, X4, X5) collapse two classes into one instead of adding
    elements, so the root class can end up with *fewer* derivable plans
    than the input had.
    """
    memo = Memo()
    root = memo.insert_tree(plan)
    fired = False
    for _ in range(3):  # some rules need an enabling pass
        changed = False
        for eq_class in memo.classes():
            for element in list(eq_class.elements):
                if rule.apply(memo, memo.find(eq_class.id), element):
                    changed = True
        fired = fired or changed
        if not changed:
            break
    return memo, memo.find(root), fired


def _plans_of(memo: Memo, class_id: int, stack: frozenset = frozenset(), cap: int = 24):
    """All concrete plans of a class, cycle-safe and capped."""
    class_id = memo.find(class_id)
    if class_id in stack:
        return []
    stack = stack | {class_id}
    plans: list[Operator] = []
    for element in memo.class_of(class_id).elements:
        child_options = [
            _plans_of(memo, child, stack, cap) for child in element.children
        ]
        if any(not options for options in child_options):
            continue
        for combo in itertools.product(*child_options):
            try:
                plans.append(
                    element.template.with_inputs(*combo)
                    if element.children
                    else element.template
                )
            except ReproError:
                continue
            if len(plans) >= cap:
                return plans
    return plans


def _executable(plan: Operator) -> Operator | None:
    """Wrap *plan* into a middleware-rooted, valid plan; None if impossible."""
    candidate = plan if plan.location is MW else TransferM(plan)
    try:
        validate_plan(candidate)
    except PlanValidityError:
        return None
    return candidate


def _database() -> MiniDB:
    db = MiniDB()
    for name, schema, rows in (
        ("R", SCHEMA, ROWS),
        ("A", SCHEMA_A, ROWS_A),
        ("B", SCHEMA_B, ROWS_B),
        ("C", SCHEMA_C, ROWS_C),
    ):
        db.create_table(name, schema)
        db.table(name).bulk_load(rows)
        db.analyze(name)
    return db


@pytest.mark.parametrize("rule", default_rules(), ids=lambda rule: rule.name)
def test_rule_preserves_schema_order_and_rows(rule):
    original = _minimal_plan(rule.name)
    memo, root, fired = _apply_until_fired(rule, original)
    assert fired, f"{rule.name} did not fire on its minimal plan"
    alternatives = _plans_of(memo, root)
    assert alternatives, f"{rule.name}: no plan derivable from the root class"

    expected_schema = [
        (attribute.name.upper(), attribute.type) for attribute in original.schema
    ]
    original_order = tuple(guaranteed_order(original))
    for alternative in alternatives:
        produced = [
            (attribute.name.upper(), attribute.type)
            for attribute in alternative.schema
        ]
        assert produced == expected_schema, (
            f"{rule.name} changed the schema:\n{alternative.pretty()}"
        )
        if rule.equivalence == "L" and original_order:
            assert is_prefix_of(
                original_order, guaranteed_order(alternative)
            ), (
                f"{rule.name} claims list equivalence but loses the order "
                f"{original_order}:\n{alternative.pretty()}"
            )

    # Differential execution: the original and every executable alternative
    # compute the same multiset of rows.  The original is executed
    # explicitly because after a class merge it may no longer be derivable
    # from the memo (the merged element references its own class).
    executable = [
        wrapped
        for wrapped in (
            _executable(plan) for plan in [original, *alternatives]
        )
        if wrapped is not None
    ]
    results = []
    for plan in executable:
        try:
            results.append(
                canonical_rows(execute_with_config(_database(), plan).rows)
            )
        except ReproError:
            continue  # no algorithm for this shape (e.g. COAL^D)
    assert results, f"{rule.name}: no alternative was executable"
    for result in results[1:]:
        assert result == results[0], (
            f"{rule.name} produced multiset-inequivalent plans"
        )
