"""Unit tests for TAGGR^M — the two-sorted-copies temporal aggregation."""

import pytest

from repro.algebra.operators import AggregateSpec
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.errors import ExecutionError
from repro.xxl.cursor import materialize
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_aggregate import TemporalAggregateCursor

SCHEMA = Schema(
    [
        Attribute("PosID", AttrType.INT),
        Attribute("Pay", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def taggr(rows, group_by=("PosID",), aggregates=None, meter=None):
    aggregates = aggregates or [AggregateSpec("COUNT", "PosID", "CNT")]
    return TemporalAggregateCursor(
        RelationCursor(SCHEMA, rows), group_by, aggregates, meter=meter
    )


class TestFigure3:
    ROWS = [
        (1, 0, 2, 20),   # Tom
        (1, 0, 5, 25),   # Jane
        (2, 0, 5, 10),   # Tom
    ]

    def test_counts_per_constant_interval(self):
        assert materialize(taggr(self.ROWS)) == [
            (1, 2, 5, 1),
            (1, 5, 20, 2),
            (1, 20, 25, 1),
            (2, 5, 10, 1),
        ]

    def test_output_schema(self):
        cursor = taggr(self.ROWS)
        cursor.init()
        assert cursor.schema.names == ("PosID", "T1", "T2", "CNT")

    def test_output_ordered_by_group_then_t1(self):
        rows = materialize(taggr(self.ROWS))
        assert rows == sorted(rows, key=lambda row: (row[0], row[1]))


class TestAggregateFunctions:
    ROWS = [
        (1, 10, 0, 10),
        (1, 30, 5, 15),
    ]

    def test_sum(self):
        rows = materialize(
            taggr(self.ROWS, aggregates=[AggregateSpec("SUM", "Pay", "S")])
        )
        assert rows == [(1, 0, 5, 10.0), (1, 5, 10, 40.0), (1, 10, 15, 30.0)]

    def test_avg(self):
        rows = materialize(
            taggr(self.ROWS, aggregates=[AggregateSpec("AVG", "Pay", "A")])
        )
        assert rows[1] == (1, 5, 10, 20.0)

    def test_min_max_sliding(self):
        rows = materialize(
            taggr(
                self.ROWS,
                aggregates=[
                    AggregateSpec("MIN", "Pay", "Lo"),
                    AggregateSpec("MAX", "Pay", "Hi"),
                ],
            )
        )
        assert rows == [
            (1, 0, 5, 10, 10),
            (1, 5, 10, 10, 30),
            (1, 10, 15, 30, 30),
        ]

    def test_multiple_aggregates_align(self):
        rows = materialize(
            taggr(
                self.ROWS,
                aggregates=[
                    AggregateSpec("COUNT", "Pay", "C"),
                    AggregateSpec("SUM", "Pay", "S"),
                ],
            )
        )
        assert rows[1] == (1, 5, 10, 2, 40.0)


class TestEdgeCases:
    def test_empty_input(self):
        assert materialize(taggr([])) == []

    def test_gap_between_periods(self):
        rows = materialize(taggr([(1, 0, 0, 3), (1, 0, 7, 9)]))
        assert rows == [(1, 0, 3, 1), (1, 7, 9, 1)]

    def test_zero_duration_tuple_contributes_nothing(self):
        rows = materialize(taggr([(1, 0, 5, 5), (1, 0, 0, 10)]))
        assert rows == [(1, 0, 10, 1)]

    def test_identical_periods_merge(self):
        rows = materialize(taggr([(1, 0, 0, 10), (1, 0, 0, 10)]))
        assert rows == [(1, 0, 10, 2)]

    def test_no_grouping_attributes(self):
        rows = materialize(taggr([(1, 0, 0, 10), (2, 0, 5, 15)], group_by=()))
        assert rows == [(0, 5, 1), (5, 10, 2), (10, 15, 1)]

    def test_multi_attribute_grouping(self):
        data = [(1, 7, 0, 10), (1, 8, 0, 10)]
        rows = materialize(taggr(data, group_by=("PosID", "Pay")))
        assert rows == [(1, 7, 0, 10, 1), (1, 8, 0, 10, 1)]

    def test_requires_aggregate(self):
        with pytest.raises(ExecutionError):
            TemporalAggregateCursor(RelationCursor(SCHEMA, []), ("PosID",), ())

    def test_unsorted_groups_detected(self):
        cursor = taggr([(2, 0, 0, 5), (1, 0, 0, 5)])
        with pytest.raises(ExecutionError):
            materialize(cursor)

    def test_meter_charged(self):
        meter = CostMeter()
        materialize(taggr([(1, 0, 0, 5), (1, 0, 2, 9)], meter=meter))
        assert meter.cpu > 0

    def test_result_cardinality_bound(self):
        # Section 3.4: |result| <= 2·|input| - 1 per group.
        rows = [(1, 0, i, i + 3) for i in range(0, 40, 2)]
        result = materialize(taggr(rows))
        assert len(result) <= 2 * len(rows) - 1
