"""Unit tests for the Section 7 extension rules (X1-X5) and the
``VALIDTIME COALESCED`` syntax — the paper's "to add an operator" recipe
completed for coalescing and duplicate elimination."""

import pytest

from repro.algebra.operators import (
    Coalesce,
    Dedup,
    Location,
    Scan,
    Sort,
    TransferD,
    TransferM,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.core.tango import Tango
from repro.dbms.database import MiniDB
from repro.optimizer.memo import Memo
from repro.optimizer.rules import (
    X1MoveCoalesce,
    X2CoalesceIdempotent,
    X3DropDedupUnderCoalesce,
    X4DropDedupOverCoalesce,
    X5DedupIdempotent,
    default_rules,
)

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)

DB = Location.DBMS
MW = Location.MIDDLEWARE


def scan() -> Scan:
    return Scan("R", SCHEMA)


def apply_everywhere(rule, memo):
    for eq_class in memo.classes():
        for element in list(eq_class.elements):
            rule.apply(memo, memo.find(eq_class.id), element)


class TestX1MoveCoalesce:
    def test_produces_middleware_alternative(self):
        memo = Memo()
        root = memo.insert_tree(Coalesce(scan(), DB))
        apply_everywhere(X1MoveCoalesce(), memo)
        kinds = {
            (type(e.template).__name__, e.template.location.superscript)
            for c in memo.classes()
            for e in c.elements
        }
        assert ("Coalesce", "M") in kinds
        assert ("TransferD", "D") in kinds
        assert ("Sort", "D") in kinds
        __ = root

    def test_sort_keys_are_value_attrs_then_t1(self):
        memo = Memo()
        memo.insert_tree(Coalesce(scan(), DB))
        apply_everywhere(X1MoveCoalesce(), memo)
        sorts = [
            e.template
            for c in memo.classes()
            for e in c.elements
            if isinstance(e.template, Sort)
        ]
        assert sorts[0].keys == ("K", "T1")

    def test_skips_middleware_coalesce(self):
        memo = Memo()
        memo.insert_tree(Coalesce(TransferM(scan()), MW))
        before = memo.element_count
        apply_everywhere(X1MoveCoalesce(), memo)
        assert memo.element_count == before


class TestMergeRules:
    def test_x2_coalesce_idempotent(self):
        memo = Memo()
        outer = memo.insert_tree(Coalesce(Coalesce(scan(), DB), DB))
        inner = memo.insert_tree(Coalesce(scan(), DB))
        apply_everywhere(X2CoalesceIdempotent(), memo)
        assert memo.find(outer) == memo.find(inner)

    def test_x3_drops_dedup_under_coalesce(self):
        memo = Memo()
        memo.insert_tree(Coalesce(Dedup(scan(), DB), DB))
        memo.insert_tree(scan())
        apply_everywhere(X3DropDedupUnderCoalesce(), memo)
        coalesce_elements = [
            e
            for c in memo.classes()
            for e in c.elements
            if isinstance(e.template, Coalesce)
        ]
        # The original (over dedup) plus the rewritten (over the scan).
        children = {
            type(memo.class_of(e.children[0]).representative).__name__
            for e in coalesce_elements
        }
        assert "Scan" in children and "Dedup" in children

    def test_x4_dedup_over_coalesce_merges(self):
        memo = Memo()
        outer = memo.insert_tree(Dedup(Coalesce(scan(), DB), DB))
        inner = memo.insert_tree(Coalesce(scan(), DB))
        apply_everywhere(X4DropDedupOverCoalesce(), memo)
        assert memo.find(outer) == memo.find(inner)

    def test_x5_dedup_idempotent(self):
        memo = Memo()
        outer = memo.insert_tree(Dedup(Dedup(scan(), DB), DB))
        inner = memo.insert_tree(Dedup(scan(), DB))
        apply_everywhere(X5DedupIdempotent(), memo)
        assert memo.find(outer) == memo.find(inner)

    def test_extension_rules_registered(self):
        names = {rule.name for rule in default_rules()}
        assert {"X1", "X2", "X3", "X4", "X5"} <= names


@pytest.fixture
def tango():
    db = MiniDB()
    db.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), T1 DATE, T2 DATE)"
    )
    db.execute(
        "INSERT INTO POSITION VALUES "
        "(1, 'Tom', 2, 10), (1, 'Tom', 10, 20), (1, 'Jane', 5, 25), "
        "(2, 'Tom', 5, 10), (2, 'Tom', 5, 10)"
    )
    return Tango(db)


class TestValidtimeCoalesced:
    def test_adjacent_periods_merge(self, tango):
        result = tango.query(
            "VALIDTIME COALESCED SELECT PosID, EmpName FROM POSITION "
            "ORDER BY PosID"
        )
        assert (1, "Tom", 2, 20) in result.rows

    def test_duplicates_collapse(self, tango):
        result = tango.query(
            "VALIDTIME COALESCED SELECT PosID, EmpName FROM POSITION "
            "ORDER BY PosID"
        )
        tom_pos2 = [row for row in result.rows if row[0] == 2]
        assert tom_pos2 == [(2, "Tom", 5, 10)]

    def test_coalesce_runs_in_middleware(self, tango):
        result = tango.query(
            "VALIDTIME COALESCED SELECT PosID, EmpName FROM POSITION "
            "ORDER BY PosID"
        )
        coalesce_nodes = [
            node for node in result.plan.walk() if isinstance(node, Coalesce)
        ]
        assert coalesce_nodes[0].location is Location.MIDDLEWARE

    def test_uncoalesced_query_keeps_fragments(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, EmpName FROM POSITION ORDER BY PosID"
        )
        tom_rows = [row for row in result.rows if row[:2] == (1, "Tom")]
        assert len(tom_rows) == 2

    def test_initial_plan_places_coalesce_in_dbms(self, tango):
        plan = tango.parse(
            "VALIDTIME COALESCED SELECT PosID, EmpName FROM POSITION"
        )
        coalesce_nodes = [
            node for node in plan.walk() if isinstance(node, Coalesce)
        ]
        assert coalesce_nodes[0].location is Location.DBMS
