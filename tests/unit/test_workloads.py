"""Unit tests for workload generation: the generic generator, the UIS
dataset, and the Query 1-4 definitions."""

import pytest

from repro.dbms.database import MiniDB
from repro.temporal.timestamps import day_of, year_start
from repro.workloads import queries
from repro.workloads.generator import TemporalRelationSpec, generate_rows
from repro.workloads.uis import (
    EMPLOYEE_SCHEMA,
    POSITION_SCHEMA,
    POSITION_VARIANTS,
    employee_rows,
    load_uis,
    position_rows,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        spec = TemporalRelationSpec(cardinality=100, seed=5)
        assert generate_rows(spec) == generate_rows(spec)

    def test_different_seeds_differ(self):
        a = generate_rows(TemporalRelationSpec(cardinality=100, seed=1))
        b = generate_rows(TemporalRelationSpec(cardinality=100, seed=2))
        assert a != b

    def test_durations_respected(self):
        spec = TemporalRelationSpec(cardinality=200, min_duration=3, max_duration=9)
        for row in generate_rows(spec):
            assert 3 <= row[3] - row[2] <= 9

    def test_window_respected(self):
        spec = TemporalRelationSpec(cardinality=200)
        start = day_of(spec.window_start)
        end = day_of(spec.window_end)
        for row in generate_rows(spec):
            assert start <= row[2]
            assert row[3] <= end

    def test_paper_defaults(self):
        spec = TemporalRelationSpec()
        assert spec.cardinality == 100_000
        assert spec.min_duration == spec.max_duration == 7


class TestUISRows:
    def test_position_schema_has_eight_attributes(self):
        assert len(POSITION_SCHEMA) == 8

    def test_position_row_size_near_80_bytes(self):
        assert POSITION_SCHEMA.row_width == pytest.approx(80, rel=0.15)

    def test_employee_schema_has_31_attributes(self):
        assert len(EMPLOYEE_SCHEMA) == 31

    def test_employee_row_size_near_276_bytes(self):
        assert EMPLOYEE_SCHEMA.row_width == pytest.approx(276, rel=0.2)

    def test_position_rows_deterministic(self):
        assert position_rows(50, seed=9) == position_rows(50, seed=9)

    def test_starts_skewed_to_1995_and_later(self):
        rows = position_rows(5000)
        recent = sum(1 for row in rows if row[6] >= year_start(1995))
        assert recent / len(rows) == pytest.approx(0.65, abs=0.03)

    def test_little_data_before_1992(self):
        rows = position_rows(5000)
        old = sum(1 for row in rows if row[6] < year_start(1992))
        assert old / len(rows) == pytest.approx(0.10, abs=0.03)

    def test_periods_well_formed_and_capped(self):
        for row in position_rows(2000):
            assert row[6] < row[7] <= year_start(2000)

    def test_posid_distribution_is_skewed(self):
        from collections import Counter

        counts = Counter(row[0] for row in position_rows(5000))
        frequencies = sorted(counts.values(), reverse=True)
        top_decile = sum(frequencies[: max(1, len(frequencies) // 10)])
        assert top_decile / 5000 > 0.3  # heavy head, defeating uniformity

    def test_employee_ids_dense(self):
        rows = employee_rows(100)
        assert [row[0] for row in rows] == list(range(100))


class TestLoadUIS:
    def test_scaled_cardinalities(self):
        db = MiniDB()
        dataset = load_uis(db, scale=0.01)
        assert db.table("POSITION").cardinality == int(83_857 * 0.01)
        assert db.table("EMPLOYEE").cardinality == int(49_972 * 0.01)
        assert dataset.scale == 0.01

    def test_variants_created_with_nominal_names(self):
        db = MiniDB()
        dataset = load_uis(db, scale=0.01)
        for nominal in POSITION_VARIANTS:
            name = dataset.variant_table(nominal)
            assert name == f"POSITION_{nominal}"
            assert db.table(name).cardinality == max(10, int(nominal * 0.01))

    def test_variants_are_prefixes_of_full_relation(self):
        db = MiniDB()
        load_uis(db, scale=0.01)
        full = db.table("POSITION").rows
        variant = db.table("POSITION_8000").rows
        assert variant == full[: len(variant)]

    def test_analyze_ran(self):
        db = MiniDB()
        load_uis(db, scale=0.01, with_variants=False)
        assert db.statistics_of("POSITION") is not None

    def test_optional_pieces(self):
        db = MiniDB()
        load_uis(db, scale=0.01, with_variants=False, with_employee=False)
        assert db.list_tables() == ["POSITION"]


class TestQueryDefinitions:
    @pytest.fixture(scope="class")
    def db(self):
        instance = MiniDB()
        load_uis(instance, scale=0.005)
        return instance

    def test_query1_three_plans(self, db):
        specs = queries.query1_plans(db)
        assert [spec.name for spec in specs] == ["Q1-P1", "Q1-P2", "Q1-P3"]
        assert all(spec.plan is not None for spec in specs)

    def test_query1_sql_text(self):
        assert queries.query1_sql("POSITION_8000").startswith("VALIDTIME")

    def test_query2_six_plans(self, db):
        specs = queries.query2_plans(db, "1996-01-01")
        assert len(specs) == 6

    def test_query3_two_plans(self, db):
        specs = queries.query3_plans(db, "1995-01-01")
        assert len(specs) == 2

    def test_query4_hint_plans_are_sql(self, db):
        specs = queries.query4_plans(db, "POSITION_8000")
        assert specs[0].plan is not None
        assert "USE_NL" in specs[1].sql
        assert "USE_MERGE" in specs[2].sql

    def test_all_algebra_plans_validate(self, db):
        from repro.optimizer.physical import validate_plan

        for spec in (
            queries.query1_plans(db)
            + queries.query2_plans(db, "1996-01-01")
            + queries.query3_plans(db, "1995-01-01")
            + queries.query4_plans(db)
        ):
            if spec.plan is not None:
                validate_plan(spec.plan)

    def test_initial_plans_validate(self, db):
        from repro.optimizer.physical import validate_plan

        validate_plan(queries.query1_initial_plan(db))
        validate_plan(queries.query2_initial_plan(db, "1996-01-01"))
        validate_plan(queries.query3_initial_plan(db, "1995-01-01"))
        validate_plan(queries.query4_initial_plan(db))
