"""Unit tests for aggregate accumulators, including the sliding variants
used by the temporal-aggregation sweep."""

import pytest

from repro.dbms.sql.functions import Accumulator, SlidingAggregate
from repro.errors import ExecutionError


class TestAccumulator:
    def test_count(self):
        acc = Accumulator("COUNT")
        for value in (1, 2, 3):
            acc.add(value)
        assert acc.result() == 3

    def test_count_ignores_none(self):
        acc = Accumulator("COUNT")
        acc.add(None)
        acc.add(1)
        assert acc.result() == 1

    def test_sum_avg(self):
        acc_sum = Accumulator("SUM")
        acc_avg = Accumulator("AVG")
        for value in (10, 30):
            acc_sum.add(value)
            acc_avg.add(value)
        assert acc_sum.result() == 40.0
        assert acc_avg.result() == 20.0

    def test_min_max(self):
        acc_min = Accumulator("MIN")
        acc_max = Accumulator("MAX")
        for value in (5, 1, 9):
            acc_min.add(value)
            acc_max.add(value)
        assert acc_min.result() == 1
        assert acc_max.result() == 9

    def test_empty_sum_is_null(self):
        assert Accumulator("SUM").result() is None

    def test_empty_count_is_zero(self):
        assert Accumulator("COUNT").result() == 0

    def test_distinct(self):
        acc = Accumulator("COUNT", distinct=True)
        for value in (1, 1, 2):
            acc.add(value)
        assert acc.result() == 2


class TestSlidingAggregate:
    def test_count_add_remove(self):
        agg = SlidingAggregate("COUNT")
        agg.add(1)
        agg.add(1)
        agg.remove(1)
        assert agg.result() == 1

    def test_sum_add_remove(self):
        agg = SlidingAggregate("SUM")
        agg.add(10)
        agg.add(20)
        agg.remove(10)
        assert agg.result() == 20.0

    def test_avg(self):
        agg = SlidingAggregate("AVG")
        agg.add(10)
        agg.add(30)
        agg.remove(30)
        assert agg.result() == 10.0

    def test_min_with_lazy_deletion(self):
        agg = SlidingAggregate("MIN")
        agg.add(5)
        agg.add(2)
        agg.add(8)
        assert agg.result() == 2
        agg.remove(2)
        assert agg.result() == 5

    def test_max_with_lazy_deletion(self):
        agg = SlidingAggregate("MAX")
        for value in (5, 2, 8):
            agg.add(value)
        agg.remove(8)
        assert agg.result() == 5

    def test_min_duplicate_values(self):
        agg = SlidingAggregate("MIN")
        agg.add(3)
        agg.add(3)
        agg.remove(3)
        assert agg.result() == 3

    def test_empty_flag(self):
        agg = SlidingAggregate("COUNT")
        assert agg.empty
        agg.add(1)
        assert not agg.empty
        agg.remove(1)
        assert agg.empty

    def test_remove_never_added_raises(self):
        agg = SlidingAggregate("MIN")
        agg.add(1)
        with pytest.raises(ExecutionError):
            agg.remove(2)

    def test_none_values_ignored(self):
        agg = SlidingAggregate("SUM")
        agg.add(None)
        agg.remove(None)
        assert agg.empty

    def test_unknown_function_rejected(self):
        with pytest.raises(ExecutionError):
            SlidingAggregate("MEDIAN")

    def test_exhausted_min_is_null(self):
        agg = SlidingAggregate("MIN")
        agg.add(4)
        agg.remove(4)
        assert agg.result() is None
