"""Concurrency coverage for :class:`repro.dbms.jdbc.ConnectionPool`.

The pool is the service layer's contention point: N worker Tangos lease
their primary connections here while ``TRANSFER^M`` fan-out draws
overflow connections through the same door.  These tests drive it from
real threads — concurrent checkout/return, strict-mode exhaustion
(blocking until a release vs. :class:`~repro.errors.PoolTimeoutError`),
and leak visibility when a holder dies without releasing.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection, ConnectionPool
from repro.errors import DatabaseError, PoolTimeoutError


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE T (K INTEGER)")
    instance.execute("INSERT INTO T VALUES (1), (2), (3)")
    return instance


class TestConcurrentCheckout:
    def test_concurrent_checkout_and_return(self, db):
        """Many threads hammering acquire/release: every connection works,
        nothing leaks, and the pool never parks more than *size* idle."""
        pool = ConnectionPool(db, size=4)
        errors: list[BaseException] = []

        def worker():
            try:
                for _ in range(25):
                    connection = pool.acquire()
                    try:
                        rows = connection.cursor().execute(
                            "SELECT K FROM T"
                        ).fetchall()
                        assert len(rows) == 3
                    finally:
                        pool.release(connection)
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.in_use == 0
        assert pool.idle <= pool.size
        pool.close()

    def test_overflow_connections_are_retired_not_parked(self, db):
        """Default (non-strict) mode: a burst beyond size gets overflow
        connections, and releasing them shrinks back to size."""
        pool = ConnectionPool(db, size=2)
        held = [pool.acquire() for _ in range(5)]
        assert pool.in_use == 5
        for connection in held:
            pool.release(connection)
        assert pool.in_use == 0
        assert pool.idle == 2  # steady state, overflow closed
        pool.close()

    def test_release_after_close_closes_connection(self, db):
        pool = ConnectionPool(db, size=2)
        connection = pool.acquire()
        pool.close()
        pool.release(connection)
        assert connection.closed

    def test_acquire_after_close_raises(self, db):
        pool = ConnectionPool(db, size=1)
        pool.close()
        with pytest.raises(DatabaseError):
            pool.acquire()


class TestStrictMode:
    def test_exhaustion_blocks_until_release(self, db):
        """A strict pool at capacity parks the acquirer; a release from
        another thread un-blocks it with the freed connection."""
        pool = ConnectionPool(db, size=1, strict=True)
        first = pool.acquire()
        acquired = []

        def blocked_acquirer():
            connection = pool.acquire(timeout=5.0)
            acquired.append(connection)
            pool.release(connection)

        thread = threading.Thread(target=blocked_acquirer)
        thread.start()
        time.sleep(0.05)
        assert not acquired  # still parked: capacity is genuinely enforced
        pool.release(first)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(acquired) == 1
        pool.close()

    def test_exhaustion_times_out(self, db):
        pool = ConnectionPool(db, size=1, strict=True)
        held = pool.acquire()
        begin = time.monotonic()
        with pytest.raises(PoolTimeoutError) as exc:
            pool.acquire(timeout=0.05)
        assert time.monotonic() - begin >= 0.05
        # The error is diagnosable: it names the capacity and the holders.
        assert "size=1" in str(exc.value)
        assert "in_use=1" in str(exc.value)
        pool.release(held)
        pool.close()

    def test_strict_pool_never_exceeds_size(self, db):
        pool = ConnectionPool(db, size=3, strict=True)
        peak = 0
        peak_lock = threading.Lock()
        errors: list[BaseException] = []

        def worker():
            nonlocal peak
            try:
                for _ in range(10):
                    with pool.lease(timeout=5.0):
                        with peak_lock:
                            peak = max(peak, pool.in_use)
                        time.sleep(0.001)
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert peak <= 3
        assert pool.in_use == 0
        pool.close()

    def test_retiring_a_dead_connection_frees_the_slot(self, db):
        """Closing (not releasing) a strict connection still returns its
        slot, so a broken connection cannot shrink capacity forever."""
        pool = ConnectionPool(db, size=1, strict=True)
        connection = pool.acquire()
        connection.close()  # died mid-use
        pool.release(connection)  # holder returns the corpse
        replacement = pool.acquire(timeout=1.0)  # slot is reusable
        assert not replacement.closed
        pool.release(replacement)
        pool.close()


class TestLeakDetection:
    def test_dead_holder_is_visible_as_in_use(self, db):
        """A thread that dies mid-checkout leaves the connection counted
        in ``in_use`` — the leak is observable, not silent."""
        pool = ConnectionPool(db, size=2)

        def doomed():
            pool.acquire()
            try:
                raise RuntimeError("query died without releasing")
            except RuntimeError:
                return  # the thread dies; the connection stays checked out

        thread = threading.Thread(target=doomed, daemon=True)
        thread.start()
        thread.join()
        assert pool.in_use == 1  # the leak shows up
        assert pool.idle == 0
        pool.close()

    def test_lease_context_manager_cannot_leak(self, db):
        pool = ConnectionPool(db, size=2)
        with pytest.raises(RuntimeError):
            with pool.lease():
                assert pool.in_use == 1
                raise RuntimeError("query died inside the lease")
        assert pool.in_use == 0
        assert pool.idle == 1
        pool.close()

    def test_foreign_connection_release_is_harmless(self, db):
        """Releasing a connection the pool never issued must not corrupt
        the in_use accounting."""
        pool = ConnectionPool(db, size=2)
        foreign = Connection(db)
        pool.release(foreign)
        assert pool.in_use == 0
        assert pool.idle == 1  # adopted as idle capacity, within size
        pool.close()
