"""Unit tests for the Volcano memo (equivalence classes + union-find)."""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import Location, Scan, Select, Sort
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.optimizer.memo import ClassRef, Memo

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def scan() -> Scan:
    return Scan("R", SCHEMA)


def sorted_scan() -> Sort:
    return Sort(scan(), Location.DBMS, ("K",))


class TestInsertion:
    def test_single_tree_counts(self):
        memo = Memo()
        memo.insert_tree(sorted_scan())
        assert memo.class_count == 2  # scan class + sort class
        assert memo.element_count == 2

    def test_duplicate_insert_is_noop(self):
        memo = Memo()
        first = memo.insert_tree(sorted_scan())
        second = memo.insert_tree(sorted_scan())
        assert first == second
        assert memo.element_count == 2

    def test_shared_subtrees_share_classes(self):
        memo = Memo()
        memo.insert_tree(sorted_scan())
        memo.insert_tree(Sort(scan(), Location.DBMS, ("T1",)))
        assert memo.class_count == 3  # one scan class, two sort classes

    def test_insert_into_existing_class(self):
        memo = Memo()
        root = memo.insert_tree(sorted_scan())
        memo.insert_tree(Sort(scan(), Location.MIDDLEWARE, ("K",)), into=root)
        assert len(memo.class_of(root).elements) == 2

    def test_location_distinguishes_elements(self):
        memo = Memo()
        root = memo.insert_tree(sorted_scan())
        before = memo.element_count
        memo.insert_tree(Sort(scan(), Location.MIDDLEWARE, ("K",)), into=root)
        assert memo.element_count == before + 1

    def test_class_ref_leaves_resolve(self):
        memo = Memo()
        scan_class = memo.insert_tree(scan())
        rebuilt = Sort(memo.ref(scan_class), Location.DBMS, ("K",))
        sort_class = memo.insert_tree(rebuilt)
        element = memo.class_of(sort_class).elements[0]
        assert element.children == (scan_class,)

    def test_ref_carries_schema(self):
        memo = Memo()
        scan_class = memo.insert_tree(scan())
        assert memo.ref(scan_class).schema == SCHEMA


class TestRepresentatives:
    def test_representative_is_concrete(self):
        memo = Memo()
        root = memo.insert_tree(sorted_scan())
        representative = memo.class_of(root).representative
        assert isinstance(representative, Sort)
        assert isinstance(representative.input, Scan)

    def test_class_schema(self):
        memo = Memo()
        root = memo.insert_tree(sorted_scan())
        assert memo.class_of(root).schema == SCHEMA


class TestMerging:
    def test_merge_reduces_class_count(self):
        memo = Memo()
        sort_class = memo.insert_tree(sorted_scan())
        scan_class = memo.insert_tree(scan())
        before = memo.class_count
        memo.merge(sort_class, scan_class)
        assert memo.class_count == before - 1

    def test_merged_class_holds_both_elements(self):
        memo = Memo()
        sort_class = memo.insert_tree(sorted_scan())
        scan_class = memo.insert_tree(scan())
        survivor = memo.merge(sort_class, scan_class)
        assert len(memo.class_of(survivor).elements) == 2

    def test_find_resolves_after_merge(self):
        memo = Memo()
        a = memo.insert_tree(sorted_scan())
        b = memo.insert_tree(scan())
        survivor = memo.merge(a, b)
        assert memo.find(a) == memo.find(b) == survivor

    def test_merge_idempotent(self):
        memo = Memo()
        a = memo.insert_tree(sorted_scan())
        b = memo.insert_tree(scan())
        memo.merge(a, b)
        before = memo.element_count
        memo.merge(a, b)
        assert memo.element_count == before

    def test_insert_into_merged_class_dedups(self):
        memo = Memo()
        a = memo.insert_tree(sorted_scan())
        b = memo.insert_tree(scan())
        memo.merge(a, b)
        memo.insert_tree(sorted_scan(), into=b)
        keys = [element.key(memo) for element in memo.class_of(a).elements]
        assert len(keys) == len(set(keys))

    def test_self_referential_element_after_merge(self):
        # T11 merges sort(r) with r: the sort element's child becomes its
        # own class — legal, handled by extraction's cycle guard.
        memo = Memo()
        sort_class = memo.insert_tree(sorted_scan())
        scan_class = memo.insert_tree(scan())
        survivor = memo.merge(sort_class, scan_class)
        sort_elements = [
            element
            for element in memo.class_of(survivor).elements
            if isinstance(element.template, Sort)
        ]
        assert sort_elements[0].children[0] in (sort_class, scan_class)
        assert memo.find(sort_elements[0].children[0]) == survivor


class TestClassRef:
    def test_takes_no_inputs(self):
        ref = ClassRef(class_id=1, ref_schema=SCHEMA)
        assert ref.inputs == ()
        assert ref.with_inputs() is ref

    def test_signature_by_class(self):
        assert ClassRef(class_id=1).signature() == ("ClassRef", 1)
