"""Unit tests for the columnar batch layer (:mod:`repro.xxl.columnar`).

Construction/slicing/filter semantics, exact ``to_rows``/``from_rows``
round-trips (None-valued and empty batches included), expression
compilation, and order preservation through the row<->column shims at
cursor boundaries.
"""

import pytest

from repro.algebra.expressions import And, Comparison, col, lit
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.xxl.columnar import (
    BACKENDS,
    ColumnBatch,
    ColumnarUnsupported,
    compile_columnar,
    numpy_available,
    resolve_backend,
)
from repro.xxl.cursor import materialize
from repro.xxl.filter import FilterCursor
from repro.xxl.project import ProjectCursor
from repro.xxl.sources import RelationCursor

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("NAME", AttrType.STR),
        Attribute("T1", AttrType.DATE),
    ]
)
ROWS = [
    (3, "c", 30),
    (1, "a", 10),
    (2, "b", 20),
    (1, "a", 15),
]

BACKEND_PARAMS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request):
    return request.param


class TestConstruction:
    def test_from_rows_transposes(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert len(batch) == 4
        assert batch.column_list(0) == [3, 1, 2, 1]
        assert batch.column_list(1) == ["c", "a", "b", "a"]
        assert batch.schema is SCHEMA

    def test_round_trip_is_exact(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert batch.to_rows() == ROWS

    def test_round_trip_preserves_value_types(self, backend):
        # numpy must not silently coerce: mixed int/None and int/float
        # columns stay boxed so the round trip is bit-for-bit.
        rows = [(1, None, 10), (None, "x", 2**70), (3, "y", 30)]
        batch = ColumnBatch.from_rows(SCHEMA, rows, backend)
        out = batch.to_rows()
        assert out == rows
        assert [type(v) for row in out for v in row] == [
            type(v) for row in rows for v in row
        ]

    def test_empty_batch(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, [], backend)
        assert len(batch) == 0
        assert batch.to_rows() == []

    def test_zero_width_schema(self, backend):
        batch = ColumnBatch.from_rows(Schema([]), [(), (), ()], backend)
        assert len(batch) == 3
        assert batch.to_rows() == [(), (), ()]

    def test_interning_keeps_values_equal(self):
        names = ["".join(["a", "b", str(i % 2)]) for i in range(6)]
        rows = [(i, name, i) for i, name in enumerate(names)]
        batch = ColumnBatch.from_rows(SCHEMA, rows, intern=True)
        assert batch.to_rows() == rows
        column = batch.column_list(1)
        assert column[0] is column[2]  # interned duplicates share storage

    def test_concat(self, backend):
        first = ColumnBatch.from_rows(SCHEMA, ROWS[:2], backend)
        second = ColumnBatch.from_rows(SCHEMA, ROWS[2:], backend)
        assert ColumnBatch.concat([first, second]).to_rows() == ROWS

    def test_concat_single_batch_is_identity(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert ColumnBatch.concat([batch]) is batch


class TestDerivation:
    def test_slice(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert batch.slice(1, 3).to_rows() == ROWS[1:3]
        assert batch.slice(3, 99).to_rows() == ROWS[3:]
        assert batch.slice(2, 2).to_rows() == []

    def test_filter_bitmap(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        filtered = batch.filter([True, False, True, False])
        assert filtered.to_rows() == [ROWS[0], ROWS[2]]
        assert len(filtered) == 2

    def test_filter_all_true_returns_self(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert batch.filter([1, 1, 1, 1]) is batch

    def test_filter_none_kept(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        assert batch.filter([0, 0, 0, 0]).to_rows() == []

    def test_project_shares_columns(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        narrow = batch.project([2, 0], Schema([SCHEMA[2], SCHEMA[0]]))
        assert narrow.to_rows() == [(t1, k) for k, _, t1 in ROWS]
        assert narrow.columns[0] is batch.columns[2]

    def test_typed_array(self):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS)
        packed = batch.typed_array(0)
        assert packed is not None and list(packed) == [3, 1, 2, 1]
        assert batch.typed_array(1) is None  # STR has no machine type
        view = batch.typed_view(2)
        assert view is not None and view.tolist() == [30, 10, 20, 15]

    def test_typed_array_refuses_none(self):
        batch = ColumnBatch.from_rows(SCHEMA, [(1, "a", None), (2, "b", 3)])
        assert batch.typed_array(2) is None
        assert batch.nbytes() > 0


class TestBackendResolution:
    def test_known_backends(self):
        assert resolve_backend("off") == "off"
        assert resolve_backend(None) == "off"
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") in ("numpy", "python")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("arrow")
        assert BACKENDS == ("off", "python", "numpy")


class TestCompileColumnar:
    def test_comparison_bitmap(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        predicate = compile_columnar(
            Comparison("<", col("K"), lit(3)), SCHEMA, backend
        )
        assert [bool(v) for v in predicate(batch)] == [False, True, True, True]

    def test_conjunction(self, backend):
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        predicate = compile_columnar(
            And(
                [
                    Comparison("=", col("K"), lit(1)),
                    Comparison(">", col("T1"), lit(12)),
                ]
            ),
            SCHEMA,
            backend,
        )
        assert [bool(v) for v in predicate(batch)] == [False, False, False, True]

    def test_matches_row_compilation(self, backend):
        expression = Comparison(">=", col("T1"), col("K"))
        row_func = expression.compile(SCHEMA)
        column_func = compile_columnar(expression, SCHEMA, backend)
        batch = ColumnBatch.from_rows(SCHEMA, ROWS, backend)
        expected = [row_func(row) for row in ROWS]
        assert [bool(v) for v in column_func(batch)] == expected

    def test_unsupported_raises(self):
        class Odd:
            pass

        with pytest.raises(ColumnarUnsupported):
            compile_columnar(Odd(), SCHEMA)


def columnar_relation(rows, backend="python"):
    cursor = RelationCursor(SCHEMA, list(rows))
    cursor.columnar = backend
    return cursor


class TestCursorShims:
    def test_next_column_batch_native(self):
        cursor = columnar_relation(ROWS)
        cursor.init()
        batch = cursor.next_column_batch(3)
        assert batch.to_rows() == ROWS[:3]
        assert cursor.next_column_batch(3).to_rows() == ROWS[3:]
        assert cursor.next_column_batch(3) is None
        assert cursor.cbatches_produced == 2
        assert cursor.rows_produced == 4

    def test_face_mixing_preserves_order(self):
        # Row pulls and column pulls interleave; together they must see
        # every row exactly once, in order.
        cursor = columnar_relation(ROWS)
        cursor.init()
        seen = [cursor.next()]
        seen.extend(cursor.next_column_batch(2).to_rows())
        seen.extend(cursor.next_batch(10))
        assert seen == ROWS
        assert cursor.next_column_batch(1) is None

    def test_row_shim_over_row_only_cursor(self):
        # A cursor with no native columnar face still serves column
        # batches through the default from_rows shim.
        cursor = ProjectCursor.of_columns(RelationCursor(SCHEMA, ROWS), ["K"])
        cursor.init()
        batch = cursor.next_column_batch(10)
        assert batch.to_rows() == [(k,) for k, _, _ in ROWS]

    def test_columnar_filter_matches_row_filter(self, backend):
        predicate = Comparison(">", col("T1"), lit(12))
        row_result = materialize(FilterCursor(RelationCursor(SCHEMA, ROWS), predicate))
        columnar = FilterCursor(columnar_relation(ROWS, backend), predicate)
        columnar.columnar = backend
        assert materialize(columnar) == row_result

    def test_columnar_filter_overshoot_served_in_order(self):
        predicate = Comparison(">", col("K"), lit(0))
        cursor = FilterCursor(columnar_relation(ROWS), predicate)
        cursor.columnar = "python"
        cursor.init()
        first = cursor.next()  # forces surplus buffering inside the cursor
        rest = cursor.next_batch(10)
        assert [first] + rest == ROWS
