"""Unit tests for expression-tree rewriting."""

import pytest

from repro.algebra.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Not,
    Or,
    col,
    lit,
)
from repro.algebra.rewrite import (
    collect,
    contains,
    rebuild,
    rename_columns,
    substitute,
    transform,
)
from repro.dbms.sql.ast import AggregateCall


class TestRebuild:
    def test_comparison(self):
        original = Comparison("<", col("A"), lit(1))
        rebuilt = rebuild(original, (col("B"), lit(2)))
        assert rebuilt == Comparison("<", col("B"), lit(2))

    def test_and(self):
        original = And([lit(1), lit(2)])
        rebuilt = rebuild(original, (lit(3), lit(4)))
        assert rebuilt == And([lit(3), lit(4)])

    def test_not(self):
        assert rebuild(Not(lit(1)), (lit(0),)) == Not(lit(0))

    def test_funccall(self):
        original = FuncCall("GREATEST", [lit(1), lit(2)])
        rebuilt = rebuild(original, (col("A"), col("B")))
        assert rebuilt == FuncCall("GREATEST", [col("A"), col("B")])

    def test_leaf_with_no_children(self):
        assert rebuild(lit(5), ()) == lit(5)

    def test_aggregate_call_duck_typed(self):
        call = AggregateCall("SUM", col("A"))
        rebuilt = rebuild(call, (col("B"),))
        assert isinstance(rebuilt, AggregateCall)
        assert rebuilt.argument == col("B")


class TestTransform:
    def test_identity_when_visitor_returns_none(self):
        expr = Comparison("<", col("A"), lit(1))
        assert transform(expr, lambda node: None) == expr

    def test_leaf_replacement_propagates(self):
        expr = BinOp("+", col("A"), col("A"))

        def visit(node):
            if isinstance(node, ColumnRef):
                return lit(7)
            return None

        assert transform(expr, visit) == BinOp("+", lit(7), lit(7))

    def test_bottom_up_ordering(self):
        # The visitor sees rebuilt children: replacing A with 1 makes the
        # comparison (1 < 1), which the visitor then folds.
        expr = Comparison("<", col("A"), lit(1))

        def visit(node):
            if isinstance(node, ColumnRef):
                return lit(1)
            if isinstance(node, Comparison) and node.left == node.right:
                return lit(False)
            return None

        assert transform(expr, visit) == lit(False)


class TestSubstitute:
    def test_whole_node_swap(self):
        expr = BinOp("+", col("A"), lit(1))
        mapping = {col("A"): col("B")}
        assert substitute(expr, mapping) == BinOp("+", col("B"), lit(1))

    def test_matched_subtree_not_descended(self):
        inner = BinOp("+", col("A"), lit(1))
        mapping = {inner: col("S"), col("A"): col("NEVER")}
        assert substitute(inner, mapping) == col("S")

    def test_no_match_is_identity(self):
        expr = BinOp("+", col("A"), lit(1))
        assert substitute(expr, {col("Z"): col("Y")}) == expr

    def test_aggregate_call_substitution(self):
        call = AggregateCall("COUNT", None)
        expr = BinOp("*", call, lit(2))
        result = substitute(expr, {call: col("#a0")})
        assert result == BinOp("*", col("#a0"), lit(2))


class TestRenameColumns:
    def test_simple(self):
        expr = Comparison("<", col("T1"), lit(10))
        assert rename_columns(expr, {"t1": "Start"}) == Comparison(
            "<", col("Start"), lit(10)
        )

    def test_unmapped_columns_kept(self):
        expr = Comparison("<", col("T1"), col("T2"))
        renamed = rename_columns(expr, {"t1": "Start"})
        assert renamed == Comparison("<", col("Start"), col("T2"))


class TestSearchHelpers:
    def test_contains(self):
        expr = And([Comparison("<", col("A"), lit(1)), Not(lit(0))])
        assert contains(expr, Not)
        assert not contains(expr, Or)

    def test_collect(self):
        expr = And([Comparison("<", col("A"), lit(1)), Comparison("=", col("B"), lit(2))])
        assert len(collect(expr, Comparison)) == 2

    def test_collect_does_not_descend_into_matches(self):
        inner = Comparison("<", col("A"), lit(1))
        assert collect(inner, Comparison) == [inner]
