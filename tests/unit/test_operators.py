"""Unit tests for logical algebra operators and schema derivation."""

import pytest

from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import (
    AggregateSpec,
    Coalesce,
    Dedup,
    Difference,
    Join,
    Location,
    Product,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.errors import PlanError

POSITION = Schema(
    [
        Attribute("PosID", AttrType.INT),
        Attribute("EmpName", AttrType.STR, 16),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def position_scan() -> Scan:
    return Scan("POSITION", POSITION)


class TestAggregateSpec:
    def test_default_output_name(self):
        assert AggregateSpec("COUNT", "PosID").output_name == "COUNTofPosID"

    def test_count_star_output_name(self):
        assert AggregateSpec("COUNT").output_name == "COUNTofALL"

    def test_explicit_output(self):
        assert AggregateSpec("SUM", "PosID", "Total").output_name == "Total"

    def test_avg_type_is_float(self):
        assert AggregateSpec("AVG", "PosID").output_type(POSITION) is AttrType.FLOAT

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            AggregateSpec("MEDIAN", "PosID")

    def test_non_count_requires_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec("SUM")

    def test_to_sql(self):
        assert AggregateSpec("COUNT").to_sql() == "COUNT(*)"
        assert AggregateSpec("MIN", "T1").to_sql() == "MIN(T1)"


class TestScan:
    def test_location_is_dbms(self):
        assert position_scan().location is Location.DBMS

    def test_cannot_relocate(self):
        with pytest.raises(PlanError):
            position_scan().located(Location.MIDDLEWARE)

    def test_schema_passthrough(self):
        assert position_scan().schema == POSITION

    def test_clustered_order(self):
        scan = Scan("POSITION", POSITION, ("PosID",))
        assert scan.order() == ("PosID",)


class TestSelectAndProject:
    def test_select_schema_unchanged(self):
        select = Select(position_scan(), Location.DBMS, Comparison("<", col("T1"), lit(5)))
        assert select.schema == POSITION

    def test_select_unknown_attribute_rejected(self):
        select = Select(position_scan(), Location.DBMS, Comparison("<", col("Bogus"), lit(5)))
        with pytest.raises(PlanError):
            __ = select.schema

    def test_select_requires_predicate(self):
        with pytest.raises(PlanError):
            Select(position_scan(), Location.DBMS, None)

    def test_project_of_columns(self):
        project = Project.of_columns(position_scan(), ["PosID", "T1"])
        assert project.schema.names == ("PosID", "T1")
        assert project.is_simple()

    def test_project_expression_output(self):
        project = Project(
            position_scan(),
            Location.DBMS,
            (("Double", col("PosID")), ("Sum", lit(1))),
        )
        assert project.schema.names == ("Double", "Sum")
        assert not project.is_simple()

    def test_project_empty_rejected(self):
        with pytest.raises(PlanError):
            Project(position_scan(), Location.DBMS, ())

    def test_project_order_survives_prefix(self):
        sort = Sort(position_scan(), Location.DBMS, ("PosID", "T1"))
        project = Project.of_columns(sort, ["PosID", "EmpName"])
        assert project.order() == ("PosID",)


class TestSort:
    def test_order_is_keys(self):
        sort = Sort(position_scan(), Location.DBMS, ("PosID", "T1"))
        assert sort.order() == ("PosID", "T1")

    def test_unknown_key_rejected(self):
        sort = Sort(position_scan(), Location.DBMS, ("Nope",))
        with pytest.raises(PlanError):
            __ = sort.schema

    def test_empty_keys_rejected(self):
        with pytest.raises(PlanError):
            Sort(position_scan(), Location.DBMS, ())


class TestJoins:
    def test_join_schema_concat(self):
        join = Join(position_scan(), position_scan(), Location.DBMS, "PosID", "PosID")
        assert join.schema.names == (
            "PosID", "EmpName", "T1", "T2", "PosID_2", "EmpName_2", "T1_2", "T2_2",
        )

    def test_join_missing_attribute_rejected(self):
        join = Join(position_scan(), position_scan(), Location.DBMS, "Missing", "PosID")
        with pytest.raises(PlanError):
            __ = join.schema

    def test_temporal_join_single_period(self):
        tjoin = TemporalJoin(
            position_scan(), position_scan(), Location.DBMS, "PosID", "PosID"
        )
        names = tjoin.schema.names
        assert names == (
            "PosID", "EmpName", "PosID_2", "EmpName_2", "T1", "T2",
        )

    def test_temporal_join_requires_period_attrs(self):
        no_period = Scan("X", Schema([Attribute("PosID")]))
        tjoin = TemporalJoin(no_period, position_scan(), Location.DBMS, "PosID", "PosID")
        with pytest.raises(PlanError):
            __ = tjoin.schema

    def test_join_order_is_left_attr(self):
        join = Join(position_scan(), position_scan(), Location.DBMS, "PosID", "PosID")
        assert join.order() == ("PosID",)

    def test_product_schema(self):
        product = Product(position_scan(), position_scan(), Location.DBMS)
        assert len(product.schema) == 8


class TestTemporalAggregate:
    def make(self) -> TemporalAggregate:
        return TemporalAggregate(
            position_scan(),
            Location.DBMS,
            ("PosID",),
            (AggregateSpec("COUNT", "PosID"),),
        )

    def test_schema(self):
        assert self.make().schema.names == ("PosID", "T1", "T2", "COUNTofPosID")

    def test_delivered_order(self):
        assert self.make().order() == ("PosID", "T1")

    def test_requires_aggregate(self):
        with pytest.raises(PlanError):
            TemporalAggregate(position_scan(), Location.DBMS, ("PosID",), ())

    def test_unknown_aggregate_argument_rejected(self):
        aggregate = TemporalAggregate(
            position_scan(), Location.DBMS, (), (AggregateSpec("SUM", "Wages"),)
        )
        with pytest.raises(PlanError):
            __ = aggregate.schema

    def test_no_grouping_schema(self):
        aggregate = TemporalAggregate(
            position_scan(), Location.DBMS, (), (AggregateSpec("COUNT"),)
        )
        assert aggregate.schema.names == ("T1", "T2", "COUNTofALL")


class TestTransfers:
    def test_transfer_m_is_middleware(self):
        assert TransferM(position_scan()).location is Location.MIDDLEWARE

    def test_transfer_d_is_dbms(self):
        inner = TransferM(position_scan())
        assert TransferD(inner).location is Location.DBMS

    def test_transfer_m_preserves_order(self):
        sort = Sort(position_scan(), Location.DBMS, ("PosID",))
        assert TransferM(sort).order() == ("PosID",)

    def test_transfer_d_drops_order(self):
        sort = Sort(position_scan(), Location.DBMS, ("PosID",))
        assert TransferD(TransferM(sort)).order() == ()

    def test_schema_passthrough(self):
        assert TransferM(position_scan()).schema == POSITION


class TestTreePlumbing:
    def test_with_inputs_replaces_child(self):
        select = Select(position_scan(), Location.DBMS, Comparison("<", col("T1"), lit(5)))
        other = Scan("POSITION", POSITION, ("PosID",))
        replaced = select.with_inputs(other)
        assert replaced.input is other
        assert replaced.predicate == select.predicate

    def test_walk_preorder(self):
        plan = TransferM(Sort(position_scan(), Location.DBMS, ("PosID",)))
        names = [node.name for node in plan.walk()]
        assert names == ["TransferM", "Sort", "Scan"]

    def test_size(self):
        plan = TransferM(Sort(position_scan(), Location.DBMS, ("PosID",)))
        assert plan.size() == 3

    def test_pretty_contains_labels(self):
        plan = TransferM(position_scan())
        assert "T^M" in plan.pretty()
        assert "Scan(POSITION)" in plan.pretty()

    def test_cache_key_structural(self):
        a = Select(position_scan(), Location.DBMS, Comparison("<", col("T1"), lit(5)))
        b = Select(position_scan(), Location.DBMS, Comparison("<", col("T1"), lit(5)))
        assert a.cache_key == b.cache_key

    def test_cache_key_distinguishes_location(self):
        predicate = Comparison("<", col("T1"), lit(5))
        a = Select(position_scan(), Location.DBMS, predicate)
        b = Select(position_scan(), Location.MIDDLEWARE, predicate)
        assert a.cache_key != b.cache_key


class TestExtensionOperators:
    def test_dedup_schema(self):
        assert Dedup(position_scan()).schema == POSITION

    def test_coalesce_requires_period(self):
        no_period = Scan("X", Schema([Attribute("A")]))
        with pytest.raises(PlanError):
            __ = Coalesce(no_period).schema

    def test_difference_arity_check(self):
        small = Scan("X", Schema([Attribute("A")]))
        with pytest.raises(PlanError):
            __ = Difference(position_scan(), small).schema
