"""Unit tests for the parallel transport pieces at the DBMS boundary: the
connection pool, pooled transfer cursors, per-cursor round-trip
accounting, and the simulated wire latency."""

import math
import threading
import time

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection, ConnectionPool
from repro.errors import DatabaseError
from repro.obs.metrics import MetricsRegistry
from repro.xxl.sources import PooledSQLCursor, SQLCursor

ROWS = 25


@pytest.fixture
def db():
    instance = MiniDB()
    instance.execute("CREATE TABLE NUMS (N INT)")
    values = ", ".join(f"({n})" for n in range(ROWS))
    instance.execute(f"INSERT INTO NUMS VALUES {values}")
    return instance


class TestConnectionPool:
    def test_acquire_creates_then_reuses(self, db):
        pool = ConnectionPool(db, size=2)
        first = pool.acquire()
        pool.release(first)
        assert pool.acquire() is first

    def test_overflow_connections_closed_on_release(self, db):
        pool = ConnectionPool(db, size=2)
        connections = [pool.acquire() for _ in range(3)]  # burst past size
        for connection in connections:
            pool.release(connection)
        parked = sum(1 for c in connections if not c.closed)
        assert parked == 2
        assert sum(1 for c in connections if c.closed) == 1

    def test_acquire_after_close_raises(self, db):
        pool = ConnectionPool(db, size=1)
        pool.close()
        with pytest.raises(DatabaseError):
            pool.acquire()

    def test_close_closes_idle_and_late_releases(self, db):
        pool = ConnectionPool(db, size=2)
        idle = pool.acquire()
        held = pool.acquire()
        pool.release(idle)
        pool.close()
        assert idle.closed
        pool.release(held)  # released after close: closed, not parked
        assert held.closed

    def test_pool_propagates_shared_accounting(self, db):
        metrics = MetricsRegistry()
        pool = ConnectionPool(db, size=1, metrics=metrics)
        connection = pool.acquire()
        rows = connection.cursor().execute("SELECT N FROM NUMS").fetchall()
        assert len(rows) == ROWS
        assert metrics.value("dbms_round_trips") > 0


class TestRoundTripAccounting:
    def test_cursor_round_trips_match_prefetch_math(self, db):
        connection = Connection(db, prefetch=10)
        cursor = SQLCursor(connection, "SELECT N FROM NUMS")
        rows = [row for row in cursor.init()]
        assert len(rows) == ROWS
        assert cursor.round_trips == math.ceil(ROWS / 10)

    def test_round_trips_survive_close(self, db):
        connection = Connection(db, prefetch=10)
        cursor = SQLCursor(connection, "SELECT N FROM NUMS")
        cursor.init()
        while cursor.next_batch(64):
            pass
        cursor.close()
        assert cursor.round_trips == math.ceil(ROWS / 10)

    def test_concurrent_pooled_cursors_account_independently(self, db):
        pool = ConnectionPool(db, size=2, prefetch=10)
        first = PooledSQLCursor(pool, "SELECT N FROM NUMS").init()
        second = PooledSQLCursor(pool, "SELECT N FROM NUMS WHERE N < 5").init()
        # Interleave the drains: accounting must stay per-cursor.
        while first.next_batch(7) or second.next_batch(7):
            pass
        first.close()
        second.close()
        assert first.round_trips == math.ceil(ROWS / 10)
        assert second.round_trips == 1

    def test_pooled_cursor_returns_its_connection(self, db):
        pool = ConnectionPool(db, size=1)
        cursor = PooledSQLCursor(pool, "SELECT N FROM NUMS").init()
        held = cursor._connection
        assert held is not None
        cursor.close()
        assert pool.acquire() is held  # parked again, not leaked

    def test_failed_open_releases_the_connection(self, db):
        pool = ConnectionPool(db, size=1)
        cursor = PooledSQLCursor(pool, "SELECT N FROM NO_SUCH_TABLE")
        with pytest.raises(DatabaseError):
            cursor.init()
        assert cursor._connection is None
        assert len(pool._idle) == 1  # back in the pool despite the failure


class TestWireLatency:
    def test_latency_defaults_to_zero_and_never_sleeps(self, db, monkeypatch):
        def forbidden(_seconds):
            raise AssertionError("latency sleep fired with latency disabled")

        monkeypatch.setattr(time, "sleep", forbidden)
        connection = Connection(db)
        assert connection.latency_seconds == 0.0
        rows = connection.cursor().execute("SELECT N FROM NUMS").fetchall()
        assert len(rows) == ROWS

    def test_latency_is_paid_per_round_trip(self, db):
        connection = Connection(db, prefetch=10, latency_seconds=0.005)
        cursor = SQLCursor(connection, "SELECT N FROM NUMS")
        begin = time.perf_counter()
        rows = [row for row in cursor.init()]
        elapsed = time.perf_counter() - begin
        assert len(rows) == ROWS
        # execute + ceil(25/10) fetch refills, 5ms each (scheduler slack
        # only ever adds time).
        assert elapsed >= 0.005 * (1 + math.ceil(ROWS / 10)) * 0.9

    def test_pool_stamps_latency_onto_connections(self, db):
        pool = ConnectionPool(db, size=1, latency_seconds=0.25)
        assert pool.acquire().latency_seconds == 0.25

    def test_concurrent_latency_sleeps_overlap(self, db):
        # The sleep releases the GIL: two connections waiting on the wire
        # in parallel take ~one latency, not two.  This is the property
        # the exchange's speedup rests on.
        latency = 0.05
        pool = ConnectionPool(db, size=2, latency_seconds=latency)
        connections = [pool.acquire(), pool.acquire()]

        def pull(connection):
            connection.cursor().execute("SELECT N FROM NUMS").fetchall()

        begin = time.perf_counter()
        pull(connections[0])
        single = time.perf_counter() - begin

        threads = [
            threading.Thread(target=pull, args=(c,)) for c in connections
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        # Back-to-back the two pulls would take ~2x single; overlapped they
        # take ~1x.  1.6x splits the difference with room for scheduler
        # noise.
        assert elapsed < 1.6 * single
