"""Unit tests for the batched cursor protocol (``next_batch``).

The key invariant (the former lookahead-dropping bug): rows buffered by
``has_next()`` — or parked by a native ``_next_batch`` that overshot — are
*always* served first, whatever mix of ``next()`` / ``next_batch()`` /
iteration consumes the cursor afterwards.
"""

import pytest

from repro.algebra.expressions import BinOp, Comparison, col, lit
from repro.algebra.schema import Attribute, Schema
from repro.xxl.cursor import BatchReader, Cursor, DEFAULT_BATCH_SIZE, materialize
from repro.xxl.filter import FilterCursor
from repro.xxl.project import ProjectCursor
from repro.xxl.sources import IterableCursor, RelationCursor

SCHEMA = Schema([Attribute("X")])

ROWS = [(i,) for i in range(10)]


def relation(rows=ROWS):
    return RelationCursor(SCHEMA, rows)


class FallbackCursor(Cursor):
    """A cursor providing only ``_next`` — exercises the default batch path."""

    def __init__(self, rows):
        super().__init__(SCHEMA)
        self._rows = iter(rows)

    def _next(self) -> tuple:
        try:
            return next(self._rows)
        except StopIteration:
            raise StopIteration from None


class TestNextBatch:
    def test_batches_partition_the_stream(self):
        cursor = relation()
        assert cursor.next_batch(4) == ROWS[:4]
        assert cursor.next_batch(4) == ROWS[4:8]
        assert cursor.next_batch(4) == ROWS[8:]
        assert cursor.next_batch(4) == []

    def test_non_positive_n_returns_empty(self):
        cursor = relation()
        assert cursor.next_batch(0) == []
        assert cursor.next_batch(-3) == []
        assert cursor.next() == (0,)  # nothing consumed

    def test_oversized_batch_returns_everything(self):
        assert relation().next_batch(1000) == ROWS

    def test_default_fallback_matches_native(self):
        assert FallbackCursor(ROWS).next_batch(4) == ROWS[:4]
        cursor = FallbackCursor(ROWS)
        assert cursor.next_batch(100) == ROWS
        assert cursor.next_batch(1) == []

    def test_rows_and_batches_counters(self):
        cursor = relation()
        cursor.next_batch(4)
        cursor.next_batch(4)
        cursor.next_batch(4)
        assert cursor.rows_produced == 10
        assert cursor.batches_produced == 3  # the empty tail batch not counted

    def test_iter_batched(self):
        cursor = relation()
        assert list(cursor.iter_batched(3)) == ROWS
        assert cursor.batches_produced == 4

    def test_default_batch_size_is_class_attribute(self):
        assert Cursor.batch_size == DEFAULT_BATCH_SIZE == 256


class TestProtocolMixing:
    """Regression tests: buffered lookahead rows are never dropped."""

    def test_has_next_then_next_batch(self):
        cursor = relation()
        assert cursor.has_next()  # buffers (0,)
        assert cursor.next_batch(3) == ROWS[:3]

    def test_has_next_then_batch_then_next(self):
        cursor = relation()
        assert cursor.has_next()
        assert cursor.next_batch(2) == ROWS[:2]
        assert cursor.next() == (2,)
        assert cursor.has_next()
        assert cursor.next_batch(100) == ROWS[3:]
        assert not cursor.has_next()

    def test_repeated_has_next_buffers_one_row_only(self):
        cursor = relation()
        for _ in range(5):
            assert cursor.has_next()
        assert cursor.next_batch(100) == ROWS

    def test_mixing_on_fallback_cursor(self):
        cursor = FallbackCursor(ROWS)
        assert cursor.has_next()
        assert cursor.next_batch(4) == ROWS[:4]
        assert cursor.next() == (4,)
        assert list(cursor) == ROWS[5:]

    def test_filter_overshoot_parks_surplus(self):
        # FilterCursor pulls input batches larger than n; the surplus must
        # surface in order on whichever call comes next.
        cursor = FilterCursor(relation(), Comparison(">", col("X"), lit(3)))
        assert cursor.next_batch(2) == [(4,), (5,)]
        assert cursor.next() == (6,)
        assert cursor.next_batch(10) == [(7,), (8,), (9,)]

    def test_project_batches(self):
        cursor = ProjectCursor(relation(), [("Y", BinOp("*", col("X"), lit(10)))])
        assert cursor.next_batch(3) == [(0,), (10,), (20,)]
        assert cursor.has_next()
        assert materialize(cursor) == [(i * 10,) for i in range(3, 10)]

    def test_iterable_cursor_batches(self):
        cursor = IterableCursor(SCHEMA, ((i,) for i in range(5)))
        assert cursor.has_next()
        assert cursor.next_batch(3) == [(0,), (1,), (2,)]
        assert cursor.next_batch(3) == [(3,), (4,)]


class TestBatchReader:
    def test_reads_rows_then_none(self):
        reader = BatchReader(relation([(1,), (2,), (3,)]).init(), 2)
        assert [reader.read(), reader.read(), reader.read()] == [(1,), (2,), (3,)]
        assert reader.read() is None
        assert reader.read() is None

    def test_empty_cursor(self):
        assert BatchReader(relation([]).init(), 4).read() is None
