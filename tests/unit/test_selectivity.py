"""Unit tests for temporal selectivity estimation (Section 3.3).

The :class:`TestPaperWorkedExample` class reproduces the paper's numbers:
100,000 tuples, 7-day periods uniform over 1995-2000, query
``Overlaps(1997-02-01, 1997-02-08)`` — naive estimate ≈24.7 % (a factor of
~40 too high), semantic estimate ≈0.8 %, true answer 0.4-0.8 %.
"""

import pytest

from repro.algebra.expressions import And, Comparison, col, lit
from repro.stats.collector import AttributeStats, RelationStats
from repro.stats.histogram import build_height_balanced
from repro.stats.selectivity import (
    PredicateEstimator,
    end_before,
    naive_overlaps_selectivity,
    overlaps_selectivity,
    start_before,
    timeslice_selectivity,
)
from repro.temporal.timestamps import day_of
from repro.workloads.generator import TemporalRelationSpec, generate_rows


def paper_stats() -> RelationStats:
    """Exact statistics of the Section 3.3 relation (no histograms)."""
    t1_min, t1_max = day_of("1995-01-01"), day_of("1999-12-25")
    t2_min, t2_max = day_of("1995-01-08"), day_of("2000-01-01")
    return RelationStats(
        cardinality=100_000,
        avg_row_size=24,
        blocks=300,
        attributes={
            "t1": AttributeStats("T1", t1_min, t1_max, 1819),
            "t2": AttributeStats("T2", t2_min, t2_max, 1819),
        },
    )


class TestStartEndBefore:
    def test_start_before_linear_interpolation(self):
        stats = paper_stats()
        midpoint = (day_of("1995-01-01") + day_of("1999-12-25")) / 2
        assert start_before(midpoint, stats) == pytest.approx(50_000, rel=0.01)

    def test_start_before_clamps_low(self):
        assert start_before(day_of("1990-01-01"), paper_stats()) == 0.0

    def test_start_before_clamps_high(self):
        assert start_before(day_of("2005-01-01"), paper_stats()) == 100_000

    def test_end_before_uses_t2(self):
        stats = paper_stats()
        assert end_before(day_of("1995-01-08"), stats) == 0.0

    def test_histogram_branch(self):
        values = [float(v) for v in range(1000)]
        stats = RelationStats(
            cardinality=1000,
            avg_row_size=8,
            attributes={
                "t1": AttributeStats(
                    "T1", 0, 999, 1000, build_height_balanced(values, 10)
                )
            },
        )
        assert start_before(250.0, stats) == pytest.approx(250, rel=0.05)


class TestPaperWorkedExample:
    A = property(lambda self: day_of("1997-02-01"))
    B = property(lambda self: day_of("1997-02-08"))

    def test_naive_overestimates_to_247_percent(self):
        naive = naive_overlaps_selectivity(self.A, self.B, paper_stats())
        assert naive == pytest.approx(0.247, abs=0.005)

    def test_semantic_estimate_is_08_percent(self):
        semantic = overlaps_selectivity(self.A, self.B, paper_stats())
        assert semantic == pytest.approx(0.008, abs=0.001)

    def test_naive_error_factor_is_about_40(self):
        # "This is a factor of 40 too high!"
        naive = naive_overlaps_selectivity(self.A, self.B, paper_stats())
        true_fraction = 0.006  # between 383 and 766 of 100,000
        assert 30 <= naive / true_fraction <= 55

    def test_semantic_close_to_truth_on_generated_data(self):
        spec = TemporalRelationSpec(cardinality=20_000, seed=3)
        rows = generate_rows(spec)
        actual = sum(1 for row in rows if row[2] < self.B and row[3] > self.A)
        estimated = overlaps_selectivity(self.A, self.B, paper_stats()) * len(rows)
        assert estimated == pytest.approx(actual, rel=0.5)

    def test_timeslice(self):
        # Tuples valid on one day: about 383 of 100,000.
        selectivity = timeslice_selectivity(self.A, paper_stats())
        assert selectivity * 100_000 == pytest.approx(383, rel=0.35)


class TestPredicateEstimator:
    def overlap_predicate(self):
        return And(
            (
                Comparison("<", col("T1"), lit(day_of("1997-02-08"))),
                Comparison(">", col("T2"), lit(day_of("1997-02-01"))),
            )
        )

    def test_recognizes_overlap_pattern(self):
        estimator = PredicateEstimator()
        selectivity = estimator.estimate(self.overlap_predicate(), paper_stats())
        assert selectivity == pytest.approx(0.008, abs=0.002)

    def test_naive_mode_multiplies_conjuncts(self):
        estimator = PredicateEstimator(semantic_temporal=False)
        selectivity = estimator.estimate(self.overlap_predicate(), paper_stats())
        assert selectivity == pytest.approx(0.247, abs=0.01)

    def test_histograms_can_be_disabled(self):
        values = [0.0] * 900 + [float(v) for v in range(100)]
        stats = RelationStats(
            cardinality=1000,
            avg_row_size=8,
            attributes={
                "v": AttributeStats("V", 0, 99, 100, build_height_balanced(values))
            },
        )
        predicate = Comparison("<", col("V"), lit(1))
        with_hist = PredicateEstimator(use_histograms=True).estimate(predicate, stats)
        without = PredicateEstimator(use_histograms=False).estimate(predicate, stats)
        assert with_hist > 0.5          # histogram sees the skew
        assert without < 0.05           # uniform assumption misses it

    def test_none_predicate_is_one(self):
        assert PredicateEstimator().estimate(None, paper_stats()) == 1.0

    def test_equality_uses_distinct_count(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={"k": AttributeStats("K", 0, 9, 10)},
        )
        predicate = Comparison("=", col("K"), lit(5))
        assert PredicateEstimator().estimate(predicate, stats) == pytest.approx(0.1)

    def test_column_equality_join_style(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={
                "a": AttributeStats("A", 0, 9, 10),
                "b": AttributeStats("B", 0, 9, 20),
            },
        )
        predicate = Comparison("=", col("A"), col("B"))
        assert PredicateEstimator().estimate(predicate, stats) == pytest.approx(0.05)

    def test_or_inclusion_exclusion(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={"k": AttributeStats("K", 0, 9, 10)},
        )
        predicate = Comparison("=", col("K"), lit(1)) | Comparison("=", col("K"), lit(2))
        estimated = PredicateEstimator().estimate(predicate, stats)
        assert estimated == pytest.approx(1 - 0.9 * 0.9)

    def test_not(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={"k": AttributeStats("K", 0, 9, 10)},
        )
        predicate = ~Comparison("=", col("K"), lit(1))
        assert PredicateEstimator().estimate(predicate, stats) == pytest.approx(0.9)

    def test_range_bounds(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={"v": AttributeStats("V", 0, 100, 100)},
        )
        below = PredicateEstimator().estimate(Comparison("<", col("V"), lit(25)), stats)
        assert below == pytest.approx(0.25, abs=0.02)
        above = PredicateEstimator().estimate(Comparison(">", col("V"), lit(75)), stats)
        assert above == pytest.approx(0.25, abs=0.02)

    def test_selectivity_always_in_unit_interval(self):
        stats = paper_stats()
        predicate = And(
            (
                Comparison("<", col("T1"), lit(9_999_999)),
                Comparison(">", col("T2"), lit(-1)),
            )
        )
        assert 0.0 <= PredicateEstimator().estimate(predicate, stats) <= 1.0

    def test_string_equality_fallback(self):
        stats = RelationStats(
            cardinality=100, avg_row_size=8,
            attributes={"name": AttributeStats("Name", None, None, 4)},
        )
        predicate = Comparison("=", col("Name"), lit("Tom"))
        assert PredicateEstimator().estimate(predicate, stats) == pytest.approx(0.25)
