"""Unit tests for the Statistics Collector and middleware stats records."""

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.errors import StatisticsError
from repro.stats.collector import AttributeStats, RelationStats, StatisticsCollector


@pytest.fixture
def connection():
    db = MiniDB()
    db.execute("CREATE TABLE T (K INT, Name VARCHAR(8), T1 DATE)")
    db.execute("INSERT INTO T VALUES (1, 'a', 100), (2, 'b', 200), (2, 'c', 300)")
    return Connection(db)


class TestRelationStats:
    def make(self) -> RelationStats:
        return RelationStats(
            cardinality=100,
            avg_row_size=40,
            blocks=1,
            attributes={
                "k": AttributeStats("K", 0, 9, 10),
            },
        )

    def test_size_is_cardinality_times_width(self):
        assert self.make().size == 4000

    def test_attribute_lookup(self):
        assert self.make().attribute("K").distinct == 10

    def test_unknown_attribute_pessimistic_default(self):
        stats = self.make().attribute("mystery")
        assert stats.distinct == 100  # assume all distinct

    def test_with_cardinality_scales_distinct(self):
        scaled = self.make().with_cardinality(5)
        assert scaled.cardinality == 5
        assert scaled.attribute("K").distinct == 5

    def test_with_cardinality_never_negative(self):
        assert self.make().with_cardinality(-3).cardinality == 0

    def test_has_histogram(self):
        assert not self.make().has_histogram("K")


class TestAttributeStats:
    def test_value_range(self):
        assert AttributeStats("X", 10, 30, 5).value_range == 20

    def test_value_range_none_when_unknown(self):
        assert AttributeStats("X").value_range is None

    def test_scaled_to_floor_of_one(self):
        scaled = AttributeStats("X", 0, 9, 10).scaled_to(3)
        assert scaled.distinct == 3


class TestCollector:
    def test_collects_from_analyzed_catalog(self, connection):
        connection.db.analyze("T")
        stats = StatisticsCollector(connection).collect("T")
        assert stats.cardinality == 3
        assert stats.attribute("K").distinct == 2
        assert stats.attribute("T1").min_value == 100

    def test_auto_analyze(self, connection):
        stats = StatisticsCollector(connection).collect("T")
        assert stats.cardinality == 3

    def test_no_auto_analyze_raises(self, connection):
        collector = StatisticsCollector(connection, auto_analyze=False)
        with pytest.raises(StatisticsError):
            collector.collect("T")

    def test_caching(self, connection):
        collector = StatisticsCollector(connection)
        first = collector.collect("T")
        connection.db.execute("INSERT INTO T VALUES (9, 'z', 900)")
        assert collector.collect("T") is first  # stale by design

    def test_refresh_drops_cache(self, connection):
        collector = StatisticsCollector(connection)
        collector.collect("T")
        connection.db.execute("INSERT INTO T VALUES (9, 'z', 900)")
        connection.db.analyze("T")
        collector.refresh()
        assert collector.collect("T").cardinality == 4

    def test_string_minmax_not_numeric(self, connection):
        stats = StatisticsCollector(connection).collect("T")
        assert stats.attribute("Name").min_value is None

    def test_histogram_carried(self, connection):
        connection.db.analyze("T")
        stats = StatisticsCollector(connection).collect("T")
        assert stats.has_histogram("T1")
