"""Unit tests for heap-table storage and block accounting."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.dbms.table import Table
from repro.errors import DatabaseError

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def make_table(rows: int = 0) -> Table:
    table = Table("T", SCHEMA)
    table.bulk_load([(i, i, i + 10) for i in range(rows)])
    return table


class TestSizes:
    def test_empty_table_occupies_a_block(self):
        assert make_table().blocks == 1

    def test_cardinality(self):
        assert make_table(100).cardinality == 100

    def test_avg_row_size_from_schema(self):
        assert make_table().avg_row_size == 24

    def test_blocks_grow_with_rows(self):
        small = make_table(10)
        large = make_table(10_000)
        assert large.blocks > small.blocks

    def test_size_bytes(self):
        assert make_table(100).size_bytes == 100 * 24

    def test_rows_per_block_positive(self):
        assert make_table().rows_per_block() >= 1


class TestMutation:
    def test_append_checks_arity(self):
        with pytest.raises(DatabaseError):
            make_table().append((1, 2))

    def test_append_clears_clustered_order(self):
        table = Table("T", SCHEMA)
        table.bulk_load([(1, 1, 2)], order=("K",))
        assert table.clustered_order == ("K",)
        table.append((2, 3, 4))
        assert table.clustered_order == ()

    def test_bulk_load_returns_count(self):
        table = Table("T", SCHEMA)
        assert table.bulk_load([(1, 1, 2), (2, 2, 3)]) == 2

    def test_bulk_load_records_order(self):
        table = Table("T", SCHEMA)
        table.bulk_load([(1, 1, 2)], order=("K", "T1"))
        assert table.clustered_order == ("K", "T1")

    def test_bulk_load_checks_arity(self):
        table = Table("T", SCHEMA)
        with pytest.raises(DatabaseError):
            table.bulk_load([(1,)])

    def test_truncate(self):
        table = make_table(5)
        table.truncate()
        assert table.cardinality == 0


class TestScan:
    def test_scan_yields_rows(self):
        table = make_table(3)
        assert list(table.scan()) == [(0, 0, 10), (1, 1, 11), (2, 2, 12)]

    def test_scan_charges_meter(self):
        table = make_table(1000)
        meter = CostMeter()
        list(table.scan(meter))
        assert meter.io == table.blocks
        assert meter.cpu == 1000

    def test_column_values(self):
        table = make_table(3)
        assert table.column_values("T1") == [0, 1, 2]
