"""Unit tests for height- and width-balanced histograms."""

import pytest

from repro.errors import StatisticsError
from repro.stats.histogram import (
    Histogram,
    build_height_balanced,
    build_width_balanced,
)


class TestConstruction:
    def test_bounds_counts_mismatch_rejected(self):
        with pytest.raises(StatisticsError):
            Histogram((0.0, 1.0, 2.0), (5,))

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            Histogram((0.0,), ())

    def test_decreasing_bounds_rejected(self):
        with pytest.raises(StatisticsError):
            Histogram((2.0, 1.0), (5,))

    def test_empty_values_rejected(self):
        with pytest.raises(StatisticsError):
            build_height_balanced([])


class TestAccessors:
    def make(self) -> Histogram:
        return Histogram((0.0, 10.0, 20.0, 30.0), (5, 10, 5))

    def test_paper_accessor_names(self):
        histogram = self.make()
        assert histogram.b1(1) == 10.0  # bucket start
        assert histogram.b2(1) == 20.0  # bucket end
        assert histogram.b_val(1) == 10  # values in bucket
        assert histogram.b_no(15.0) == 1  # bucket of a value

    def test_b_no_clamps_low(self):
        assert self.make().b_no(-5.0) == 0

    def test_b_no_clamps_high(self):
        assert self.make().b_no(99.0) == 2

    def test_total(self):
        assert self.make().total == 20


class TestValuesBelow:
    def make(self) -> Histogram:
        return Histogram((0.0, 10.0, 20.0), (10, 10))

    def test_below_minimum(self):
        assert self.make().values_below(-1.0) == 0.0

    def test_above_maximum(self):
        assert self.make().values_below(25.0) == 20.0

    def test_bucket_boundary(self):
        assert self.make().values_below(10.0) == pytest.approx(10.0)

    def test_interpolation_within_bucket(self):
        # Half of the first bucket.
        assert self.make().values_below(5.0) == pytest.approx(5.0)

    def test_selectivity_normalized(self):
        assert self.make().selectivity_below(5.0) == pytest.approx(0.25)


class TestHeightBalanced:
    def test_equal_counts(self):
        histogram = build_height_balanced(list(range(100)), num_buckets=4)
        assert histogram.counts == (25, 25, 25, 25)

    def test_total_preserved(self):
        values = [float(v % 17) for v in range(123)]
        histogram = build_height_balanced(values, num_buckets=7)
        assert histogram.total == 123

    def test_fewer_values_than_buckets(self):
        histogram = build_height_balanced([1.0, 2.0], num_buckets=10)
        assert histogram.total == 2

    def test_skewed_duplicates(self):
        values = [5.0] * 90 + [1.0] * 10
        histogram = build_height_balanced(values, num_buckets=4)
        assert histogram.total == 100
        # Nearly everything is below 5.000...1, matching the data.
        assert histogram.values_below(5.0001) == pytest.approx(100.0, rel=0.15)

    def test_estimates_track_uniform_data(self):
        values = list(range(1000))
        histogram = build_height_balanced(values, num_buckets=10)
        assert histogram.values_below(250) == pytest.approx(250, rel=0.05)


class TestWidthBalanced:
    def test_equal_widths(self):
        histogram = build_width_balanced(list(range(100)), num_buckets=4)
        widths = [histogram.b2(i) - histogram.b1(i) for i in range(4)]
        assert all(w == pytest.approx(widths[0]) for w in widths)

    def test_total_preserved(self):
        histogram = build_width_balanced([1.0, 2.0, 3.0, 100.0], num_buckets=3)
        assert histogram.total == 4

    def test_constant_column(self):
        histogram = build_width_balanced([7.0] * 5, num_buckets=3)
        assert histogram.total == 5
        assert histogram.num_buckets == 1

    def test_maximum_lands_in_last_bucket(self):
        histogram = build_width_balanced([0.0, 5.0, 10.0], num_buckets=2)
        assert histogram.b_no(10.0) == 1
