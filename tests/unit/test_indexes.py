"""Unit tests for MiniDB's ordered indexes."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.dbms.indexes import Index
from repro.dbms.table import Table
from repro.errors import DatabaseError

SCHEMA = Schema([Attribute("K", AttrType.INT), Attribute("V", AttrType.INT)])


def make_index(rows, clustered=False):
    table = Table("T", SCHEMA)
    table.bulk_load(rows)
    return Index("IX", table, "K", clustered)


class TestConstruction:
    def test_unknown_column_rejected(self):
        table = Table("T", SCHEMA)
        with pytest.raises(DatabaseError):
            Index("IX", table, "Missing")

    def test_len(self):
        assert len(make_index([(1, 0), (2, 0)])) == 2

    def test_height_grows_slowly(self):
        small = make_index([(i, 0) for i in range(10)])
        large = make_index([(i, 0) for i in range(100_000)])
        assert small.height == 1
        assert large.height >= 2


class TestLookup:
    def test_equality(self):
        index = make_index([(3, 30), (1, 10), (3, 31), (2, 20)])
        assert sorted(index.lookup(3)) == [(3, 30), (3, 31)]

    def test_miss(self):
        index = make_index([(1, 10)])
        assert list(index.lookup(99)) == []

    def test_charges_meter(self):
        index = make_index([(i % 5, i) for i in range(100)])
        meter = CostMeter()
        list(index.lookup(2, meter))
        assert meter.io >= 1
        assert meter.cpu == 20

    def test_clustered_charges_less_io(self):
        rows = [(i % 5, i) for i in range(5000)]
        unclustered_meter = CostMeter()
        clustered_meter = CostMeter()
        list(make_index(rows).lookup(2, unclustered_meter))
        list(make_index(rows, clustered=True).lookup(2, clustered_meter))
        assert clustered_meter.io < unclustered_meter.io


class TestRangeScan:
    def make(self) -> Index:
        return make_index([(i, i * 10) for i in range(10)])

    def test_closed_open(self):
        assert [row[0] for row in self.make().range_scan(3, 6)] == [3, 4, 5]

    def test_include_high(self):
        assert [row[0] for row in self.make().range_scan(3, 6, include_high=True)] == [
            3, 4, 5, 6,
        ]

    def test_open_low(self):
        assert [row[0] for row in self.make().range_scan(None, 2)] == [0, 1]

    def test_open_high(self):
        assert [row[0] for row in self.make().range_scan(8, None)] == [8, 9]

    def test_empty_range(self):
        assert list(self.make().range_scan(6, 3)) == []


class TestRebuild:
    def test_rebuild_after_mutation(self):
        table = Table("T", SCHEMA)
        table.bulk_load([(1, 10)])
        index = Index("IX", table, "K")
        table.append((0, 0))
        index.rebuild()
        assert [row[0] for row in index.range_scan(None, None)] == [0, 1]
