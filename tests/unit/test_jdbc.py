"""Unit tests for the JDBC-flavoured connection/cursor layer."""

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import ROUND_TRIP_COST, Connection
from repro.errors import DatabaseError


@pytest.fixture
def connection():
    db = MiniDB()
    db.execute("CREATE TABLE T (K INT, V INT)")
    db.execute("INSERT INTO T VALUES " + ", ".join(f"({i}, {i * 10})" for i in range(25)))
    return Connection(db, prefetch=10)


class TestCursor:
    def test_fetchone_sequence(self, connection):
        cursor = connection.execute("SELECT K FROM T ORDER BY K LIMIT 3")
        assert cursor.fetchone() == (0,)
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchone() is None

    def test_fetchmany(self, connection):
        cursor = connection.execute("SELECT K FROM T ORDER BY K")
        assert cursor.fetchmany(4) == [(0,), (1,), (2,), (3,)]

    def test_fetchall(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        assert len(cursor.fetchall()) == 25

    def test_iteration(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        assert sum(1 for _ in cursor) == 25

    def test_description(self, connection):
        cursor = connection.execute("SELECT K, V FROM T")
        assert cursor.description == [("K", "int"), ("V", "int")]

    def test_no_result_set_raises(self, connection):
        cursor = connection.cursor()
        with pytest.raises(DatabaseError):
            cursor.fetchone()

    def test_ddl_reports_rowcount(self, connection):
        cursor = connection.execute("INSERT INTO T VALUES (99, 990)")
        assert cursor.rowcount == 1

    def test_close(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        cursor.close()
        with pytest.raises(DatabaseError):
            cursor.fetchone()


class TestPrefetch:
    def test_round_trips_charged_per_batch(self, connection):
        meter = connection.db.meter
        meter.reset()
        connection.cursor(prefetch=5).execute("SELECT K FROM T").fetchall()
        five_cpu = meter.cpu
        meter.reset()
        connection.cursor(prefetch=25).execute("SELECT K FROM T").fetchall()
        twentyfive_cpu = meter.cpu
        # Smaller prefetch means more round trips, so more transfer CPU.
        assert five_cpu - twentyfive_cpu >= 3 * ROUND_TRIP_COST

    def test_prefetch_floor_is_one(self, connection):
        cursor = connection.cursor(prefetch=0)
        assert cursor.prefetch == 1


class TestConnectionHelpers:
    def test_bulk_load_and_drop(self, connection):
        from repro.algebra.schema import Attribute, Schema

        schema = Schema([Attribute("X")])
        loaded = connection.bulk_load("TMP", schema, [(1,), (2,)])
        assert loaded == 2
        assert connection.db.table("TMP").cardinality == 2
        connection.drop_temp("TMP")
        assert not connection.db.has_table("TMP")
