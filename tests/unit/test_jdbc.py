"""Unit tests for the JDBC-flavoured connection/cursor layer."""

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import ROUND_TRIP_COST, Connection
from repro.errors import DatabaseError, TransientError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultPolicy


@pytest.fixture
def connection():
    db = MiniDB()
    db.execute("CREATE TABLE T (K INT, V INT)")
    db.execute("INSERT INTO T VALUES " + ", ".join(f"({i}, {i * 10})" for i in range(25)))
    return Connection(db, prefetch=10)


class TestCursor:
    def test_fetchone_sequence(self, connection):
        cursor = connection.execute("SELECT K FROM T ORDER BY K LIMIT 3")
        assert cursor.fetchone() == (0,)
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchone() is None

    def test_fetchmany(self, connection):
        cursor = connection.execute("SELECT K FROM T ORDER BY K")
        assert cursor.fetchmany(4) == [(0,), (1,), (2,), (3,)]

    def test_fetchall(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        assert len(cursor.fetchall()) == 25

    def test_iteration(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        assert sum(1 for _ in cursor) == 25

    def test_description(self, connection):
        cursor = connection.execute("SELECT K, V FROM T")
        assert cursor.description == [("K", "int"), ("V", "int")]

    def test_no_result_set_raises(self, connection):
        cursor = connection.cursor()
        with pytest.raises(DatabaseError):
            cursor.fetchone()

    def test_ddl_reports_rowcount(self, connection):
        cursor = connection.execute("INSERT INTO T VALUES (99, 990)")
        assert cursor.rowcount == 1

    def test_close(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        cursor.close()
        with pytest.raises(DatabaseError):
            cursor.fetchone()

    def test_close_is_idempotent_and_terminal(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        cursor.fetchone()
        cursor.close()
        cursor.close()  # idempotent
        assert cursor.closed
        with pytest.raises(DatabaseError):
            cursor.fetchmany(5)
        with pytest.raises(DatabaseError):
            cursor.execute("SELECT K FROM T")  # closed cursors stay closed

    def test_fetch_after_connection_close_raises(self, connection):
        cursor = connection.execute("SELECT K FROM T")
        cursor.fetchone()
        connection.close()
        with pytest.raises(DatabaseError):
            cursor.fetchone()
        with pytest.raises(DatabaseError):
            cursor.fetchmany(5)


class TestRoundTripAccounting:
    """Exactly ceil(rows / prefetch) round trips, 1 for an empty result."""

    def count_round_trips(self, db, sql, prefetch):
        metrics = MetricsRegistry()
        connection = Connection(db, prefetch=prefetch, metrics=metrics)
        connection.cursor().execute(sql).fetchall()
        return metrics.value("dbms_round_trips")

    def test_exact_multiple_of_prefetch(self, connection):
        # 25 rows at prefetch 5: exactly 5 round trips, no trailing empty one.
        assert (
            self.count_round_trips(connection.db, "SELECT K FROM T", prefetch=5) == 5
        )

    def test_non_multiple_of_prefetch(self, connection):
        assert (
            self.count_round_trips(connection.db, "SELECT K FROM T", prefetch=10) == 3
        )

    def test_empty_result_pays_one_round_trip(self, connection):
        assert (
            self.count_round_trips(
                connection.db, "SELECT K FROM T WHERE K < 0", prefetch=10
            )
            == 1
        )

    def test_single_batch_result(self, connection):
        assert (
            self.count_round_trips(connection.db, "SELECT K FROM T", prefetch=100) == 1
        )

    def test_iteration_and_fetchmany_agree(self, connection):
        metrics = MetricsRegistry()
        fresh = Connection(connection.db, prefetch=5, metrics=metrics)
        list(fresh.cursor().execute("SELECT K FROM T"))
        by_iteration = metrics.value("dbms_round_trips")
        rows = []
        cursor = fresh.cursor().execute("SELECT K FROM T")
        while True:
            batch = cursor.fetchmany(7)
            if not batch:
                break
            rows.extend(batch)
        assert metrics.value("dbms_round_trips") - by_iteration == by_iteration
        assert len(rows) == 25


class TestFaultInjection:
    def test_transient_fault_on_round_trip(self, connection):
        injector = FaultInjector(FaultPolicy(round_trip_p=1.0), seed=0)
        chaotic = Connection(connection.db, prefetch=5, injector=injector)
        cursor = chaotic.cursor().execute("SELECT K FROM T")
        with pytest.raises(TransientError):
            cursor.fetchone()
        assert injector.faults_injected == 1

    def test_fetchmany_reserves_rows_after_mid_call_fault(self, connection):
        # A fetchmany that faults after collecting rows from the buffer
        # must re-serve those rows on the retried call, in order.
        injector = FaultInjector(FaultPolicy(), seed=0)
        chaotic = Connection(connection.db, prefetch=5, injector=injector)
        cursor = chaotic.cursor().execute("SELECT K FROM T ORDER BY K")
        assert cursor.fetchone() == (0,)  # buffer now holds rows 1..4
        injector.policy = FaultPolicy(round_trip_p=1.0)
        with pytest.raises(TransientError):
            cursor.fetchmany(8)  # takes rows 1..4, then the refill faults
        injector.policy = FaultPolicy()
        rows = cursor.fetchmany(8)
        assert [row[0] for row in rows] == [1, 2, 3, 4, 5, 6, 7, 8]
        assert [row[0] for row in cursor.fetchall()] == list(range(9, 25))

    def test_execute_fault(self, connection):
        injector = FaultInjector(FaultPolicy(execute_p=1.0), seed=0)
        chaotic = Connection(connection.db, injector=injector)
        with pytest.raises(TransientError):
            chaotic.execute("SELECT K FROM T")

    def test_load_chunk_fault(self, connection):
        from repro.algebra.schema import Attribute, Schema

        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=0)
        chaotic = Connection(connection.db, injector=injector)
        with pytest.raises(TransientError):
            chaotic.executemany("TMP_FAULTY", Schema([Attribute("X")]), [(1,)])
        # The faulted chunk loaded nothing and created nothing.
        assert not connection.db.has_table("TMP_FAULTY")


class TestPrefetch:
    def test_round_trips_charged_per_batch(self, connection):
        meter = connection.db.meter
        meter.reset()
        connection.cursor(prefetch=5).execute("SELECT K FROM T").fetchall()
        five_cpu = meter.cpu
        meter.reset()
        connection.cursor(prefetch=25).execute("SELECT K FROM T").fetchall()
        twentyfive_cpu = meter.cpu
        # Smaller prefetch means more round trips, so more transfer CPU.
        assert five_cpu - twentyfive_cpu >= 3 * ROUND_TRIP_COST

    def test_prefetch_floor_is_one(self, connection):
        cursor = connection.cursor(prefetch=0)
        assert cursor.prefetch == 1


class TestConnectionHelpers:
    def test_bulk_load_and_drop(self, connection):
        from repro.algebra.schema import Attribute, Schema

        schema = Schema([Attribute("X")])
        loaded = connection.bulk_load("TMP", schema, [(1,), (2,)])
        assert loaded == 2
        assert connection.db.table("TMP").cardinality == 2
        connection.drop_temp("TMP")
        assert not connection.db.has_table("TMP")
