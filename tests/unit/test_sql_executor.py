"""Unit tests for MiniDB's physical row-stream primitives."""

import pytest

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.costmodel import CostMeter
from repro.dbms.sql.executor import (
    ResultSet,
    concat_rows,
    distinct_rows,
    filter_rows,
    hash_group,
    limit_rows,
    merge_join,
    nested_loop_join,
    project_rows,
    sort_rows,
)
from repro.errors import ExecutionError


@pytest.fixture
def meter():
    return CostMeter()


class TestResultSet:
    def test_fetchall(self):
        schema = Schema([Attribute("X")])
        assert ResultSet(schema, [(1,), (2,)]).fetchall() == [(1,), (2,)]

    def test_generator_consumed_once(self, meter):
        schema = Schema([Attribute("X")])
        result = ResultSet(schema, iter([(1,)]))
        assert list(result) == [(1,)]
        with pytest.raises(ExecutionError):
            list(result)

    def test_column_names(self):
        schema = Schema([Attribute("A"), Attribute("B")])
        assert ResultSet(schema, []).column_names == ("A", "B")


class TestScalarPrimitives:
    def test_filter(self, meter):
        rows = [(1,), (2,), (3,)]
        assert list(filter_rows(rows, lambda r: r[0] > 1, meter)) == [(2,), (3,)]
        assert meter.cpu == 3

    def test_project(self, meter):
        rows = [(1, 2)]
        out = list(project_rows(rows, [lambda r: r[1], lambda r: r[0] * 10], meter))
        assert out == [(2, 10)]

    def test_limit(self):
        assert list(limit_rows(iter([(1,), (2,), (3,)]), 2)) == [(1,), (2,)]

    def test_distinct_preserves_first_occurrence_order(self, meter):
        rows = [(2,), (1,), (2,), (3,), (1,)]
        assert list(distinct_rows(rows, meter)) == [(2,), (1,), (3,)]

    def test_concat(self):
        assert list(concat_rows([[(1,)], [(2,)]])) == [(1,), (2,)]


class TestSort:
    def test_sorts(self, meter):
        rows = [(3,), (1,), (2,)]
        assert sort_rows(rows, lambda r: r[0], meter) == [(1,), (2,), (3,)]

    def test_reverse(self, meter):
        rows = [(1,), (3,), (2,)]
        assert sort_rows(rows, lambda r: r[0], meter, reverse=True) == [(3,), (2,), (1,)]

    def test_charges_nlogn_cpu(self, meter):
        sort_rows([(i,) for i in range(1024)], lambda r: r[0], meter)
        assert meter.cpu == 1024 * 10

    def test_stable(self, meter):
        rows = [(1, "a"), (0, "b"), (1, "c")]
        out = sort_rows(rows, lambda r: r[0], meter)
        assert out == [(0, "b"), (1, "a"), (1, "c")]


class TestJoins:
    def test_nested_loop(self, meter):
        left = [(1,), (2,)]
        right = [(2, "a"), (1, "b")]
        out = list(
            nested_loop_join(left, right, lambda row: row[0] == row[1], meter)
        )
        assert sorted(out) == [(1, 1, "b"), (2, 2, "a")]
        assert meter.cpu == 4  # every pair considered

    def test_nested_loop_cross_product(self, meter):
        out = list(nested_loop_join([(1,), (2,)], [(3,)], None, meter))
        assert out == [(1, 3), (2, 3)]

    def test_merge_join_basic(self, meter):
        left = [(1, "l1"), (2, "l2"), (4, "l4")]
        right = [(2, "r2"), (3, "r3"), (4, "r4")]
        out = list(
            merge_join(left, right, lambda r: r[0], lambda r: r[0], None, meter)
        )
        assert out == [(2, "l2", 2, "r2"), (4, "l4", 4, "r4")]

    def test_merge_join_duplicate_keys_cross(self, meter):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x"), (1, "y")]
        out = list(
            merge_join(left, right, lambda r: r[0], lambda r: r[0], None, meter)
        )
        assert len(out) == 4

    def test_merge_join_residual(self, meter):
        left = [(1, 5)]
        right = [(1, 3), (1, 9)]
        out = list(
            merge_join(
                left, right,
                lambda r: r[0], lambda r: r[0],
                lambda row: row[1] < row[3],
                meter,
            )
        )
        assert out == [(1, 5, 1, 9)]

    def test_merge_join_empty_side(self, meter):
        assert list(merge_join([], [(1,)], lambda r: r[0], lambda r: r[0], None, meter)) == []


class TestHashGroup:
    def test_count_star(self, meter):
        rows = [(1,), (1,), (2,)]
        out = sorted(hash_group(rows, [lambda r: r[0]], [("COUNT", None, False)], meter))
        assert out == [(1, 2), (2, 1)]

    def test_sum_min_max_avg(self, meter):
        rows = [(1, 10), (1, 30)]
        specs = [
            ("SUM", lambda r: r[1], False),
            ("MIN", lambda r: r[1], False),
            ("MAX", lambda r: r[1], False),
            ("AVG", lambda r: r[1], False),
        ]
        out = list(hash_group(rows, [lambda r: r[0]], specs, meter))
        assert out == [(1, 40.0, 10, 30, 20.0)]

    def test_scalar_aggregate_over_empty_input(self, meter):
        out = list(hash_group([], [], [("COUNT", None, False)], meter))
        assert out == [(0,)]

    def test_grouped_aggregate_over_empty_input(self, meter):
        out = list(hash_group([], [lambda r: r[0]], [("COUNT", None, False)], meter))
        assert out == []

    def test_distinct_aggregate(self, meter):
        rows = [(1, 5), (1, 5), (1, 7)]
        out = list(
            hash_group(rows, [lambda r: r[0]], [("COUNT", lambda r: r[1], True)], meter)
        )
        assert out == [(1, 2)]

    def test_nulls_ignored(self, meter):
        rows = [(1, None), (1, 4)]
        out = list(
            hash_group(rows, [lambda r: r[0]], [("SUM", lambda r: r[1], False)], meter)
        )
        assert out == [(1, 4.0)]
