"""Unit tests for scalar expressions and predicates."""

import pytest

from repro.algebra.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Not,
    Or,
    attributes_of,
    col,
    conjoin,
    conjuncts,
    lit,
)
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.errors import ExpressionError

SCHEMA = Schema(
    [
        Attribute("A", AttrType.INT),
        Attribute("B", AttrType.FLOAT),
        Attribute("Name", AttrType.STR),
    ]
)
ROW = (10, 2.5, "tango")


def evaluate(expression, row=ROW, schema=SCHEMA):
    return expression.compile(schema)(row)


class TestLeaves:
    def test_column_lookup(self):
        assert evaluate(col("A")) == 10

    def test_column_case_insensitive(self):
        assert evaluate(col("name")) == "tango"

    def test_literal(self):
        assert evaluate(lit(42)) == 42

    def test_literal_sql_escaping(self):
        assert lit("O'Brien").to_sql() == "'O''Brien'"

    def test_column_attributes(self):
        assert col("Name").attributes() == frozenset({"name"})

    def test_result_types(self):
        assert col("A").result_type(SCHEMA) is AttrType.INT
        assert lit(1.5).result_type(SCHEMA) is AttrType.FLOAT
        assert lit("x").result_type(SCHEMA) is AttrType.STR


class TestArithmetic:
    def test_add(self):
        assert evaluate(BinOp("+", col("A"), lit(5))) == 15

    def test_mul_with_float(self):
        assert evaluate(BinOp("*", col("A"), col("B"))) == 25.0

    def test_division_type_is_float(self):
        assert BinOp("/", col("A"), lit(2)).result_type(SCHEMA) is AttrType.FLOAT

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinOp("%", col("A"), lit(2))

    def test_sql_rendering(self):
        assert BinOp("+", col("A"), lit(1)).to_sql() == "(A + 1)"


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("<>", True), ("<", True), ("<=", True), (">", False), (">=", False)],
    )
    def test_operators(self, op, expected):
        assert evaluate(Comparison(op, col("A"), lit(11))) is expected

    def test_flipped(self):
        flipped = Comparison("<", col("A"), lit(5)).flipped()
        assert flipped.op == ">"
        assert flipped.left == lit(5)

    def test_flip_preserves_semantics(self):
        original = Comparison("<=", col("A"), lit(10))
        assert evaluate(original) == evaluate(original.flipped())

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("A"), lit(1))


class TestBoolean:
    def test_and_true(self):
        expr = Comparison(">", col("A"), lit(5)) & Comparison("<", col("A"), lit(20))
        assert evaluate(expr) is True

    def test_and_flattens(self):
        nested = And([And([lit(1), lit(1)]), lit(1)])
        assert len(nested.terms) == 3

    def test_or_short_circuit_result(self):
        expr = Comparison("=", col("A"), lit(99)) | Comparison("=", col("A"), lit(10))
        assert evaluate(expr) is True

    def test_not(self):
        assert evaluate(~Comparison("=", col("A"), lit(10))) is False

    def test_empty_and_rejected(self):
        with pytest.raises(ExpressionError):
            And([])

    def test_sql_rendering_and(self):
        expr = Comparison("<", col("A"), lit(1)) & Comparison(">", col("B"), lit(2))
        assert expr.to_sql() == "A < 1 AND B > 2"


class TestFunctions:
    def test_greatest(self):
        assert evaluate(FuncCall("GREATEST", [col("A"), lit(3)])) == 10

    def test_least(self):
        assert evaluate(FuncCall("LEAST", [col("A"), lit(3)])) == 3

    def test_case_insensitive_name(self):
        assert FuncCall("greatest", [lit(1), lit(2)]).name == "GREATEST"

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            FuncCall("FROBNICATE", [lit(1)])

    def test_sql_rendering(self):
        assert FuncCall("LEAST", [col("A"), lit(9)]).to_sql() == "LEAST(A, 9)"


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert Comparison("<", col("A"), lit(1)) == Comparison("<", col("A"), lit(1))

    def test_column_case_insensitive_equality(self):
        assert col("posid") == col("PosID")

    def test_hash_consistency(self):
        a = Comparison("<", col("A"), lit(1))
        b = Comparison("<", col("A"), lit(1))
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Comparison("<", col("A"), lit(1)) != Comparison("<=", col("A"), lit(1))


class TestHelpers:
    def test_conjuncts_of_and(self):
        expr = And([lit(1), lit(2), lit(3)])
        assert len(list(conjuncts(expr))) == 3

    def test_conjuncts_of_atom(self):
        assert list(conjuncts(lit(1))) == [lit(1)]

    def test_conjuncts_of_none(self):
        assert list(conjuncts(None)) == []

    def test_conjoin_roundtrip(self):
        terms = [Comparison("<", col("A"), lit(1)), Comparison(">", col("B"), lit(2))]
        assert list(conjuncts(conjoin(terms))) == terms

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_conjoin_single(self):
        assert conjoin([lit(1)]) == lit(1)

    def test_attributes_of(self):
        expr = Comparison("<", col("A"), col("B"))
        assert attributes_of(expr, None, col("Name")) == {"a", "b", "name"}
