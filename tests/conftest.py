"""Shared fixtures.

``figure3_db`` is the 3-tuple POSITION relation of the paper's Figure 3 —
the worked example every layer is checked against.  ``uis_db`` is a small
scaled UIS instance shared (read-only) across integration tests.

Setting ``TANGO_CHAOS_P`` (and optionally ``TANGO_CHAOS_SEED``) runs the
whole suite under seeded fault injection: every :class:`Tango` built
without an explicit injector gets one with that per-call transient
probability on round trips and load chunks.  The CI chaos job uses this to
prove the resilience layer keeps every test green under p=0.2.

Setting ``TANGO_COLUMNAR`` (``1``/``python``/``numpy``) runs the whole
suite under columnar execution: every :class:`Tango` built with the
default row path gets that backend instead.  The CI columnar job uses
this to prove the vectorized operators are result-identical everywhere.
"""

from __future__ import annotations

import os

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.workloads.uis import load_uis


@pytest.fixture(autouse=True)
def _chaos_profile(monkeypatch):
    """Env-driven chaos: default a FaultInjector into every Tango."""
    p = float(os.environ.get("TANGO_CHAOS_P", "0") or 0)
    if p <= 0:
        yield
        return
    seed = int(os.environ.get("TANGO_CHAOS_SEED", "0") or 0)
    from dataclasses import replace

    from repro.core.tango import Tango, TangoConfig
    from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy

    # Chaos-grade retries: enough attempts that p=0.2 cannot plausibly
    # exhaust a call site (0.2^10), and zero backoff sleep so the suite's
    # wall time and timing-sensitive assertions stay usable.
    chaos_retry = RetryPolicy(
        max_attempts=10,
        budget=100_000,
        base_delay_seconds=0.0,
        max_delay_seconds=0.0,
    )
    original_init = Tango.__init__

    def chaotic_init(self, db, config=None, *, fault_injector=None, **kwargs):
        if fault_injector is None:
            fault_injector = FaultInjector(
                FaultPolicy(round_trip_p=p, load_chunk_p=p), seed=seed
            )
            if isinstance(config, TangoConfig):
                config = replace(config, retry=chaos_retry)
            elif config is None:
                config = TangoConfig(retry=chaos_retry)
        original_init(self, db, config, fault_injector=fault_injector, **kwargs)

    monkeypatch.setattr(Tango, "__init__", chaotic_init)
    yield


@pytest.fixture(autouse=True)
def _columnar_profile(monkeypatch, _chaos_profile):
    """Env-driven columnar execution: default a backend into every Tango.

    Depends on ``_chaos_profile`` so its ``Tango.__init__`` patch stacks on
    top of (and composes with) the chaos patch when both are active.
    Explicit ``columnar`` settings — including tests pinning ``"off"`` via
    a non-default config — are left alone only when non-default, mirroring
    the chaos profile's explicit-injector escape hatch.
    """
    backend = os.environ.get("TANGO_COLUMNAR", "").strip().lower()
    if backend in ("", "0", "off", "false"):
        yield
        return
    if backend == "1":
        backend = "python"
    from dataclasses import replace

    from repro.core.tango import Tango, TangoConfig

    patched_init = Tango.__init__

    def columnar_init(self, db, config=None, **kwargs):
        if config is None:
            config = TangoConfig(columnar=backend)
        elif isinstance(config, TangoConfig) and config.columnar == "off":
            config = replace(config, columnar=backend)
        patched_init(self, db, config, **kwargs)

    monkeypatch.setattr(Tango, "__init__", columnar_init)
    yield


FIGURE3_ROWS = [
    (1, "Tom", 2, 20),
    (1, "Jane", 5, 25),
    (2, "Tom", 5, 10),
]

#: Figure 3(c): the temporal aggregation result.
FIGURE3_AGGREGATION = [
    (1, 2, 5, 1),
    (1, 5, 20, 2),
    (1, 20, 25, 1),
    (2, 5, 10, 1),
]

#: Figure 3(b): the full query result (count of employees per position).
FIGURE3_QUERY_RESULT = [
    (1, "Tom", 2, 5, 1),
    (1, "Tom", 5, 20, 2),
    (1, "Jane", 5, 20, 2),
    (1, "Jane", 20, 25, 1),
    (2, "Tom", 5, 10, 1),
]


def make_figure3_db() -> MiniDB:
    db = MiniDB()
    db.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), T1 DATE, T2 DATE)"
    )
    values = ", ".join(
        f"({pos}, '{name}', {t1}, {t2})" for pos, name, t1, t2 in FIGURE3_ROWS
    )
    db.execute(f"INSERT INTO POSITION VALUES {values}")
    db.analyze("POSITION")
    return db


@pytest.fixture
def figure3_db() -> MiniDB:
    return make_figure3_db()


@pytest.fixture
def figure3_connection(figure3_db) -> Connection:
    return Connection(figure3_db)


@pytest.fixture(scope="session")
def uis_db() -> MiniDB:
    """A small UIS instance (scale 0.01).  Treat as read-only."""
    db = MiniDB()
    load_uis(db, scale=0.01)
    return db


@pytest.fixture(scope="session")
def uis_tango(uis_db):
    from repro.core.tango import Tango

    return Tango(uis_db)
