"""Shared fixtures.

``figure3_db`` is the 3-tuple POSITION relation of the paper's Figure 3 —
the worked example every layer is checked against.  ``uis_db`` is a small
scaled UIS instance shared (read-only) across integration tests.
"""

from __future__ import annotations

import pytest

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import Connection
from repro.workloads.uis import load_uis


FIGURE3_ROWS = [
    (1, "Tom", 2, 20),
    (1, "Jane", 5, 25),
    (2, "Tom", 5, 10),
]

#: Figure 3(c): the temporal aggregation result.
FIGURE3_AGGREGATION = [
    (1, 2, 5, 1),
    (1, 5, 20, 2),
    (1, 20, 25, 1),
    (2, 5, 10, 1),
]

#: Figure 3(b): the full query result (count of employees per position).
FIGURE3_QUERY_RESULT = [
    (1, "Tom", 2, 5, 1),
    (1, "Tom", 5, 20, 2),
    (1, "Jane", 5, 20, 2),
    (1, "Jane", 20, 25, 1),
    (2, "Tom", 5, 10, 1),
]


def make_figure3_db() -> MiniDB:
    db = MiniDB()
    db.execute(
        "CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(16), T1 DATE, T2 DATE)"
    )
    values = ", ".join(
        f"({pos}, '{name}', {t1}, {t2})" for pos, name, t1, t2 in FIGURE3_ROWS
    )
    db.execute(f"INSERT INTO POSITION VALUES {values}")
    db.analyze("POSITION")
    return db


@pytest.fixture
def figure3_db() -> MiniDB:
    return make_figure3_db()


@pytest.fixture
def figure3_connection(figure3_db) -> Connection:
    return Connection(figure3_db)


@pytest.fixture(scope="session")
def uis_db() -> MiniDB:
    """A small UIS instance (scale 0.01).  Treat as read-only."""
    db = MiniDB()
    load_uis(db, scale=0.01)
    return db


@pytest.fixture(scope="session")
def uis_tango(uis_db):
    from repro.core.tango import Tango

    return Tango(uis_db)
