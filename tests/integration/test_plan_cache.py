"""Integration: the statistics-epoch plan cache across the benchmark queries.

Correctness contract (the ISSUE's satellite 3): an identical re-run is a
cache hit that skips the optimizer; a statistics refresh (new epoch) or a
different ``TangoConfig`` forces a fresh optimization; cached plans return
the same answers as fresh ones.
"""

import pytest
from dataclasses import replace

from repro.core.tango import Tango, TangoConfig
from repro.workloads import queries


@pytest.fixture
def tango(uis_db):
    return Tango(uis_db)


def benchmark_queries(db):
    """Queries 1-4: Query 1 as SQL text, 2-4 as initial algebra trees."""
    return [
        queries.query1_sql(),
        queries.query2_initial_plan(db, "1996-01-01"),
        queries.query3_initial_plan(db, "1995-01-01"),
        queries.query4_initial_plan(db),
    ]


class TestCacheHits:
    def test_identical_rerun_skips_optimizer(self, tango):
        for query in benchmark_queries(tango.db):
            runs_before = tango.metrics.value("optimizer_runs")
            first = tango.optimize(query)
            assert tango.metrics.value("optimizer_runs") == runs_before + 1
            second = tango.optimize(query)
            # Same object, no new optimizer invocation.
            assert second is first
            assert tango.metrics.value("optimizer_runs") == runs_before + 1
        assert tango.metrics.value("plan_cache_hits") == 4
        assert tango.metrics.value("plan_cache_misses") == 4

    def test_cached_query_answers_match(self, tango):
        first = tango.query(queries.query1_sql())
        second = tango.query(queries.query1_sql())
        assert second.rows == first.rows
        assert tango.metrics.value("plan_cache_hits") == 1

    def test_whitespace_variant_hits(self, tango):
        tango.optimize(queries.query1_sql())
        variant = "  " + queries.query1_sql().replace(" FROM ", "\n  from ")
        tango.optimize(variant)
        assert tango.metrics.value("plan_cache_hits") == 1
        assert tango.metrics.value("optimizer_runs") == 1


class TestCacheInvalidation:
    def test_statistics_epoch_bump_forces_reoptimize(self, tango):
        tango.optimize(queries.query1_sql())
        epoch = tango.collector.epoch
        tango.refresh_statistics(["POSITION"])
        assert tango.collector.epoch == epoch + 1
        tango.optimize(queries.query1_sql())
        assert tango.metrics.value("optimizer_runs") == 2
        assert tango.metrics.value("plan_cache_hits") == 0

    def test_config_change_forces_reoptimize(self, tango):
        tango.optimize(queries.query1_sql())
        tango.config = replace(tango.config, use_histograms=False)
        tango.optimize(queries.query1_sql())
        assert tango.metrics.value("optimizer_runs") == 2
        assert tango.metrics.value("plan_cache_hits") == 0
        # Back to the original config: the first entry still matches.
        tango.config = replace(tango.config, use_histograms=True)
        tango.optimize(queries.query1_sql())
        assert tango.metrics.value("optimizer_runs") == 2
        assert tango.metrics.value("plan_cache_hits") == 1

    def test_cache_disabled_by_config(self, uis_db):
        tango = Tango(uis_db, config=TangoConfig(plan_cache_size=0))
        tango.optimize(queries.query1_sql())
        tango.optimize(queries.query1_sql())
        assert tango.metrics.value("optimizer_runs") == 2
        assert tango.metrics.value("plan_cache_hits") == 0


class TestUpdateInvalidation:
    """apply_updates moves both epochs the cache keys on (ISSUE 10
    satellite 4): the statistics epoch (PR 2 cache) and the feedback
    epoch (PR 8 learned cardinalities)."""

    @pytest.fixture
    def learning_tango(self, figure3_db):
        return Tango(figure3_db, TangoConfig(learn_cardinalities=True))

    def test_apply_updates_invalidates_cached_plans(self, learning_tango):
        tango = learning_tango
        first = tango.optimize(queries.query1_sql())
        assert tango.optimize(queries.query1_sql()) is first
        assert tango.metrics.value("plan_cache_hits") == 1
        stats_epoch = tango.collector.epoch

        doomed = tango.db.table("POSITION").rows[0]
        tango.apply_updates("POSITION", deletes=[doomed])

        assert tango.collector.epoch > stats_epoch
        tango.optimize(queries.query1_sql())
        assert tango.metrics.value("optimizer_runs") == 2
        assert tango.metrics.value("plan_cache_hits") == 1

    def test_apply_updates_moves_the_feedback_epoch(self, learning_tango):
        tango = learning_tango
        # Execute once so the feedback store learns cardinalities that
        # read POSITION.
        tango.query(queries.query1_sql())
        assert len(tango.feedback_store) > 0
        feedback_epoch = tango.feedback_store.epoch

        doomed = tango.db.table("POSITION").rows[0]
        result = tango.apply_updates("POSITION", deletes=[doomed])

        assert result["feedback_invalidated"] > 0
        assert tango.feedback_store.epoch > feedback_epoch
        # Every learned entry read POSITION; all must be gone.
        assert len(tango.feedback_store) == 0

    def test_view_refresh_moves_the_statistics_epoch(self, learning_tango):
        tango = learning_tango
        tango.create_view("VQ1", queries.query1_sql())
        tango.apply_updates(
            "POSITION", deletes=[tango.db.table("POSITION").rows[0]]
        )
        epoch = tango.collector.epoch
        tango.refresh_view("VQ1")
        # The refresh rewrote the view table: plans cached over it are
        # stale, so the epoch must move again.
        assert tango.collector.epoch > epoch
