"""Integration: the optimizer's choices match the paper's narratives.

Section 5.2 reports, per query, which plan the optimizer returned.  These
tests check the same *decisions* (which operations land in the middleware)
rather than exact plan trees, since our memo explores a slightly different
space.
"""

import pytest

from repro.algebra.operators import (
    Join,
    Location,
    TemporalAggregate,
    TemporalJoin,
)
from repro.core.tango import Tango, TangoConfig
from repro.optimizer.physical import validate_plan
from repro.workloads import queries


@pytest.fixture(scope="module")
def tango(uis_db):
    return Tango(uis_db)


def located(plan, node_type):
    return [node.location for node in plan.walk() if isinstance(node, node_type)]


class TestQuery1Choice:
    def test_taggr_moved_to_middleware(self, tango):
        """Figure 8: "for all queries, the optimizer selects the first plan"
        — temporal aggregation runs in the middleware."""
        result = tango.optimize(queries.query1_initial_plan(tango.db))
        assert located(result.plan, TemporalAggregate) == [Location.MIDDLEWARE]

    def test_choice_stable_across_variants(self, tango):
        for table in ("POSITION_8000", "POSITION_46000", "POSITION_74000"):
            result = tango.optimize(queries.query1_initial_plan(tango.db, table))
            assert located(result.plan, TemporalAggregate) == [Location.MIDDLEWARE]

    def test_chosen_cost_at_most_best_enumerated(self, tango):
        result = tango.optimize(queries.query1_initial_plan(tango.db))
        enumerated = [
            tango.plan_cost(spec.plan)
            for spec in queries.query1_plans(tango.db)
        ]
        assert result.cost <= min(enumerated) + 1e-6


class TestQuery2Choice:
    def test_taggr_in_middleware_for_wide_window(self, tango):
        """Figure 10(b): for relaxed predicates the winning plans keep the
        aggregation (and join) in the middleware."""
        result = tango.optimize(queries.query2_initial_plan(tango.db, "1999-01-01"))
        assert Location.MIDDLEWARE in located(result.plan, TemporalAggregate)

    def test_histogram_ablation_changes_estimates(self, uis_db):
        """Section 5.2: without histograms the optimizer mis-estimates the
        temporal selection for mid-range windows."""
        with_hist = Tango(uis_db, config=TangoConfig(use_histograms=True))
        without = Tango(uis_db, config=TangoConfig(use_histograms=False))
        plan = queries.query2_initial_plan(uis_db, "1992-01-01")
        scan_like = plan  # estimate the initial plan's output
        est_with = with_hist.estimator.estimate(scan_like).cardinality
        est_without = without.estimator.estimate(scan_like).cardinality
        assert est_with != est_without


class TestQuery3Choice:
    def test_dbms_for_selective_bounds(self, tango):
        """Figure 11(a): Plan 1 (all DBMS) wins while the start-bound is
        selective."""
        result = tango.optimize(
            queries.query3_initial_plan(tango.db, "1988-01-01")
        )
        validate_plan(result.plan)
        assert located(result.plan, TemporalJoin) == [Location.DBMS]

    def test_middleware_when_result_grows(self, uis_db):
        """Figure 11(a): Plan 2 (temporal join in the middleware) wins once
        most tuples qualify (~65 % start at 1995+).

        The flip depends on the machine's transfer-vs-DBMS cost ratio, so
        this regime is checked with *calibrated* factors (the paper also
        calibrates before running, Section 5.1).  The exact flip bound
        wobbles with calibration noise at this small scale; the claim is
        that *some* late bound lands in the middleware.  Wall-clock
        agreement is verified in the Figure 11(a) benchmark.
        """
        tango = Tango(uis_db)
        tango.calibrate(sizes=(500, 1500), repeats=5)
        placements = []
        for bound in ("1997-01-01", "1998-01-01", "1999-01-01"):
            result = tango.optimize(
                queries.query3_initial_plan(tango.db, bound)
            )
            placements.extend(located(result.plan, TemporalJoin))
        assert Location.MIDDLEWARE in placements


class TestQuery4Choice:
    def test_regular_join_stays_in_dbms(self, tango):
        """Figure 11(b): 'the middleware optimizer suggested to perform the
        join in the DBMS.'"""
        result = tango.optimize(queries.query4_initial_plan(tango.db))
        assert located(result.plan, Join) == [Location.DBMS]


class TestMemoComplexityOrdering:
    def test_query_complexity_ranking_matches_paper(self, tango):
        """The paper's counts (Q1 12/29, Q2 142/452, Q3 104/301, Q4 13/30)
        rank Q2 > Q3 >> Q4 ≈ Q1; our memo must preserve that ordering."""
        q1 = tango.optimize(queries.query1_initial_plan(tango.db))
        q2 = tango.optimize(queries.query2_initial_plan(tango.db, "1996-01-01"))
        q3 = tango.optimize(queries.query3_initial_plan(tango.db, "1995-01-01"))
        q4 = tango.optimize(queries.query4_initial_plan(tango.db))
        # Query 2 is by far the most complex search, as in the paper; our
        # canonicalizing rules keep Q1/Q3/Q4 closer together than Volcano
        # did (recorded in EXPERIMENTS.md).
        assert q2.element_count > q3.element_count
        assert q2.element_count > q4.element_count
        assert q3.element_count > q1.element_count

    def test_all_chosen_plans_valid(self, tango):
        for plan in (
            queries.query1_initial_plan(tango.db),
            queries.query2_initial_plan(tango.db, "1996-01-01"),
            queries.query3_initial_plan(tango.db, "1995-01-01"),
            queries.query4_initial_plan(tango.db),
        ):
            validate_plan(tango.optimize(plan).plan)


class TestRobustness:
    def test_chosen_plan_close_to_best_enumerated(self, tango):
        """Section 5.1's robustness goal: the returned plan falls within
        ~20 % of the best enumerated plan (here by estimated cost)."""
        for initial, specs in (
            (
                queries.query1_initial_plan(tango.db),
                queries.query1_plans(tango.db),
            ),
            (
                queries.query2_initial_plan(tango.db, "1996-01-01"),
                queries.query2_plans(tango.db, "1996-01-01"),
            ),
        ):
            chosen = tango.optimize(initial).cost
            best = min(tango.plan_cost(spec.plan) for spec in specs if spec.plan)
            assert chosen <= best * 1.2 + 1e-6
