"""Integration: the paper's worked example (Section 2.2, Figure 3).

POSITION = {(1,Tom,2,20), (1,Jane,5,25), (2,Tom,5,10)}; the query counts
employees per position over time.  Figure 3(c) gives the aggregation result,
Figure 3(b) the full query result.  We check every route to that answer:
the Tango facade, the Figure 4(b) plan, and the all-DBMS plan.
"""

import pytest

from tests.conftest import FIGURE3_AGGREGATION, FIGURE3_QUERY_RESULT

from repro.algebra.builder import scan
from repro.core.tango import Tango


@pytest.fixture
def tango(figure3_db):
    return Tango(figure3_db)


class TestAggregation:
    def test_tango_reproduces_figure3c(self, tango):
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        assert result.rows == FIGURE3_AGGREGATION

    def test_all_dbms_plan_matches(self, tango):
        plan = (
            scan(tango.db, "POSITION")
            .project("PosID", "T1", "T2")
            .taggr(group_by=["PosID"], count="PosID")
            .sort("PosID", "T1")
            .to_middleware()
            .build()
        )
        assert tango.execute_plan(plan).rows == FIGURE3_AGGREGATION

    def test_middleware_plan_matches(self, tango):
        plan = (
            scan(tango.db, "POSITION")
            .project("PosID", "T1", "T2")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .build()
        )
        assert tango.execute_plan(plan).rows == FIGURE3_AGGREGATION


class TestFullQuery:
    def figure4b_plan(self, db):
        """Figure 4(b): TAGGR^M in the middleware, temporal join in the DBMS."""
        aggregated = (
            scan(db, "POSITION")
            .project("PosID", "T1", "T2")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
        )
        return (
            aggregated.to_dbms()
            .temporal_join(
                scan(db, "POSITION").project("PosID", "EmpName", "T1", "T2"),
                "PosID",
                "PosID",
            )
            .project("PosID", "EmpName", "T1", "T2", "COUNTofPosID")
            .sort("PosID")
            .to_middleware()
            .build()
        )

    def test_figure4b_plan_reproduces_figure3b(self, tango):
        rows = tango.execute_plan(self.figure4b_plan(tango.db)).rows
        assert sorted(rows) == sorted(FIGURE3_QUERY_RESULT)

    def test_tango_join_query_reproduces_counts(self, tango):
        result = tango.query(
            "VALIDTIME SELECT A.PosID, A.EmpName, B.EmpName "
            "FROM POSITION A, POSITION B WHERE A.PosID = B.PosID ORDER BY PosID"
        )
        # The self-join pairs each employee with every concurrent holder of
        # the same position — five overlapping pairs, as in Figure 3(b).
        assert len(result.rows) == 5

    def test_optimizer_choice_executes_to_same_answer(self, tango):
        optimization = tango.optimize(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        rows = tango.execute_plan(optimization.plan).rows
        assert rows == FIGURE3_AGGREGATION
