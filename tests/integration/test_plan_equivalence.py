"""Integration: every enumerated plan of Queries 1-4 computes the same
relation (as a multiset) on the scaled UIS dataset.

This is the load-bearing correctness check behind the performance figures:
Figure 8/10/11 only make sense if the plans being timed are equivalent.
"""

import pytest

from repro.core.tango import Tango
from repro.workloads import queries


@pytest.fixture(scope="module")
def tango(uis_db):
    return Tango(uis_db)


def run_spec(tango, spec):
    if spec.plan is not None:
        return tango.execute_plan(spec.plan).rows
    return tango.db.query(spec.sql)


def assert_all_agree(tango, specs):
    baseline = None
    for spec in specs:
        rows = sorted(run_spec(tango, spec))
        if baseline is None:
            baseline = rows
            baseline_name = spec.name
        else:
            assert rows == baseline, (
                f"{spec.name} disagrees with {baseline_name}: "
                f"{len(rows)} vs {len(baseline)} rows"
            )
    assert baseline  # sanity: queries return data at this scale


class TestQuery1:
    def test_plans_agree(self, tango):
        assert_all_agree(tango, queries.query1_plans(tango.db))

    def test_variants_agree_too(self, tango):
        assert_all_agree(
            tango, queries.query1_plans(tango.db, "POSITION_27000")
        )

    def test_result_sorted_by_position(self, tango):
        spec = queries.query1_plans(tango.db)[0]
        rows = run_spec(tango, spec)
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)


class TestQuery2:
    @pytest.mark.parametrize("end_date", ["1990-01-01", "1996-01-01", "1999-01-01"])
    def test_plans_agree_across_period_ends(self, tango, end_date):
        assert_all_agree(tango, queries.query2_plans(tango.db, end_date))

    def test_result_periods_clipped_to_window(self, tango):
        from repro.temporal.timestamps import day_of

        spec = queries.query2_plans(tango.db, "1996-01-01")[0]
        start = day_of("1983-01-01")
        end = day_of("1996-01-01")
        for row in run_spec(tango, spec):
            assert start <= row[2] < row[3] <= end

    def test_pay_rate_filter_applied(self, tango):
        # Every reported (PosID, EmpName) pair must come from a tuple with
        # PayRate > 10 overlapping the window.
        rows = run_spec(tango, queries.query2_plans(tango.db, "1996-01-01")[0])
        position = tango.db.table("POSITION")
        schema = position.schema
        eligible = {
            (r[schema.index_of("PosID")], r[schema.index_of("EmpName")])
            for r in position.rows
            if r[schema.index_of("PayRate")] > 10
        }
        assert all((row[0], row[1]) in eligible for row in rows)


class TestQuery3:
    @pytest.mark.parametrize("bound", ["1990-01-01", "1994-01-01", "1997-01-01"])
    def test_plans_agree_across_start_bounds(self, tango, bound):
        assert_all_agree(tango, queries.query3_plans(tango.db, bound))

    def test_pairs_are_distinct_employees(self, tango):
        specs = queries.query3_plans(tango.db, "1997-01-01")
        rows = run_spec(tango, specs[0])
        assert all(row[1] != row[2] or True for row in rows)  # names may tie
        # The EmpID < EmpID_2 filter guarantees each unordered pair once:
        assert len(rows) == len(run_spec(tango, specs[1]))


class TestQuery4:
    @pytest.mark.parametrize("table", ["POSITION_8000", "POSITION_46000"])
    def test_plans_agree(self, tango, table):
        assert_all_agree(tango, queries.query4_plans(tango.db, table))

    def test_join_matches_reference(self, tango):
        rows = run_spec(tango, queries.query4_plans(tango.db, "POSITION_8000")[0])
        position = tango.db.table("POSITION_8000")
        employee = tango.db.table("EMPLOYEE")
        emp_by_id = {row[0]: row for row in employee.rows}
        expected = []
        pschema = position.schema
        for row in position.rows:
            match = emp_by_id.get(row[pschema.index_of("EmpID")])
            if match is not None:
                expected.append((row[0], match[1], match[2]))
        assert sorted(rows) == sorted(expected)
