"""Integration: end-to-end middleware scenarios beyond the paper's four
queries — DDL + temporal queries + statistics lifecycle + extension
operators."""

import pytest

from repro.core.tango import Tango
from repro.dbms.database import MiniDB
from repro.temporal.timestamps import day_of


@pytest.fixture
def tango():
    db = MiniDB()
    db.execute(
        "CREATE TABLE ASSIGNMENT (ProjID INT, Engineer VARCHAR(12), "
        "Rate FLOAT, T1 DATE, T2 DATE)"
    )
    rows = [
        (1, "Ada", 95.0, day_of("1995-01-01"), day_of("1995-07-01")),
        (1, "Grace", 90.0, day_of("1995-03-01"), day_of("1995-09-01")),
        (1, "Edsger", 85.0, day_of("1995-06-01"), day_of("1996-01-01")),
        (2, "Ada", 95.0, day_of("1995-08-01"), day_of("1996-02-01")),
        (2, "Barbara", 88.0, day_of("1995-01-01"), day_of("1995-04-01")),
    ]
    values = ", ".join(
        f"({p}, '{e}', {r}, {t1}, {t2})" for p, e, r, t1, t2 in rows
    )
    db.execute(f"INSERT INTO ASSIGNMENT VALUES {values}")
    return Tango(db)


class TestStaffingScenario:
    def test_headcount_over_time(self, tango):
        result = tango.query(
            "VALIDTIME SELECT ProjID, COUNT(Engineer) AS Heads "
            "FROM ASSIGNMENT GROUP BY ProjID ORDER BY ProjID"
        )
        project1 = [row for row in result.rows if row[0] == 1]
        # Staffing of project 1: 1 (Jan-Mar), 2 (Mar-Jun), 3 (Jun-Jul),
        # 2 (Jul-Sep), 1 (Sep-Jan).
        assert [row[3] for row in project1] == [1, 2, 3, 2, 1]

    def test_peak_rate_over_time(self, tango):
        result = tango.query(
            "VALIDTIME SELECT ProjID, MAX(Rate) AS Peak FROM ASSIGNMENT "
            "GROUP BY ProjID ORDER BY ProjID"
        )
        project2 = [row for row in result.rows if row[0] == 2]
        assert [row[3] for row in project2] == [88.0, 95.0]

    def test_concurrent_pairs(self, tango):
        result = tango.query(
            "VALIDTIME SELECT A.ProjID, A.Engineer, B.Engineer "
            "FROM ASSIGNMENT A, ASSIGNMENT B "
            "WHERE A.ProjID = B.ProjID AND A.Rate < B.Rate ORDER BY ProjID"
        )
        pairs = {(row[1], row[2]) for row in result.rows}
        assert ("Grace", "Ada") in pairs        # overlapped on project 1
        assert ("Barbara", "Ada") not in pairs  # disjoint on project 2

    def test_timeslice_via_selection(self, tango):
        instant = day_of("1995-06-15")
        result = tango.query(
            f"VALIDTIME SELECT Engineer FROM ASSIGNMENT "
            f"WHERE T1 <= {instant} AND T2 > {instant} ORDER BY Engineer"
        )
        assert [row[0] for row in result.rows] == ["Ada", "Edsger", "Grace"]


class TestLifecycle:
    def test_statistics_refresh_changes_estimates(self, tango):
        plan = tango.parse("VALIDTIME SELECT ProjID FROM ASSIGNMENT")
        before = tango.estimator.estimate(plan).cardinality
        values = ", ".join(
            f"(3, 'X{i}', 50.0, {i}, {i + 10})" for i in range(500)
        )
        tango.db.execute(f"INSERT INTO ASSIGNMENT VALUES {values}")
        tango.refresh_statistics()
        after = tango.estimator.estimate(
            tango.parse("VALIDTIME SELECT ProjID FROM ASSIGNMENT")
        ).cardinality
        assert after > before

    def test_calibration_then_query(self, tango):
        tango.calibrate(sizes=(100,))
        result = tango.query(
            "VALIDTIME SELECT ProjID, COUNT(ProjID) FROM ASSIGNMENT "
            "GROUP BY ProjID ORDER BY ProjID"
        )
        assert len(result.rows) > 0

    def test_repeated_queries_leave_no_temp_tables(self, tango):
        before = set(tango.db.list_tables())
        for _ in range(3):
            tango.query(
                "VALIDTIME SELECT ProjID, COUNT(ProjID) FROM ASSIGNMENT "
                "GROUP BY ProjID ORDER BY ProjID"
            )
        assert set(tango.db.list_tables()) == before

    def test_mixed_temporal_and_regular_statements(self, tango):
        tango.query("CREATE TABLE NOTES (ProjID INT, Note VARCHAR(20))")
        tango.query("INSERT INTO NOTES VALUES (1, 'on track')")
        regular = tango.query("SELECT Note FROM NOTES WHERE ProjID = 1")
        assert regular.rows == [("on track",)]
        temporal = tango.query(
            "VALIDTIME SELECT ProjID FROM ASSIGNMENT ORDER BY ProjID"
        )
        assert len(temporal.rows) == 5


class TestExtensionOperators:
    def test_coalescing_after_projection(self, tango):
        """Project to (ProjID) then coalesce: maximal employment periods per
        project — the Section 7 extension path."""
        from repro.algebra.builder import scan

        plan = (
            scan(tango.db, "ASSIGNMENT")
            .project("ProjID", "T1", "T2")
            .sort("ProjID", "T1")
            .to_middleware()
            .coalesce()
            .build()
        )
        rows = tango.execute_plan(plan).rows
        project1 = [row for row in rows if row[0] == 1]
        assert project1 == [(1, day_of("1995-01-01"), day_of("1996-01-01"))]

    def test_dedup_in_middleware(self, tango):
        from repro.algebra.builder import scan

        plan = (
            scan(tango.db, "ASSIGNMENT")
            .project("Engineer")
            .to_middleware()
            .dedup()
            .build()
        )
        rows = tango.execute_plan(plan).rows
        assert sorted(row[0] for row in rows) == [
            "Ada", "Barbara", "Edsger", "Grace",
        ]
