"""Integration: the query-lifecycle observability layer on real workloads.

Span-tree shape for the paper's four benchmark queries, metrics counters
across repeated queries, EXPLAIN ANALYZE estimated-vs-actual output, and a
regression check that the Section 7 adaptive loop still converges now that
its observations are derived from spans.
"""

import pytest

from repro.core.tango import Tango, TangoConfig
from repro.optimizer.costs import CostFactors
from repro.workloads import queries


@pytest.fixture
def tango(uis_db):
    return Tango(uis_db, config=TangoConfig(tracing=True))


def lifecycle_trace(tango, initial_plan):
    """Run optimize + execute under one root span, as Tango.query does for
    SQL input; Queries 2-4 enter as algebra trees."""
    with tango.tracer.span("query", kind="query") as root:
        optimization = tango.optimize(initial_plan)
        tango.execute_plan(optimization.plan)
    return root


class TestSpanTreeShape:
    """One test per benchmark query (Section 5.2)."""

    def assert_lifecycle(self, trace, phases=("optimize", "translate", "execute")):
        names = [child.name for child in trace.children]
        for phase in phases:
            assert phase in names, f"missing {phase!r} span in {names}"
        optimize = trace.find(name="optimize")
        assert optimize.find(name="explore") is not None
        assert optimize.find(name="extract") is not None
        execute = trace.find(name="execute")
        transfers = [s for s in execute.iter() if s.kind == "transfer"]
        assert transfers, "execution produced no transfer spans"
        ups = [s for s in transfers if s.attributes["direction"] == "up"]
        assert ups, "no TRANSFER^M span — nothing came up from the DBMS"
        for span in transfers:
            assert span.attributes["tuples"] >= 0
            assert span.attributes["bytes"] >= 0
            assert span.attributes["seconds"] >= 0.0

    def test_query1_full_sql_path(self, tango):
        result = tango.query(queries.query1_sql())
        trace = result.trace
        assert trace is not None and trace.kind == "query"
        assert trace.children[0].name == "parse"
        self.assert_lifecycle(trace)
        assert trace.attributes["rows"] == len(result.rows)
        # The TAGGR^M cursor span carries its actual cardinality.
        taggr = trace.find(name="TAGGR^M")
        assert taggr is not None
        assert taggr.attributes["rows"] > 0

    def test_query2_trace(self, tango):
        trace = lifecycle_trace(
            tango, queries.query2_initial_plan(tango.db, "1996-01-01")
        )
        self.assert_lifecycle(trace)

    def test_query3_trace(self, tango):
        trace = lifecycle_trace(
            tango, queries.query3_initial_plan(tango.db, "1995-01-01")
        )
        self.assert_lifecycle(trace)

    def test_query4_trace(self, tango):
        trace = lifecycle_trace(tango, queries.query4_initial_plan(tango.db))
        self.assert_lifecycle(trace)

    def test_trace_round_trips_through_json(self, tango):
        import json

        result = tango.query(queries.query1_sql())
        restored = json.loads(result.trace.to_json())
        assert restored["name"] == "query"
        assert [c["name"] for c in restored["children"]] == [
            c.name for c in result.trace.children
        ]


class TestMetricsAcrossQueries:
    def test_counters_accumulate(self, tango):
        for _ in range(3):
            tango.query(queries.query1_sql())
        assert tango.metrics.value("queries_total") == 3
        assert tango.metrics.value("queries_temporal") == 3
        assert tango.metrics.value("queries_passthrough") == 0
        assert tango.metrics.value("transfer_up_tuples") > 0
        assert tango.metrics.value("transfer_up_bytes") > 0
        assert tango.metrics.value("dbms_round_trips") > 0
        assert tango.metrics.histogram("query_seconds").count == 3
        assert tango.metrics.histogram("execution_seconds").count == 3
        # The plan cache answers the two repeats without re-optimizing.
        assert tango.metrics.histogram("memo_classes").count == 1
        assert tango.metrics.value("optimizer_runs") == 1
        assert tango.metrics.value("plan_cache_hits") == 2
        assert tango.metrics.value("plan_cache_misses") == 1

    def test_passthrough_counted_separately(self, tango):
        tango.query("SELECT PosID FROM POSITION WHERE PosID = 1")
        tango.query(queries.query1_sql())
        assert tango.metrics.value("queries_total") == 2
        assert tango.metrics.value("queries_passthrough") == 1
        assert tango.metrics.value("queries_temporal") == 1

    def test_estimator_cache_effective_across_repeats(self, tango):
        tango.query(queries.query1_sql())
        assert tango.metrics.value("estimator_cache_hits") > 0
        assert tango.metrics.value("estimator_cache_misses") > 0

    def test_transfer_down_counted_when_loading(self, tango):
        """Query 2's middleware plans ship intermediate results down."""
        plan = queries.query2_plans(tango.db, "1996-01-01")[0].plan
        tango.execute_plan(plan)
        assert tango.metrics.value("transfer_down_tuples") > 0
        assert tango.metrics.value("dbms_rows_loaded") > 0


class TestExplainAnalyze:
    def test_query1_estimated_vs_actual(self, tango):
        result = tango.query(queries.query1_sql())
        report = tango.explain_analyze(queries.query1_sql())
        assert len(report) > 0
        algorithms = [m.algorithm for m in report]
        assert "TAGGR^M" in algorithms
        assert "TRANSFER^M" in algorithms
        for measurement in report:
            assert measurement.estimated_rows > 0
            assert measurement.actual_rows >= 0
            assert measurement.estimated_cost_us > 0.0
            assert measurement.actual_total_us >= measurement.actual_self_us
        # The root operator's actual cardinality is the query result's.
        root = report.operators[0]
        assert root.depth == 0
        assert root.actual_rows == len(result.rows)
        assert report.result_rows == len(result.rows)

    def test_all_four_queries_produce_reports(self, tango):
        inputs = [
            queries.query1_sql(),
            queries.query2_initial_plan(tango.db, "1996-01-01"),
            queries.query3_initial_plan(tango.db, "1995-01-01"),
            queries.query4_initial_plan(tango.db),
        ]
        for query in inputs:
            report = tango.explain_analyze(query)
            assert len(report) > 0
            assert report.actual_seconds > 0.0
            assert report.estimated_total_us > 0.0

    def test_rendered_table_lines_up(self, tango):
        text = str(tango.explain_analyze(queries.query1_sql()))
        lines = text.splitlines()
        assert "operator" in lines[0]
        assert "est rows" in lines[0] and "act rows" in lines[0]
        assert any("TAGGR^M" in line for line in lines)
        assert "total" in lines[-1]

    def test_report_to_dict(self, tango):
        exported = tango.explain_analyze(queries.query1_sql()).to_dict()
        assert exported["operators"]
        assert {"algorithm", "estimated_rows", "actual_rows"} <= set(
            exported["operators"][0]
        )

    def test_works_without_tracing_config(self, uis_db):
        """EXPLAIN ANALYZE instruments on its own, whatever the config."""
        tango = Tango(uis_db)  # tracing off
        report = tango.explain_analyze(queries.query1_sql())
        assert len(report) > 0
        assert tango.metrics.value("queries_analyzed") == 1


class TestAdaptiveFeedbackFromSpans:
    def test_stale_factors_converge(self, uis_db):
        """Regression for the Section 7 loop: with observations now derived
        from transfer spans, a wildly wrong per-row transfer cost must still
        be pulled toward the observed value by repeated queries."""
        stale = CostFactors(p_tmr=1e6)
        tango = Tango(
            uis_db, config=TangoConfig(adaptive=True), factors=stale
        )
        previous = tango.factors.p_tmr
        for _ in range(5):
            tango.query(queries.query1_sql())
            assert tango.factors.p_tmr <= previous
            previous = tango.factors.p_tmr
        assert tango.factors.p_tmr < stale.p_tmr / 2
        assert tango.metrics.value("feedback_updates") > 0

    def test_feedback_works_with_tracing_enabled_too(self, uis_db):
        stale = CostFactors(p_tmr=1e6)
        tango = Tango(
            uis_db,
            config=TangoConfig(adaptive=True, tracing=True),
            factors=stale,
        )
        for _ in range(3):
            tango.query(queries.query1_sql())
        assert tango.factors.p_tmr < stale.p_tmr
