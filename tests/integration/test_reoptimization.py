"""Mid-query re-optimization at TRANSFER^D materialization points.

The scenario is the paper's nightmare case: statistics so wrong that the
optimizer ships a large intermediate result into the DBMS expecting a
tiny one.  The tests corrupt the collector's cached statistics for one
relation (claiming ~10 rows where thousands exist), verify the optimizer
falls for it (the chosen plan materializes via ``TRANSFER^D``), and then
verify the materialization-point probe catches the q-error, re-enters
the optimizer for the remainder, and still produces byte-identical
results with no temp-table leaks.
"""

import pytest

from repro.algebra.builder import scan
from repro.algebra.operators import Location, TransferD
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB

HOT_KEYS = 40
ROWS_PER_KEY = 50


def make_db() -> MiniDB:
    db = MiniDB()
    db.execute("CREATE TABLE BIGPOS (PosID INT, Grade INT, T1 DATE, T2 DATE)")
    rows = []
    # Distinct Grade values keep coalescing from merging anything, so the
    # materialized intermediate really is HOT_KEYS * ROWS_PER_KEY rows.
    for key in range(HOT_KEYS):
        for i in range(ROWS_PER_KEY):
            rows.append((key, i, i * 3, i * 3 + 2))
    values = ", ".join(f"({p}, {g}, {a}, {b})" for p, g, a, b in rows)
    db.execute(f"INSERT INTO BIGPOS VALUES {values}")
    db.execute("CREATE TABLE EMP (EmpID INT, PosID INT, T1 DATE, T2 DATE)")
    emp = [(i, i % HOT_KEYS, 0, 200) for i in range(120)]
    values = ", ".join(f"({a}, {b}, {c}, {d})" for a, b, c, d in emp)
    db.execute(f"INSERT INTO EMP VALUES {values}")
    db.analyze("BIGPOS")
    db.analyze("EMP")
    return db


def initial_plan(db):
    return (
        scan(db, "BIGPOS")
        .coalesce(loc=Location.DBMS)
        .sort("PosID")
        .temporal_join(
            scan(db, "EMP").build(), "PosID", "PosID", loc=Location.DBMS
        )
        .to_middleware()
        .build()
    )


def corrupt_stats(tango: Tango, table: str = "BIGPOS", cardinality=10.0):
    """Replace the collector's cached statistics with a wildly low count."""
    stats = tango.collector.collect(table)
    tango.collector._cache[table.lower()] = stats.with_cardinality(cardinality)


@pytest.fixture(scope="module")
def truth():
    """Ground-truth rows from an honest, non-adaptive execution."""
    db = make_db()
    with Tango(db) as tango:
        optimized = tango.optimize(initial_plan(db))
        # Honest statistics: the optimizer keeps the join in the
        # middleware; no down-transfer, nothing to re-optimize.
        assert not any(
            isinstance(node, TransferD) for node in optimized.plan.walk()
        )
        result = tango.execute_plan(optimized.plan)
        assert tango.metrics.counter("reoptimizations").value == 0
    return result.rows


class TestMidQueryReoptimization:
    def test_reoptimizes_and_matches_oracle(self, truth):
        db = make_db()
        with Tango(
            db, config=TangoConfig(reoptimize_threshold=2.0, tracing=True)
        ) as tango:
            corrupt_stats(tango)
            optimized = tango.optimize(initial_plan(db))
            # The corrupted statistics must actually fool the optimizer
            # into materializing in the DBMS; otherwise this test is
            # vacuous.
            assert any(
                isinstance(node, TransferD) for node in optimized.plan.walk()
            )
            result = tango.execute_plan(optimized.plan)

            assert result.rows == truth
            assert tango.metrics.counter("reoptimizations").value >= 1
            # The executed plan is the spliced one, not the original.
            assert result.plan is not optimized.plan
            assert not any(
                isinstance(node, TransferD) for node in result.plan.walk()
            )
            leaked = [
                name
                for name in db.list_tables()
                if name.startswith("TANGO_TMP")
            ]
            assert leaked == []

    def test_trace_carries_reoptimize_span(self):
        db = make_db()
        with Tango(
            db, config=TangoConfig(reoptimize_threshold=2.0, tracing=True)
        ) as tango:
            corrupt_stats(tango)
            # run() wraps the whole optimize/execute/re-optimize cycle in
            # one "query" span, so the reoptimize span is in the tree.
            result = tango.run(initial_plan(db))

            reopt_spans = []
            annotated = []

            def collect(span):
                if span.kind == "reoptimize":
                    reopt_spans.append(span)
                if span.attributes.get("reoptimizations"):
                    annotated.append(span)
                for child in span.children:
                    collect(child)

            assert result.trace is not None
            collect(result.trace)
            assert len(reopt_spans) >= 1
            span = reopt_spans[0]
            assert span.attributes["qerror"] > 2.0
            assert span.attributes["actual"] > span.attributes["estimated"]
            assert "cost" in span.attributes
            # The final execution span counts the rounds that led to it.
            assert annotated and annotated[0].attributes["reoptimizations"] >= 1

    def test_qerror_histogram_observed(self):
        db = make_db()
        with Tango(db, config=TangoConfig(reoptimize_threshold=2.0)) as tango:
            corrupt_stats(tango)
            tango.execute_plan(tango.optimize(initial_plan(db)).plan)
            histogram = tango.metrics.histogram("qerror")
            assert histogram.count >= 1

    def test_below_threshold_runs_to_completion(self, truth):
        db = make_db()
        # An effectively infinite threshold: the probe observes but never
        # triggers, so the misestimated plan runs to completion (and the
        # engine's own teardown drops its temp tables).
        with Tango(db, config=TangoConfig(reoptimize_threshold=1e9)) as tango:
            corrupt_stats(tango)
            result = tango.execute_plan(tango.optimize(initial_plan(db)).plan)
            assert result.rows == truth
            assert tango.metrics.counter("reoptimizations").value == 0
        leaked = [
            name for name in db.list_tables() if name.startswith("TANGO_TMP")
        ]
        assert leaked == []

    def test_learns_cardinalities_at_materialization(self):
        db = make_db()
        config = TangoConfig(reoptimize_threshold=2.0, learn_cardinalities=True)
        with Tango(db, config=config) as tango:
            corrupt_stats(tango)
            tango.execute_plan(tango.optimize(initial_plan(db)).plan)
            # The probe fed the observed cardinality of the coalesced
            # subtree into the feedback store before re-optimizing.
            assert len(tango.feedback_store) >= 1
            assert (
                tango.metrics.counter("cardinality_feedback_updates").value
                >= 1
            )


class TestExplainAnalyzeAnnotations:
    def test_reoptimized_run_is_annotated(self):
        db = make_db()
        with Tango(db, config=TangoConfig(reoptimize_threshold=2.0)) as tango:
            corrupt_stats(tango)
            report = tango.explain_analyze(initial_plan(db))
            text = str(report)
            assert report.reoptimized is True
            assert "[reoptimized]" in text
            assert "q-err" in text
            # The splice gave the final round exact statistics for the
            # completed prefix, so the surviving estimates converge — the
            # report shows the *repaired* execution.

    def test_flagging_without_materialization_point(self):
        # A misestimated plan with no TRANSFER^D has no place to catch
        # the error mid-query: the report must flag the q-error instead.
        db = make_db()
        with Tango(db, config=TangoConfig(reoptimize_threshold=2.0)) as tango:
            corrupt_stats(tango)
            plan = scan(db, "BIGPOS").to_middleware().build()
            report = tango.explain_analyze(plan)
            assert report.reoptimized is False
            flagged = [
                measurement
                for measurement in report.operators
                if measurement.flagged
            ]
            assert flagged
            assert all(m.qerror > 2.0 for m in flagged)
            assert "!" in str(report)

    def test_normal_run_is_not_annotated(self):
        db = make_db()
        with Tango(db, config=TangoConfig(reoptimize_threshold=2.0)) as tango:
            report = tango.explain_analyze(initial_plan(db))
            assert report.reoptimized is False
            assert "[reoptimized]" not in str(report)
