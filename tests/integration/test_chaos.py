"""Chaos integration: the paper's four queries under seeded transient
faults must return exactly the fault-free answers, retry visibly, leak no
temp tables, fall back to the all-DBMS plan when the budget runs out, and
honor query deadlines."""

import pytest

from repro.core.tango import Tango, TangoConfig
from repro.core.plan_cache import fingerprint
from repro.dbms.database import MiniDB
from repro.errors import QueryTimeoutError, RetryExhaustedError
from repro.fuzz.compare import canonical_rows
from repro.optimizer.search import OptimizationResult
from repro.resilience import FaultInjector, FaultPolicy
from repro.workloads import queries
from repro.workloads.uis import load_uis

#: Per-call transient probability of the acceptance scenario.
CHAOS_P = 0.2
CHAOS_SEED = 20010521

Q1_SQL = queries.query1_sql()


def chaos_policy(p=CHAOS_P):
    return FaultPolicy(round_trip_p=p, load_chunk_p=p)


@pytest.fixture(scope="module")
def chaos_db():
    db = MiniDB()
    load_uis(db, scale=0.01, with_variants=False)
    return db


@pytest.fixture(scope="module")
def baseline(chaos_db):
    """Fault-free answers for the four queries (the ground truth).

    The explicit zero-probability injector keeps this baseline fault-free
    even when the suite runs under the ``TANGO_CHAOS_P`` env profile.
    """
    tango = Tango(chaos_db, fault_injector=FaultInjector(FaultPolicy(), seed=0))
    return {name: run(tango, name) for name in ("Q1", "Q2", "Q3", "Q4")}


def initial_plan(tango, name):
    db = tango.db
    return {
        "Q2": lambda: queries.query2_initial_plan(db, "1996-01-01"),
        "Q3": lambda: queries.query3_initial_plan(db, "1995-01-01"),
        "Q4": lambda: queries.query4_initial_plan(db),
    }[name]()


def run(tango, name):
    """Execute one of the paper's queries through the full TANGO path."""
    if name == "Q1":
        return tango.query(Q1_SQL).rows
    # Queries 2-4 are not expressible in the VALIDTIME dialect; their entry
    # point is the algebraic initial plan (as in the benchmarks).
    optimization = tango.optimize(initial_plan(tango, name))
    return tango.execute_plan(optimization.plan).rows


def assert_no_leaked_temp_tables(db):
    leaked = [t for t in db.list_tables() if t.startswith("TANGO_TMP")]
    assert leaked == [], f"leaked temp tables: {leaked}"


def assert_same_rows(actual, expected):
    """Canonical multiset comparison (the fuzzer oracle's helper).

    The optimizer is free to pick a plan that reorders rows tying under
    the delivered ORDER BY, so exact list equality here is an implicit
    ordering assumption — and a flake when retries or cost ties nudge
    the plan choice.
    """
    assert canonical_rows(actual) == canonical_rows(expected)


class TestChaosIdentity:
    """p=0.2 on round trips and load chunks: same answers, visible retries."""

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_query_survives_chaos_unchanged(self, chaos_db, baseline, name):
        injector = FaultInjector(chaos_policy(), seed=CHAOS_SEED)
        tango = Tango(chaos_db, fault_injector=injector)
        assert_same_rows(run(tango, name), baseline[name])
        assert_no_leaked_temp_tables(chaos_db)

    def test_chaos_run_records_retries(self, chaos_db, baseline):
        injector = FaultInjector(chaos_policy(), seed=CHAOS_SEED)
        tango = Tango(chaos_db, fault_injector=injector)
        for name in ("Q1", "Q2", "Q3", "Q4"):
            assert_same_rows(run(tango, name), baseline[name])
        assert injector.faults_injected > 0
        assert tango.metrics.value("retries") > 0
        assert tango.metrics.value("faults_injected") == injector.faults_injected
        # Every injected transient was cured by a retry, never a fallback.
        assert tango.metrics.value("retries") >= injector.faults_injected
        assert tango.metrics.value("fallbacks") == 0
        assert_no_leaked_temp_tables(chaos_db)

    def test_same_seed_same_schedule_across_runs(self, chaos_db, baseline):
        def fault_count():
            injector = FaultInjector(chaos_policy(), seed=CHAOS_SEED)
            tango = Tango(chaos_db, fault_injector=injector)
            assert_same_rows(run(tango, "Q1"), baseline["Q1"])
            return injector.faults_injected

        assert fault_count() == fault_count()


class TestFallback:
    def force_partitioned_plan(self, tango, sql):
        """Seed the plan cache so query(sql) executes a plan containing a
        ``TRANSFER^D`` (middleware aggregation pushed back down for the
        DBMS sort) instead of whatever the optimizer would pick."""
        from repro.algebra.builder import scan

        plan = (
            scan(tango.db, "POSITION")
            .project("PosID", "T1", "T2")
            .to_middleware()
            .sort("PosID", "T1")
            .taggr(group_by=["PosID"], count="PosID")
            .to_dbms()
            .sort("PosID")
            .to_middleware()
            .build()
        )
        key = (
            fingerprint(sql),
            tango.collector.epoch,
            tango.feedback_store.epoch,
            tango.config,
        )
        tango.plan_cache.put(
            key,
            OptimizationResult(plan=plan, cost=0.0, class_count=0, element_count=0, passes=0),
        )

    def test_budget_exhaustion_falls_back_to_all_dbms_plan(
        self, chaos_db, baseline
    ):
        # Every TRANSFER^D chunk faults: the partitioned plan can never
        # finish, so the query must re-run on the Section 3.1 initial plan
        # (which has no T^D) and still answer correctly.
        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=CHAOS_SEED)
        tango = Tango(chaos_db, fault_injector=injector)
        self.force_partitioned_plan(tango, Q1_SQL)
        result = tango.query(Q1_SQL)
        # The initial plan orders groups only by PosID, so compare as a
        # multiset of constant intervals rather than exact row order.
        assert_same_rows(result.rows, baseline["Q1"])
        assert tango.metrics.value("fallbacks") == 1
        assert tango.metrics.value("retries") > 0
        assert_no_leaked_temp_tables(chaos_db)

    def test_fallback_disabled_surfaces_the_error(self, chaos_db):
        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=CHAOS_SEED)
        tango = Tango(
            chaos_db, config=TangoConfig(fallback=False), fault_injector=injector
        )
        self.force_partitioned_plan(tango, Q1_SQL)
        with pytest.raises(RetryExhaustedError):
            tango.query(Q1_SQL)
        assert tango.metrics.value("fallbacks") == 0
        assert_no_leaked_temp_tables(chaos_db)

    def test_fallback_is_annotated_in_trace(self, chaos_db, baseline):
        injector = FaultInjector(FaultPolicy(load_chunk_p=1.0), seed=CHAOS_SEED)
        tango = Tango(
            chaos_db, config=TangoConfig(tracing=True), fault_injector=injector
        )
        self.force_partitioned_plan(tango, Q1_SQL)
        result = tango.query(Q1_SQL)
        assert_same_rows(result.rows, baseline["Q1"])
        spans = result.trace.find_all(kind="fallback")
        assert len(spans) == 1
        assert spans[0].attributes["retries"] > 0


class TestDeadline:
    def test_deadline_violation_raises_with_partial_trace(self, chaos_db):
        tango = Tango(
            chaos_db, config=TangoConfig(deadline_seconds=1e-9, tracing=True)
        )
        with pytest.raises(QueryTimeoutError) as info:
            tango.query(Q1_SQL)
        assert info.value.partial_trace is not None
        assert info.value.partial_trace.attributes.get("deadline_exceeded") is True
        assert tango.metrics.value("deadline_exceeded") == 1
        assert_no_leaked_temp_tables(chaos_db)

    def test_generous_deadline_does_not_fire(self, chaos_db, baseline):
        tango = Tango(chaos_db, config=TangoConfig(deadline_seconds=300.0))
        assert_same_rows(tango.query(Q1_SQL).rows, baseline["Q1"])
        assert tango.metrics.value("deadline_exceeded") == 0

    def test_deadline_is_not_swallowed_by_fallback(self, chaos_db):
        # A deadline is a client-facing contract, not a transient fault:
        # fallback must not catch it.
        tango = Tango(
            chaos_db,
            config=TangoConfig(deadline_seconds=1e-9, fallback=True),
        )
        with pytest.raises(QueryTimeoutError):
            tango.query(Q1_SQL)
        assert tango.metrics.value("fallbacks") == 0
