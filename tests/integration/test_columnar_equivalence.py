"""Integration: columnar execution is an invisible optimization.

The paper's four queries must return *byte-identical* rows — same values,
same types, same order — with the columnar path on or off, serial and
partition-parallel, and the execution trace must keep the same operator
shape (the plan is unchanged; only the inner loops are vectorized).
"""

import os

import pytest

from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.workloads import queries
from repro.workloads.uis import load_uis
from repro.xxl.columnar import numpy_available

Q1_SQL = queries.query1_sql()
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def columnar_db():
    db = MiniDB()
    load_uis(db, scale=0.01, with_variants=False)
    return db


def initial_plan(db, name):
    return {
        "Q2": lambda: queries.query2_initial_plan(db, "1996-01-01"),
        "Q3": lambda: queries.query3_initial_plan(db, "1995-01-01"),
        "Q4": lambda: queries.query4_initial_plan(db),
    }[name]()


def run(tango, name):
    if name == "Q1":
        return tango.query(Q1_SQL)
    optimization = tango.optimize(initial_plan(tango.db, name))
    return tango.execute_plan(optimization.plan)


def trace_shape(span):
    """The operator skeleton of a span tree: names/kinds, no measurements."""
    if span is None:
        return None
    return (span.name, span.kind, tuple(trace_shape(c) for c in span.children))


class TestColumnarEquivalence:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_byte_identical_rows_and_trace_shape(
        self, columnar_db, name, workers, backend
    ):
        row_mode = Tango(
            columnar_db, config=TangoConfig(workers=workers, tracing=True)
        )
        columnar = Tango(
            columnar_db,
            config=TangoConfig(workers=workers, tracing=True, columnar=backend),
        )
        expected = run(row_mode, name)
        actual = run(columnar, name)
        assert actual.rows == expected.rows
        assert [
            [type(value) for value in row] for row in actual.rows
        ] == [[type(value) for value in row] for row in expected.rows]
        assert trace_shape(actual.trace) == trace_shape(expected.trace)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_columnar_path_actually_engages(self, columnar_db, backend):
        tango = Tango(columnar_db, config=TangoConfig(columnar=backend))
        run(tango, "Q1")
        counters = tango.metrics.to_dict()["counters"]
        assert counters.get("columnar_batches", 0) > 0

    @pytest.mark.skipif(
        os.environ.get("TANGO_COLUMNAR", "").strip().lower()
        not in ("", "0", "off", "false"),
        reason="the TANGO_COLUMNAR profile forces columnar execution on",
    )
    def test_row_mode_reports_no_columnar_batches(self, columnar_db):
        tango = Tango(columnar_db, config=TangoConfig())
        run(tango, "Q1")
        counters = tango.metrics.to_dict()["counters"]
        assert counters.get("columnar_batches", 0) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explain_analyze_marks_columnar_operators(self, columnar_db, backend):
        tango = Tango(columnar_db, config=TangoConfig(columnar=backend))
        report = tango.explain_analyze(Q1_SQL)
        marked = [m for m in report if m.columnar]
        assert marked, "no operator carried the columnar annotation"
        assert f"[columnar={backend}]" in str(report)
        payload = report.to_dict()
        assert any(m["columnar"] for m in payload["operators"])
