"""Integration: partition-parallel execution is an invisible optimization.

The paper's four queries must return exactly the serial answers at every
worker count and partition strategy; ``workers=1`` must reproduce the
serial plans verbatim; parallel runs must leak no temp tables, share one
retry budget across partitions, and fall back to the all-DBMS plan when
that budget runs out — chaos included."""

import pytest

from repro.core.plans import compile_plan
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.errors import TransientError
from repro.fuzz.compare import canonical_rows
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy
from repro.workloads import queries
from repro.workloads.uis import load_uis

Q1_SQL = queries.query1_sql()
CHAOS_SEED = 20010521


@pytest.fixture(scope="module")
def parallel_db():
    db = MiniDB()
    load_uis(db, scale=0.01, with_variants=False)
    return db


def initial_plan(db, name):
    return {
        "Q1": lambda: queries.query1_initial_plan(db),
        "Q2": lambda: queries.query2_initial_plan(db, "1996-01-01"),
        "Q3": lambda: queries.query3_initial_plan(db, "1995-01-01"),
        "Q4": lambda: queries.query4_initial_plan(db),
    }[name]()


def run(tango, name):
    if name == "Q1":
        return tango.query(Q1_SQL).rows
    optimization = tango.optimize(initial_plan(tango.db, name))
    return tango.execute_plan(optimization.plan).rows


@pytest.fixture(scope="module")
def baseline(parallel_db):
    """Serial ground truth, fault-free even under the env chaos profile."""
    tango = Tango(
        parallel_db, fault_injector=FaultInjector(FaultPolicy(), seed=0)
    )
    return {name: run(tango, name) for name in ("Q1", "Q2", "Q3", "Q4")}


def assert_no_leaked_temp_tables(db):
    leaked = [t for t in db.list_tables() if t.startswith("TANGO_TMP")]
    assert leaked == [], f"leaked temp tables: {leaked}"


def assert_same_rows(actual, expected):
    """Canonical multiset comparison (the fuzzer oracle's helper)."""
    assert canonical_rows(actual) == canonical_rows(expected)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_same_rows_at_every_degree(
        self, parallel_db, baseline, name, workers, strategy
    ):
        # Multiset comparison: the parallel cost terms may legitimately
        # pick a different (cheaper) plan, which can reorder rows that tie
        # under the query's ORDER BY.  The row multiset must be identical.
        tango = Tango(
            parallel_db,
            config=TangoConfig(workers=workers, partition_strategy=strategy),
        )
        assert_same_rows(run(tango, name), baseline[name])
        assert_no_leaked_temp_tables(parallel_db)
        tango.close()

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_query1_order_is_preserved_exactly(
        self, parallel_db, baseline, strategy
    ):
        # Query 1's delivered order (PosID, T1) is a key of the result, so
        # exchange reassembly must reproduce the serial order exactly.
        tango = Tango(
            parallel_db,
            config=TangoConfig(workers=4, partition_strategy=strategy),
        )
        assert run(tango, "Q1") == baseline["Q1"]
        tango.close()

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_parallel_run_actually_fans_out(self, parallel_db, baseline, strategy):
        tango = Tango(
            parallel_db,
            config=TangoConfig(workers=4, partition_strategy=strategy),
        )
        assert_same_rows(run(tango, "Q1"), baseline["Q1"])
        assert tango.metrics.value("exchange_partitions") >= 2
        tango.close()


class TestWorkersOneIsSerial:
    def test_plan_description_is_byte_identical(self, parallel_db):
        serial = Tango(parallel_db)
        one_worker = Tango(parallel_db, config=TangoConfig(workers=1))

        def describe(tango):
            optimization = tango.optimize(initial_plan(tango.db, "Q1"))
            execution = compile_plan(
                optimization.plan,
                tango.connection,
                parallel=tango._parallel_context(),
            )
            text = execution.describe()
            execution.cleanup()
            return text

        assert describe(one_worker) == describe(serial)
        assert "EXCHANGE" not in describe(one_worker)

    def test_trace_shape_is_identical(self, parallel_db, baseline):
        def span_names(tango):
            result = tango.query(Q1_SQL)
            assert result.rows == baseline["Q1"]
            names = []

            def visit(span):
                names.append((span.name, span.kind))
                for child in span.children:
                    visit(child)

            visit(result.trace)
            return names

        serial = Tango(parallel_db, config=TangoConfig(tracing=True))
        one_worker = Tango(
            parallel_db, config=TangoConfig(tracing=True, workers=1)
        )
        assert span_names(one_worker) == span_names(serial)

    def test_no_pool_is_built_for_serial_sessions(self, parallel_db):
        tango = Tango(parallel_db, config=TangoConfig(workers=1))
        tango.query(Q1_SQL)
        assert tango._pool is None
        tango.close()


class TestParallelObservability:
    def test_explain_analyze_reports_workers(self, parallel_db):
        tango = Tango(parallel_db, config=TangoConfig(workers=4))
        report = tango.explain_analyze(Q1_SQL)
        text = str(report)
        assert "EXCHANGE" in text
        assert "[workers=" in text
        exchange = [m for m in report.operators if m.algorithm == "EXCHANGE"]
        assert len(exchange) == 1 and exchange[0].workers >= 2
        tango.close()

    def test_exchange_trace_has_one_span_per_partition(self, parallel_db):
        tango = Tango(parallel_db, config=TangoConfig(workers=4, tracing=True))
        result = tango.query(Q1_SQL)
        exchange_spans = result.trace.find_all(kind="exchange")
        assert len(exchange_spans) == 1
        span = exchange_spans[0]
        partitions = span.attributes["partitions"]
        assert partitions >= 2
        tagged = [
            child
            for child in span.children
            if child.attributes.get("partition") is not None
        ]
        assert len(tagged) == partitions
        assert 0.0 <= span.attributes["parallel_efficiency"] <= 1.0
        tango.close()

    def test_efficiency_histogram_is_recorded(self, parallel_db):
        tango = Tango(parallel_db, config=TangoConfig(workers=4))
        tango.query(Q1_SQL)
        assert tango.metrics.value("exchange_partitions") >= 2
        histogram = tango.metrics.histogram("parallel_efficiency")
        assert histogram.count >= 1
        tango.close()


class PartitionOnlyInjector(FaultInjector):
    """Faults every DBMS call issued from an exchange worker thread and
    none from the main thread — the deterministic way to kill all
    partitions while leaving the serial fallback healthy."""

    def before(self, op: str) -> None:
        import threading

        if threading.current_thread().name.startswith("tango-exchange"):
            self.faults_injected += 1
            raise TransientError(f"injected partition fault on {op}")
        super().before(op)


class TestRetryBudgetAcrossPartitions:
    def make_tango(self, db, budget):
        return Tango(
            db,
            config=TangoConfig(
                workers=4,
                retry=RetryPolicy(
                    max_attempts=3,
                    budget=budget,
                    base_delay_seconds=0.0,
                    max_delay_seconds=0.0,
                ),
            ),
            fault_injector=PartitionOnlyInjector(FaultPolicy(), seed=CHAOS_SEED),
        )

    def test_exhausted_partitions_fall_back_to_serial(
        self, parallel_db, baseline
    ):
        tango = self.make_tango(parallel_db, budget=4)
        result = tango.query(Q1_SQL)
        # The initial plan orders groups only by PosID; compare as a
        # multiset of constant intervals (as the chaos fallback test does).
        assert_same_rows(result.rows, baseline["Q1"])
        assert tango.metrics.value("fallbacks") == 1
        assert_no_leaked_temp_tables(parallel_db)
        tango.close()

    def test_budget_is_shared_not_per_partition(self, parallel_db, baseline):
        budget = 4
        tango = self.make_tango(parallel_db, budget=budget)
        tango.query(Q1_SQL)
        # Four partitions retrying independently would spend up to 8
        # retries (2 per cursor); the shared budget caps the whole query.
        assert tango.metrics.value("retries") <= budget
        tango.close()


class TestParallelChaosEquivalence:
    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_seeded_chaos_parallel_answers_unchanged(
        self, parallel_db, baseline, strategy
    ):
        injector = FaultInjector(
            FaultPolicy(round_trip_p=0.2, load_chunk_p=0.2), seed=CHAOS_SEED
        )
        tango = Tango(
            parallel_db,
            config=TangoConfig(
                workers=4,
                partition_strategy=strategy,
                retry=RetryPolicy(
                    max_attempts=10,
                    budget=100_000,
                    base_delay_seconds=0.0,
                    max_delay_seconds=0.0,
                ),
            ),
            fault_injector=injector,
        )
        for name in ("Q1", "Q2", "Q3", "Q4"):
            assert_same_rows(run(tango, name), baseline[name])
        assert injector.faults_injected > 0
        assert tango.metrics.value("fallbacks") == 0
        assert_no_leaked_temp_tables(parallel_db)
        tango.close()
