"""The mutate-then-refresh axis catches a broken incremental refresh.

Acceptance for the update axis: sabotage the delta merge (drop the first
inserted row), let the oracle catch the view/scratch divergence, shrink
the update stream down to the one insert that matters, and emit a pytest
reproducer that compiles and fails on its own.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.operators import Location, Scan, Select, TransferM
from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.schema import AttrType
from repro.fuzz.generator import FuzzCase, QueryGenerator
from repro.fuzz.oracle import DEFAULT_CONFIG, Oracle
from repro.fuzz.shrinker import Shrinker
from repro.views.delta import Delta, apply_delta_rows
from repro.workloads.generator import ColumnSpec, RandomRelationSpec, UpdateBatch


@pytest.fixture
def lossy_delta(monkeypatch):
    """A delta merge that silently drops the first inserted row."""

    def lossy(stored, delta):
        if delta.inserts:
            delta = Delta(list(delta.inserts[1:]), list(delta.deletes))
        return apply_delta_rows(stored, delta)

    monkeypatch.setattr("repro.views.manager.apply_delta_rows", lossy)


def _update_case() -> FuzzCase:
    spec = RandomRelationSpec(
        name="R0",
        columns=(ColumnSpec("K0", AttrType.INT, distinct=4),),
        cardinality=10,
        window_start=60000,
        window_end=60090,
        skew=0.0,
        seed=11,
    )
    plan = TransferM(
        Select(
            Scan("R0", spec.schema),
            Location.DBMS,
            Comparison(">=", ColumnRef("K0"), Literal(0)),
        )
    )
    inserts = ((1, 60001, 60005), (2, 60002, 60006), (3, 60003, 60007))
    return FuzzCase(
        tables=(spec,),
        plan=plan,
        seed=0,
        index=0,
        updates=(UpdateBatch(inserts=inserts, deletes=()),),
    )


def _quiet_oracle() -> Oracle:
    """Only the update probe: no alternatives, no config matrix."""
    return Oracle(top_k=0, rule_samples=0, config_samples=0)


def test_broken_delta_merge_is_caught(lossy_delta):
    failure = _quiet_oracle().check_case(_update_case(), random.Random(0))
    assert failure is not None, "the oracle must catch the dropped insert"
    assert failure.kind == "view-refresh-mismatch"
    assert failure.strategy == ("updates",)


def test_update_stream_shrinks_to_one_insert(lossy_delta):
    failure = _quiet_oracle().check_case(_update_case(), random.Random(0))
    assert failure is not None
    shrunk = Shrinker(oracle=_quiet_oracle()).shrink(failure)
    assert shrunk.strategy == ("updates",)
    assert shrunk.update_table == "R0"
    assert len(shrunk.updates) == 1
    # Any single insert reproduces the bug; ddmin must find that.
    assert len(shrunk.updates[0].inserts) == 1
    assert shrunk.updates[0].deletes == ()


def test_emitted_update_reproducer_compiles_and_fails(lossy_delta):
    failure = _quiet_oracle().check_case(_update_case(), random.Random(0))
    assert failure is not None
    shrunk = Shrinker(oracle=_quiet_oracle()).shrink(failure)

    source = shrunk.to_pytest(test_name="test_emitted_update_reproducer")
    assert "UPDATE_BATCHES" in source
    compiled = compile(source, "<emitted reproducer>", "exec")
    namespace: dict = {"__name__": "emitted_reproducer"}
    exec(compiled, namespace)
    with pytest.raises(AssertionError):
        namespace["test_emitted_update_reproducer"]()


def test_healthy_delta_passes_the_axis():
    failure = _quiet_oracle().check_case(_update_case(), random.Random(0))
    assert failure is None


def test_unreplayable_stream_probes_as_pass():
    case = _update_case()
    bad = (UpdateBatch(inserts=(), deletes=(("no-such", -1, -2),)),)
    result = _quiet_oracle().probe(
        case.build_db(),
        case.plan,
        ("updates",),
        DEFAULT_CONFIG,
        updates=bad,
        update_table="R0",
    )
    assert result is None


def test_generator_updates_are_deterministic_and_optional():
    with_axis = QueryGenerator(seed=0)
    again = QueryGenerator(seed=0)
    without = QueryGenerator(seed=0, updates=False)
    for index in range(5):
        case = with_axis.case(index)
        assert case.updates == again.case(index).updates
        assert case.updates
        assert case.update_table == case.tables[0].name
        bare = without.case(index)
        assert bare.updates == ()
        assert bare.update_table is None
        # The axis draws from its own rng stream: queries and data match.
        assert bare.plan == case.plan
        assert bare.tables == case.tables


def test_oracle_opt_out_skips_the_probe(monkeypatch):
    calls = []
    monkeypatch.setattr(
        Oracle,
        "_probe_updates",
        lambda self, *args, **kwargs: calls.append(1),
    )
    oracle = Oracle(top_k=0, rule_samples=0, config_samples=0, updates_axis=False)
    assert oracle.check_case(_update_case(), random.Random(0)) is None
    assert calls == []
