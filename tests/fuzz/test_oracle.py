"""The differential oracle: agreement on healthy code, sound invariants."""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.operators import Location, Scan, Select, Sort, TransferM
from repro.fuzz.compare import rows_equal
from repro.fuzz.generator import FuzzCase, QueryGenerator
from repro.fuzz.oracle import (
    DEFAULT_CONFIG,
    ExecConfig,
    Oracle,
    derive_alternative,
    execute_with_config,
)
from repro.workloads.generator import (
    ColumnSpec,
    RandomRelationSpec,
    generate_relation_rows,
)
from repro.algebra.schema import AttrType


def _simple_case() -> FuzzCase:
    spec = RandomRelationSpec(
        name="R0",
        columns=(ColumnSpec("K0", AttrType.INT, distinct=4),),
        cardinality=12,
        window_start=60000,
        window_end=60090,
        seed=5,
    )
    plan = TransferM(
        Sort(
            Select(
                Scan("R0", spec.schema),
                Location.DBMS,
                Comparison("<", ColumnRef("K0"), Literal(3)),
            ),
            Location.DBMS,
            ("K0", "T1"),
        )
    )
    return FuzzCase(tables=(spec,), plan=plan, seed=0, index=0)


def test_generated_cases_pass_the_oracle():
    generator = QueryGenerator(seed=1)
    oracle = Oracle()
    rng = random.Random("oracle-test")
    for case in generator.cases(3):
        assert oracle.check_case(case, rng) is None
    assert oracle.executions >= 3


def test_execution_budget_is_counted():
    oracle = Oracle()
    case = _simple_case()
    oracle.check_case(case, random.Random(0))
    assert oracle.executions >= 1


def test_chaos_execution_matches_clean_execution():
    case = _simple_case()
    clean = execute_with_config(case.build_db(), case.plan, DEFAULT_CONFIG)
    chaotic = execute_with_config(
        case.build_db(),
        case.plan,
        ExecConfig(chaos=True, chaos_p=0.2, chaos_seed=13),
    )
    assert rows_equal(clean, chaotic)
    assert len(clean) > 0


def test_batch_size_one_matches_default():
    case = _simple_case()
    default = execute_with_config(case.build_db(), case.plan, DEFAULT_CONFIG)
    row_at_a_time = execute_with_config(
        case.build_db(), case.plan, ExecConfig(batch_size=1)
    )
    assert rows_equal(default, row_at_a_time)


def test_probe_returns_none_on_a_passing_point():
    case = _simple_case()
    oracle = Oracle()
    db = case.build_db()
    assert oracle.probe(db, case.plan, ("memo", 0), DEFAULT_CONFIG) is None


def test_derive_alternative_baseline_is_executable():
    case = _simple_case()
    db = case.build_db()
    baseline = derive_alternative(db, case.plan, ("baseline",))
    assert baseline is not None
    rows = execute_with_config(db, baseline, DEFAULT_CONFIG)
    filtered = execute_with_config(db, case.plan, DEFAULT_CONFIG)
    assert rows_equal(rows, filtered)


def test_derive_alternative_unknown_strategy_raises():
    case = _simple_case()
    with pytest.raises(ValueError):
        derive_alternative(case.build_db(), case.plan, ("nonsense",))


def test_rule_strategy_derivation_round_trips():
    case = _simple_case()
    db = case.build_db()
    plan = derive_alternative(db, case.plan, ("rule", "T4"))
    if plan is None:
        pytest.skip("T4 produced no distinct plan for this shape")
    assert rows_equal(
        execute_with_config(db, plan, DEFAULT_CONFIG),
        execute_with_config(db, case.plan, DEFAULT_CONFIG),
    )
