"""A deliberately broken rule is caught, shrunk, and emitted as a test.

The acceptance scenario for the fuzzer: mutate the optimizer (here a rule
claiming σ(r) ≡ r, i.e. selections can be dropped), let the oracle catch
the resulting multiset mismatch, and delta-debug the failure down to a
reproducer of at most three operators whose emitted pytest module compiles
and fails on its own.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.operators import (
    Dedup,
    Location,
    Scan,
    Select,
    Sort,
    TransferM,
)
from repro.algebra.schema import AttrType
from repro.fuzz.generator import FuzzCase
from repro.fuzz.harness import FuzzHarness
from repro.fuzz.oracle import Oracle
from repro.fuzz.shrinker import Shrinker
from repro.optimizer.rules import Rule, X1MoveCoalesce
from repro.workloads.generator import ColumnSpec, RandomRelationSpec


class BrokenDropSelect(Rule):
    """σ(r) ≡ r — wrong on purpose: drops the selection entirely."""

    name = "B1"
    equivalence = "M"

    def apply(self, memo, class_id, element):
        if not isinstance(element.template, Select):
            return False
        before = memo.class_count
        memo.merge(class_id, element.children[0])
        return memo.class_count != before


@pytest.fixture
def broken_rules(monkeypatch):
    """The oracle's forced-rule strategy space, with the broken rule in it."""
    rules = [BrokenDropSelect(), X1MoveCoalesce()]
    monkeypatch.setattr(
        "repro.fuzz.oracle.default_rules", lambda *args, **kwargs: list(rules)
    )
    return rules


def _case_with_padding() -> FuzzCase:
    """Four operators around the one that matters: Select under Dedup+Sort."""
    spec = RandomRelationSpec(
        name="R0",
        columns=(ColumnSpec("K0", AttrType.INT, distinct=4),),
        cardinality=14,
        window_start=60000,
        window_end=60090,
        skew=0.0,
        seed=9,
    )
    plan = TransferM(
        Sort(
            Dedup(
                Select(
                    Scan("R0", spec.schema),
                    Location.DBMS,
                    Comparison("=", ColumnRef("K0"), Literal(0)),
                ),
                Location.DBMS,
            ),
            Location.DBMS,
            ("K0",),
        )
    )
    return FuzzCase(tables=(spec,), plan=plan, seed=0, index=0)


def test_broken_rule_is_caught_and_shrunk(broken_rules):
    case = _case_with_padding()
    oracle = Oracle(top_k=0, config_samples=0, rule_samples=2)
    failure = oracle.check_case(case, random.Random(0))

    assert failure is not None, "the oracle must catch the dropped selection"
    assert failure.kind == "multiset-mismatch"
    assert failure.strategy == ("rule", "B1")

    shrunk = Shrinker(oracle=Oracle(top_k=0, config_samples=0)).shrink(failure)
    # The reproducer keeps only what the failure needs: the selection and
    # its scan (the acceptance bar is at most three operators).
    assert shrunk.operator_count <= 3
    assert shrunk.kind == "multiset-mismatch"
    assert shrunk.row_count <= case.tables[0].cardinality
    kept = {type(node).__name__ for node in shrunk.initial_plan.walk()}
    assert "Select" in kept and "Scan" in kept


def test_shrunk_reproducer_compiles_and_fails(broken_rules):
    case = _case_with_padding()
    oracle = Oracle(top_k=0, config_samples=0, rule_samples=2)
    failure = oracle.check_case(case, random.Random(0))
    assert failure is not None
    shrunk = Shrinker(oracle=Oracle(top_k=0, config_samples=0)).shrink(failure)

    source = shrunk.to_pytest(test_name="test_emitted_reproducer")
    compiled = compile(source, "<emitted reproducer>", "exec")
    namespace: dict = {"__name__": "emitted_reproducer"}
    exec(compiled, namespace)  # module level: schemas, rows, plans
    with pytest.raises(AssertionError):
        namespace["test_emitted_reproducer"]()


def test_harness_writes_reproducers_for_broken_rule(broken_rules, tmp_path):
    harness = FuzzHarness(
        seed=3, budget=80, out_dir=str(tmp_path), max_failures=1
    )
    report = harness.run()
    assert not report.ok
    assert report.reproducer_paths
    emitted = tmp_path / report.reproducer_paths[0].split("/")[-1]
    assert emitted.exists()
    compile(emitted.read_text(), str(emitted), "exec")
    assert "FAILING_PLAN" in emitted.read_text()


def test_shrinker_respects_probe_cap(broken_rules):
    case = _case_with_padding()
    oracle = Oracle(top_k=0, config_samples=0, rule_samples=2)
    failure = oracle.check_case(case, random.Random(0))
    assert failure is not None
    shrunk = Shrinker(
        oracle=Oracle(top_k=0, config_samples=0), max_probes=4
    ).shrink(failure)
    assert shrunk.probes <= 4
