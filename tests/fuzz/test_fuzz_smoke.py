"""Tier-1 smoke: a capped fuzzing run over healthy code stays green.

The nightly CI job runs ``python -m repro.fuzz`` with a much larger
budget; this test keeps a small always-on slice of that coverage inside
the regular suite.
"""

from __future__ import annotations

from repro.fuzz.harness import FuzzHarness
from repro.fuzz.__main__ import main

SMOKE_BUDGET = 40


def test_smoke_run_is_green():
    report = FuzzHarness(seed=0, budget=SMOKE_BUDGET).run()
    assert report.ok, report.summary()
    assert report.cases_run > 0
    assert report.executions >= SMOKE_BUDGET


def test_smoke_run_is_deterministic():
    first = FuzzHarness(seed=0, budget=15).run()
    second = FuzzHarness(seed=0, budget=15).run()
    assert first.ok and second.ok
    assert first.cases_run == second.cases_run
    assert first.executions == second.executions


def test_cli_entry_point(capsys):
    status = main(["--seed", "0", "--budget", "10"])
    out = capsys.readouterr().out
    assert status == 0
    assert "repro.fuzz seed=0" in out
    assert "0 failure(s)" in out
