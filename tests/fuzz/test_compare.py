"""Canonicalization and the list-vs-multiset comparison helpers."""

from __future__ import annotations

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.fuzz.compare import (
    canonical_rows,
    describe_mismatch,
    is_sorted_on,
    rows_equal,
)

SCHEMA = Schema(
    [
        Attribute("K", AttrType.INT),
        Attribute("V", AttrType.FLOAT),
    ]
)


def test_multiset_equality_ignores_order():
    assert rows_equal([(1, 2), (3, 4)], [(3, 4), (1, 2)])


def test_multiset_equality_counts_duplicates():
    assert not rows_equal([(1, 2), (1, 2)], [(1, 2)])


def test_whole_floats_equal_ints():
    # SUM over INT: the middleware sums to int, SQL may produce float.
    assert rows_equal([(1, 2.0)], [(1, 2)])


def test_float_rounding_absorbs_summation_order():
    a = 0.1 + 0.2 + 0.3
    b = 0.3 + 0.2 + 0.1
    assert a != b or True  # the classic non-associativity
    assert rows_equal([(a,)], [(b,)])


def test_mixed_type_columns_do_not_raise():
    rows = [(None, 1), ("x", 2), (3, 3)]
    assert canonical_rows(rows) == canonical_rows(list(reversed(rows)))


def test_describe_mismatch_reports_both_sides():
    text = describe_mismatch([(1, 2)], [(3, 4)])
    assert "missing" in text
    assert "unexpected" in text
    assert "(1, 2)" in text
    assert "(3, 4)" in text


def test_describe_mismatch_on_equal_multisets():
    assert "identical" in describe_mismatch([(1, 2)], [(1, 2)])


def test_is_sorted_on_accepts_ties_in_any_order():
    rows = [(1, 9.0), (1, 2.0), (2, 5.0)]
    assert is_sorted_on(rows, SCHEMA, ("K",))


def test_is_sorted_on_rejects_a_violation():
    rows = [(2, 1.0), (1, 2.0)]
    assert not is_sorted_on(rows, SCHEMA, ("K",))


def test_is_sorted_on_trivial_cases():
    assert is_sorted_on([], SCHEMA, ("K",))
    assert is_sorted_on([(1, 2.0)], SCHEMA, ())
    assert is_sorted_on([(1, 2.0)], SCHEMA, ("missing",))


def test_is_sorted_on_incomparable_values():
    rows = [(None, 1.0), (1, 2.0)]
    assert is_sorted_on(rows, SCHEMA, ("K",))
