"""The query generator: deterministic, valid, temporally well-formed."""

from __future__ import annotations

import random

from repro.algebra.operators import (
    Coalesce,
    Join,
    Scan,
    Select,
    TemporalAggregate,
    TemporalJoin,
    TransferM,
)
from repro.algebra.schema import AttrType
from repro.fuzz.generator import FuzzCase, QueryGenerator
from repro.optimizer.physical import validate_plan
from repro.workloads.generator import (
    generate_relation_rows,
    random_relation_spec,
)

CASES = 30


def test_stream_is_deterministic():
    first = [QueryGenerator(seed=7).case(i).plan.cache_key for i in range(10)]
    second = [QueryGenerator(seed=7).case(i).plan.cache_key for i in range(10)]
    assert first == second


def test_different_seeds_differ():
    a = [QueryGenerator(seed=1).case(i).plan.cache_key for i in range(10)]
    b = [QueryGenerator(seed=2).case(i).plan.cache_key for i in range(10)]
    assert a != b


def test_cases_are_valid_initial_plans():
    generator = QueryGenerator(seed=0)
    for case in generator.cases(CASES):
        assert isinstance(case.plan, TransferM)
        validate_plan(case.plan)  # raises on an invalid plan
        for node in case.plan.walk():
            if not isinstance(node, (Scan, TransferM)):
                assert node.location.name == "DBMS"


def test_operator_budget_respected():
    generator = QueryGenerator(seed=0, max_operators=7)
    for case in generator.cases(CASES):
        # max_operators bounds the tree under the root transfer.
        assert case.plan.size() <= 7 + 1


def test_generated_rows_satisfy_period_invariant():
    rng = random.Random(3)
    for index in range(10):
        spec = random_relation_spec(rng, f"T{index}")
        schema = spec.schema
        assert schema.has("T1") and schema.has("T2")
        t1 = schema.index_of("T1")
        t2 = schema.index_of("T2")
        rows = generate_relation_rows(spec)
        assert len(rows) == spec.cardinality
        for row in rows:
            assert row[t1] < row[t2]
            assert spec.window_start <= row[t1]
            assert row[t2] <= spec.window_end + spec.max_duration


def test_stream_covers_the_operator_space():
    generator = QueryGenerator(seed=0)
    seen: set[type] = set()
    for case in generator.cases(60):
        for node in case.plan.walk():
            seen.add(type(node))
    assert Select in seen
    assert Join in seen or TemporalJoin in seen
    assert TemporalAggregate in seen or Coalesce in seen


def test_build_db_loads_and_analyzes():
    case = QueryGenerator(seed=0).case(0)
    db = case.build_db()
    for spec in case.tables:
        assert spec.name in db.list_tables()
        assert len(db.table(spec.name).rows) == spec.cardinality


def test_temporal_operators_only_over_period_schemas():
    generator = QueryGenerator(seed=5)
    for case in generator.cases(CASES):
        for node in case.plan.walk():
            if isinstance(node, (TemporalAggregate, Coalesce)):
                child_schema = node.input.schema
                assert child_schema.has("T1") and child_schema.has("T2")


def test_random_relation_spec_shapes():
    rng = random.Random(11)
    spec = random_relation_spec(rng, "R9", max_rows=25)
    assert spec.name == "R9"
    assert spec.columns[0].type is AttrType.INT
    assert 3 <= spec.cardinality <= 25
    assert spec.window_start < spec.window_end


def test_fuzz_case_describe_mentions_tables():
    case = QueryGenerator(seed=0).case(0)
    text = case.describe()
    for spec in case.tables:
        assert spec.name in text
    assert isinstance(case, FuzzCase)


def test_every_generated_plan_derives_a_schema():
    # Schema derivation is lazy; the generator must force it per growth
    # step so name collisions (a stacked COUNT reproducing a grouping
    # column's name, seen at seed 5) are re-drawn, not deferred into the
    # optimizer as a SchemaError crash.
    for seed in (0, 5, 7):
        for case in QueryGenerator(seed=seed).cases(25):
            for node in case.plan.walk():
                assert len(node.schema) > 0
