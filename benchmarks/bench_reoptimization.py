"""Mid-query re-optimization and the cardinality feedback store, measured.

The scenario: statistics for a skewed relation are deliberately
corrupted (the collector's cache claims ~10 rows where thousands exist),
so the optimizer ships the coalesced intermediate down into the DBMS
expecting a tiny materialization — and the DBMS-side temporal join over
hot keys is the slowest shape available.  Three recoveries are measured
against running that misestimated plan to completion:

* **reopt (cold store)** — the ``TRANSFER^D`` materialization probe sees
  the q-error, re-enters the optimizer for the remainder with exact
  temp-table statistics, and finishes in the middleware;
* **warm store** — a second session loads the feedback store persisted
  by the cold run; the learned cardinality overrides the corrupted
  estimate *before* optimization, so the bad plan is never chosen;
* **honest** — uncorrupted statistics, for reference.

Asserted here:

* every variant returns rows byte-identical to the all-DBMS oracle plan
  (the maximally DBMS-located executable shape, run to completion);
* cold-store re-optimization is at least ``BENCH_REOPT_MIN_COLD_SPEEDUP``
  (default 1.3) times faster end-to-end than the misestimated plan;
* a warm feedback store is at least ``BENCH_REOPT_MIN_WARM_SPEEDUP``
  (default 1.5) times faster end-to-end than the misestimated plan, with
  zero mid-query re-optimizations (the first plan is already right).

Numbers land in ``BENCH_REOPT_JSON`` (default ``BENCH_reoptimization.json``)
so CI can gate and archive the run.
"""

import json
import os
import time

from harness import fmt, print_series

from repro.algebra.builder import scan
from repro.algebra.operators import Location, TransferD
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB

ROUNDS = 3
HOT_KEYS = 40
ROWS_PER_KEY = 60
EMP_ROWS = 240
CORRUPTED_CARDINALITY = 10.0
MIN_COLD_SPEEDUP = float(os.environ.get("BENCH_REOPT_MIN_COLD_SPEEDUP", "1.3"))
MIN_WARM_SPEEDUP = float(os.environ.get("BENCH_REOPT_MIN_WARM_SPEEDUP", "1.5"))
RESULTS_PATH = os.environ.get("BENCH_REOPT_JSON", "BENCH_reoptimization.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def make_skewed_db() -> MiniDB:
    db = MiniDB()
    db.execute("CREATE TABLE BIGPOS (PosID INT, Grade INT, T1 DATE, T2 DATE)")
    rows = []
    # Hot join keys; distinct Grade values keep coalescing from merging
    # anything, so the materialized intermediate really is
    # HOT_KEYS * ROWS_PER_KEY rows — 240x the corrupted estimate.
    for key in range(HOT_KEYS):
        for i in range(ROWS_PER_KEY):
            rows.append((key, i, i * 3, i * 3 + 2))
    values = ", ".join(f"({p}, {g}, {a}, {b})" for p, g, a, b in rows)
    db.execute(f"INSERT INTO BIGPOS VALUES {values}")
    db.execute("CREATE TABLE EMP (EmpID INT, PosID INT, T1 DATE, T2 DATE)")
    emp = [(i, i % HOT_KEYS, 0, 200) for i in range(EMP_ROWS)]
    values = ", ".join(f"({a}, {b}, {c}, {d})" for a, b, c, d in emp)
    db.execute(f"INSERT INTO EMP VALUES {values}")
    db.analyze("BIGPOS")
    db.analyze("EMP")
    return db


def initial_plan(db):
    return (
        scan(db, "BIGPOS")
        .coalesce(loc=Location.DBMS)
        .sort("PosID")
        .temporal_join(
            scan(db, "EMP").build(), "PosID", "PosID", loc=Location.DBMS
        )
        .to_middleware()
        .build()
    )


def corrupt_stats(tango: Tango) -> None:
    stats = tango.collector.collect("BIGPOS")
    tango.collector._cache["bigpos"] = stats.with_cardinality(
        CORRUPTED_CARDINALITY
    )


def best_of(tango: Tango, plan) -> tuple[float, list]:
    """Best wall time over ROUNDS executions, plus the rows."""
    best, rows = float("inf"), None
    for _ in range(ROUNDS):
        begin = time.perf_counter()
        result = tango.execute_plan(plan)
        best = min(best, time.perf_counter() - begin)
        rows = result.rows
    return best, rows


def has_transfer_d(plan) -> bool:
    return any(isinstance(node, TransferD) for node in plan.walk())


def test_reoptimization_recovers_from_corrupted_statistics(tmp_path):
    db = make_skewed_db()
    feedback_path = str(tmp_path / "feedback.json")

    # -- the all-DBMS oracle: the maximally DBMS-located executable shape,
    # chosen under the corrupted statistics and run to completion.  Its
    # rows are the ground truth every variant must match byte-for-byte.
    misestimated = Tango(db)
    corrupt_stats(misestimated)
    bad_plan = misestimated.optimize(initial_plan(db)).plan
    assert has_transfer_d(bad_plan), (
        "corrupted statistics failed to fool the optimizer into a "
        "DBMS materialization; the scenario is vacuous"
    )
    t_mis, oracle_rows = best_of(misestimated, bad_plan)
    assert misestimated.metrics.counter("reoptimizations").value == 0
    misestimated.close()

    # -- honest statistics, for reference.
    honest = Tango(db)
    t_honest, honest_rows = best_of(honest, honest.optimize(initial_plan(db)).plan)
    honest.close()
    assert honest_rows == oracle_rows

    # -- cold store: the materialization probe catches the misestimate
    # mid-query and re-optimizes the remainder.
    cold_config = TangoConfig(
        reoptimize_threshold=2.0,
        learn_cardinalities=True,
        feedback_path=feedback_path,
    )
    cold = Tango(db, config=cold_config)
    corrupt_stats(cold)
    cold_plan = cold.optimize(initial_plan(db)).plan
    assert has_transfer_d(cold_plan)
    t_cold, cold_rows = best_of(cold, cold_plan)
    reoptimizations = cold.metrics.counter("reoptimizations").value
    learned_entries = len(cold.feedback_store)
    cold.close()  # persists the feedback store to feedback_path
    assert cold_rows == oracle_rows
    assert reoptimizations >= 1, "the probe never fired"
    assert learned_entries >= 1
    assert os.path.exists(feedback_path)

    # -- warm store: a brand-new session loads the learned cardinalities;
    # the override beats the (still corrupted) statistics during
    # optimization, so the right plan is chosen up front.
    warm = Tango(db, config=cold_config)
    corrupt_stats(warm)
    warm_plan = warm.optimize(initial_plan(db)).plan
    assert not has_transfer_d(warm_plan), (
        "the warm feedback store failed to steer the optimizer away "
        "from the DBMS materialization"
    )
    t_warm, warm_rows = best_of(warm, warm_plan)
    warm_reopts = warm.metrics.counter("reoptimizations").value
    warm.close()
    assert warm_rows == oracle_rows
    assert warm_reopts == 0, "a converged store should not re-optimize"

    leaked = [t for t in db.list_tables() if t.startswith("TANGO_TMP")]
    assert leaked == [], f"temp tables leaked: {leaked}"

    cold_speedup = t_mis / t_cold
    warm_speedup = t_mis / t_warm
    print_series(
        "Mid-query re-optimization vs a misestimated plan "
        f"({HOT_KEYS * ROWS_PER_KEY} skewed rows, est {CORRUPTED_CARDINALITY:.0f})",
        ["variant", "best", "speedup", "reopts"],
        [
            ["misestimated (to completion)", fmt(t_mis), "1.00x", "0"],
            ["reopt (cold store)", fmt(t_cold), f"{cold_speedup:.2f}x",
             str(reoptimizations)],
            ["warm store", fmt(t_warm), f"{warm_speedup:.2f}x", "0"],
            ["honest statistics", fmt(t_honest), f"{t_mis / t_honest:.2f}x", "0"],
        ],
    )
    record(
        "reoptimization",
        {
            "skewed_rows": HOT_KEYS * ROWS_PER_KEY,
            "corrupted_cardinality": CORRUPTED_CARDINALITY,
            "result_rows": len(oracle_rows),
            "best_seconds": {
                "misestimated": t_mis,
                "reopt_cold": t_cold,
                "warm_store": t_warm,
                "honest": t_honest,
            },
            "cold_speedup": cold_speedup,
            "warm_speedup": warm_speedup,
            "reoptimizations": reoptimizations,
            "learned_entries": learned_entries,
            "min_cold_speedup_required": MIN_COLD_SPEEDUP,
            "min_warm_speedup_required": MIN_WARM_SPEEDUP,
        },
    )

    assert cold_speedup >= MIN_COLD_SPEEDUP, (
        f"mid-query re-optimization is only {cold_speedup:.2f}x the "
        f"misestimated plan (need >= {MIN_COLD_SPEEDUP}x): "
        f"{fmt(t_cold)} vs {fmt(t_mis)}"
    )
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"the warm feedback store is only {warm_speedup:.2f}x the "
        f"misestimated plan (need >= {MIN_WARM_SPEEDUP}x): "
        f"{fmt(t_warm)} vs {fmt(t_mis)}"
    )
