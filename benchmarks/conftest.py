"""Benchmark fixtures: one scaled UIS database and a calibrated Tango,
shared across all figure benchmarks."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_SCALE  # noqa: E402

from repro.core.tango import Tango  # noqa: E402
from repro.dbms.database import MiniDB  # noqa: E402
from repro.workloads.uis import load_uis  # noqa: E402


@pytest.fixture(scope="session")
def bench_db() -> MiniDB:
    db = MiniDB()
    load_uis(db, scale=BENCH_SCALE)
    return db


@pytest.fixture(scope="session")
def tango(bench_db) -> Tango:
    middleware = Tango(bench_db)
    middleware.calibrate(sizes=(500, 1500), repeats=5)
    return middleware


@pytest.fixture(scope="session")
def uncalibrated_tango(bench_db) -> Tango:
    return Tango(bench_db)
