"""Equivalence-class and class-element counts per query (Section 5.2).

The paper reports, for its Volcano-based memo:

    Query 1: 12 classes,  29 elements
    Query 2: 142 classes, 452 elements
    Query 3: 104 classes, 301 elements
    Query 4: 13 classes,  30 elements

Our memo uses the same rule set but a canonicalizing application discipline
(see ``repro/optimizer/rules.py``), so absolute counts differ; the claim we
preserve is that Query 2 dominates the search space and that the counts are
small enough for sub-second optimization.  EXPERIMENTS.md records the
side-by-side numbers.
"""

from harness import print_series

from repro.workloads.queries import (
    query1_initial_plan,
    query2_initial_plan,
    query3_initial_plan,
    query4_initial_plan,
)

PAPER_COUNTS = {
    "Q1": (12, 29),
    "Q2": (142, 452),
    "Q3": (104, 301),
    "Q4": (13, 30),
}


def test_memo_counts_table(benchmark, tango):
    def measure():
        plans = {
            "Q1": query1_initial_plan(tango.db),
            "Q2": query2_initial_plan(tango.db, "1996-01-01"),
            "Q3": query3_initial_plan(tango.db, "1995-01-01"),
            "Q4": query4_initial_plan(tango.db),
        }
        return {
            name: tango.optimize(plan) for name, plan in plans.items()
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = []
    for name, result in results.items():
        paper_classes, paper_elements = PAPER_COUNTS[name]
        table.append(
            [
                name,
                result.class_count,
                result.element_count,
                paper_classes,
                paper_elements,
                result.passes,
            ]
        )
    print_series(
        "Equivalence classes / elements per query (ours vs paper)",
        ["query", "classes", "elements", "paper classes", "paper elements",
         "passes"],
        table,
    )
    # Shape: Query 2 dominates, every search stays small and terminates.
    q2 = results["Q2"]
    for name, result in results.items():
        assert result.element_count <= q2.element_count
        assert result.class_count < 1000
        assert result.passes < 12
