"""Figure 11(b) — Query 4 (regular join of POSITION and EMPLOYEE), three
plans, varying the POSITION size.

Paper findings to reproduce:

* Plan 2 (DBMS join) yields the best performance while "the other two
  plans are competitive";
* "the DBMS is faster when performing queries involving regular
  operations";
* the closeness of Plan 1 (middleware sort-merge) and Plan 3 (DBMS
  sort-merge) indicates the middleware's run-time overhead is small;
* the optimizer sends the join to the DBMS (and treats Plans 2/3 as one,
  having a single generic DBMS join formula).
"""

import pytest

from harness import Measurement, fmt, print_series, run_spec

from repro.workloads.queries import query4_initial_plan, query4_plans
from repro.workloads.uis import POSITION_VARIANTS


@pytest.mark.parametrize("plan_index", [0, 1, 2], ids=["P1-MW", "P2-NL", "P3-SM"])
def test_query4_plan_at_full_size(benchmark, tango, plan_index):
    spec = query4_plans(tango.db, "POSITION")[plan_index]
    benchmark.extra_info["plan"] = spec.description
    measurement = benchmark.pedantic(
        lambda: run_spec(tango, spec), rounds=3, iterations=1
    )
    assert measurement.rows > 0


def test_figure11b_series(benchmark, tango):
    def sweep():
        table_rows = []
        results: dict[tuple[int, str], Measurement] = {}
        for nominal in POSITION_VARIANTS:
            table = f"POSITION_{nominal}"
            measurements = [
                run_spec(tango, spec) for spec in query4_plans(tango.db, table)
            ]
            for measurement in measurements:
                results[(nominal, measurement.plan)] = measurement
            table_rows.append([nominal] + [fmt(m.seconds) for m in measurements])
        return table_rows, results

    table_rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Figure 11(b): Query 4 running times",
        ["tuples", "P1 (JOIN^M)", "P2 (NL^D)", "P3 (SM^D)"],
        table_rows,
    )
    largest = POSITION_VARIANTS[-1]
    specs = query4_plans(tango.db, f"POSITION_{largest}")
    # Best-of-3 timings at the largest size for the shape assertions —
    # single-run spikes (GC, scheduler) would make them flaky.
    p1 = min(run_spec(tango, specs[0]).seconds for _ in range(3))
    p2 = min(run_spec(tango, specs[1]).seconds for _ in range(3))
    p3 = min(run_spec(tango, specs[2]).seconds for _ in range(3))
    __ = results
    # The two sort-merge variants (middleware vs DBMS) must be competitive:
    # that is the paper's "TANGO overhead is insignificant" observation.
    ratio = max(p1, p3) / max(1e-9, min(p1, p3))
    assert ratio < 5.0, f"sort-merge variants diverged by {ratio:.1f}x"
    # The best DBMS plan is at least competitive with the middleware plan.
    assert min(p2, p3) < p1 * 2.0


def test_figure11b_optimizer_sends_join_to_dbms(benchmark, tango):
    """For Query 4 all plans are competitive (the paper's own finding), so
    the estimated costs of the middleware and DBMS joins sit within a few
    percent of each other.  The claims we hold the optimizer to: the DBMS
    placement dominates across the size sweep, and whatever it picks
    executes within a small factor of the best enumerated plan."""

    def choices():
        import time

        from repro.algebra.operators import Join, Location

        picked = []
        overheads = []
        for nominal in POSITION_VARIANTS:
            table = f"POSITION_{nominal}"
            result = tango.optimize(query4_initial_plan(tango.db, table))
            location = next(
                node.location
                for node in result.plan.walk()
                if isinstance(node, Join)
            )
            picked.append(location is Location.DBMS)
            begin = time.perf_counter()
            tango.execute_plan(result.plan)
            chosen_seconds = time.perf_counter() - begin
            best = min(
                run_spec(tango, spec).seconds
                for spec in query4_plans(tango.db, table)
            )
            overheads.append(chosen_seconds / max(best, 1e-9))
        return picked, overheads

    picked, overheads = benchmark.pedantic(choices, rounds=1, iterations=1)
    assert sum(picked) >= len(picked) - 2, (
        f"DBMS placement should dominate, got {picked}"
    )
    assert sorted(overheads)[len(overheads) // 2] < 6.0
