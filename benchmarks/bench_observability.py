"""Observability overhead — tracing must be (nearly) free on Query 1.

The design split: ``TangoConfig(tracing=True)`` builds span trees from
numbers the cursors track anyway (cardinalities, transfer timings), adding
no per-row work; ``explain_analyze`` wraps every cursor to time individual
``next()`` calls and is allowed to cost more, as EXPLAIN ANALYZE does in
any database.  This benchmark enforces the first half: < 10 % overhead on
the paper's Query 1, measured interleaved to cancel machine drift.
"""

import time

from harness import fmt, print_series

from repro.core.tango import Tango, TangoConfig
from repro.workloads.queries import query1_sql

ROUNDS = 15
OVERHEAD_BUDGET = 0.10


def timed_query(tango: Tango, sql: str) -> float:
    begin = time.perf_counter()
    tango.query(sql)
    return time.perf_counter() - begin


def test_tracing_overhead_under_budget(bench_db):
    sql = query1_sql()
    plain = Tango(bench_db)
    traced = Tango(bench_db, config=TangoConfig(tracing=True))
    for tango in (plain, traced):  # warm caches and statistics
        tango.query(sql)

    base_times, traced_times = [], []
    for _ in range(ROUNDS):
        base_times.append(timed_query(plain, sql))
        traced_times.append(timed_query(traced, sql))

    base, with_tracing = min(base_times), min(traced_times)
    overhead = with_tracing / base - 1.0
    print_series(
        "Tracing overhead, Query 1",
        ["variant", "best", "overhead"],
        [
            ["tracing off", fmt(base), "-"],
            ["tracing on", fmt(with_tracing), f"{overhead * 100:+.1f}%"],
        ],
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead:.1%} exceeds {OVERHEAD_BUDGET:.0%} "
        f"({fmt(with_tracing)} vs {fmt(base)})"
    )


def test_traced_query_still_correct(bench_db):
    """The traced run returns the same relation and a complete span tree."""
    sql = query1_sql()
    plain = Tango(bench_db)
    traced = Tango(bench_db, config=TangoConfig(tracing=True))
    expected = plain.query(sql).rows
    result = traced.query(sql)
    assert result.rows == expected
    assert result.trace.find(name="execute") is not None


def test_explain_analyze_overhead_is_reported(bench_db):
    """Not asserted against the budget — per-next() timing is the price of
    EXPLAIN ANALYZE — but printed so regressions are visible."""
    sql = query1_sql()
    tango = Tango(bench_db)
    tango.query(sql)
    base = min(timed_query(tango, sql) for _ in range(5))
    begin = time.perf_counter()
    report = tango.explain_analyze(sql)
    analyzed = time.perf_counter() - begin
    assert len(report) > 0
    print_series(
        "EXPLAIN ANALYZE, Query 1",
        ["variant", "seconds"],
        [["plain query", fmt(base)], ["explain_analyze", fmt(analyzed)]],
    )
