"""Figure 10 — Query 2 (selection + temporal aggregation + temporal join),
six plans, sweeping the selection time-period end from 1984 to 2000.

Paper findings to reproduce:

* Figure 10(a) (end ≤ 1990, highly selective): running times are similar
  and small; Plans 4 and 5 perform poorly — Plan 4 because ``TRANSFER^M``
  ships the whole base relation, Plan 5 because the unreduced aggregation
  argument is expensive;
* Figure 10(b) (end ≥ 1991): times grow rapidly; Plan 6 (all in DBMS)
  deteriorates fastest; Plan 1 deteriorates faster than Plans 2/3 because
  of its ``TRANSFER^D``;
* most POSITION data is concentrated after 1992, so the growth starts
  there.
"""

import pytest

from harness import Measurement, fmt, print_series, run_spec

from repro.workloads.queries import query2_plans

FIGURE_10A_ENDS = ("1984-01-01", "1986-01-01", "1988-01-01", "1990-01-01")
FIGURE_10B_ENDS = ("1992-01-01", "1994-01-01", "1996-01-01", "1998-01-01", "2000-01-01")


@pytest.mark.parametrize("plan_index", list(range(6)),
                         ids=["P1", "P2", "P3", "P4", "P5", "P6"])
def test_query2_plan_at_wide_window(benchmark, tango, plan_index):
    """Per-plan timing at the 1996 window end (pytest-benchmark)."""
    spec = query2_plans(tango.db, "1996-01-01")[plan_index]
    benchmark.extra_info["plan"] = spec.description
    measurement = benchmark.pedantic(
        lambda: run_spec(tango, spec), rounds=3, iterations=1
    )
    assert measurement.rows >= 0


def _sweep(tango, ends):
    table_rows = []
    results: dict[tuple[str, str], Measurement] = {}
    for end in ends:
        measurements = [
            run_spec(tango, spec) for spec in query2_plans(tango.db, end)
        ]
        for measurement in measurements:
            results[(end, measurement.plan)] = measurement
        table_rows.append([end[:4]] + [fmt(m.seconds) for m in measurements])
    return table_rows, results


def test_figure10a_selective_region(benchmark, tango):
    """Figure 10(a): end ≤ 1990."""
    table_rows, results = benchmark.pedantic(
        lambda: _sweep(tango, FIGURE_10A_ENDS), rounds=1, iterations=1
    )
    print_series(
        "Figure 10(a): Query 2, selective windows",
        ["end", "P1", "P2", "P3", "P4", "P5", "P6"],
        table_rows,
    )
    # Plans 4 and 5 pay for moving/aggregating the whole relation even when
    # the window is tiny: they must be the slow ones in this region.
    for end in FIGURE_10A_ENDS:
        fast = min(results[(end, f"Q2-P{i}")].seconds for i in (1, 2, 3))
        p4 = results[(end, "Q2-P4")].seconds
        p5 = results[(end, "Q2-P5")].seconds
        assert max(p4, p5) > fast, f"P4/P5 should trail at {end}"


def test_figure10b_relaxed_region(benchmark, tango):
    """Figure 10(b): end ≥ 1991 — rapid growth, Plan 6 deteriorates."""
    table_rows, results = benchmark.pedantic(
        lambda: _sweep(tango, FIGURE_10B_ENDS), rounds=1, iterations=1
    )
    print_series(
        "Figure 10(b): Query 2, relaxed windows",
        ["end", "P1", "P2", "P3", "P4", "P5", "P6"],
        table_rows,
    )
    last = FIGURE_10B_ENDS[-1]
    first = FIGURE_10B_ENDS[0]
    # Times increase rapidly after 1992 (data concentrated there).
    assert results[(last, "Q2-P2")].seconds > 2 * results[(first, "Q2-P2")].seconds
    # Plan 6 (TAGGR^D) deteriorates fastest as the aggregation argument grows.
    p6 = results[(last, "Q2-P6")].seconds
    p2 = results[(last, "Q2-P2")].seconds
    assert p6 > 2 * p2, "all-DBMS plan should deteriorate fastest"
    # Plans 2 and 3 stay the front-runners in the relaxed region.
    best = min(results[(last, f"Q2-P{i}")].seconds for i in range(1, 7))
    assert min(p2, results[(last, "Q2-P3")].seconds) <= best * 1.5


def test_figure10_optimizer_tracks_best_region(benchmark, tango):
    """With histograms, the paper's optimizer always returned Plan 2; check
    ours keeps aggregation + join in the middleware across the sweep."""

    def choices():
        from repro.algebra.operators import Location, TemporalAggregate, TemporalJoin
        from repro.workloads.queries import query2_initial_plan

        picked = []
        for end in FIGURE_10A_ENDS + FIGURE_10B_ENDS:
            result = tango.optimize(query2_initial_plan(tango.db, end))
            taggr_in_mw = any(
                node.location is Location.MIDDLEWARE
                for node in result.plan.walk()
                if isinstance(node, TemporalAggregate)
            )
            picked.append((end[:4], taggr_in_mw))
        return picked

    picked = benchmark.pedantic(choices, rounds=1, iterations=1)
    print_series("Query 2 optimizer choices", ["end", "TAGGR in middleware"],
                 [list(row) for row in picked])
    in_mw = [flag for _, flag in picked]
    # The wide windows — where it matters — must go to the middleware.
    assert all(in_mw[-3:])
