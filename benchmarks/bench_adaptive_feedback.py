"""Adaptive feedback — the abstract's headline mechanism.

"The middleware uses performance feedback from the DBMS to adapt its
partitioning of subsequent queries into middleware and DBMS parts."

The scenario: a middleware starts with badly stale transfer factors (as if
carried over from a slow networked deployment), making it avoid transfers
and leave everything in the DBMS.  With ``adaptive=True``, every executed
query feeds its observed TRANSFER^M/TRANSFER^D timings back into the cost
factors; within a handful of queries the partitioning converges to the
calibrated optimum (TAGGR^M in the middleware for Query 1).
"""

from dataclasses import replace

from harness import print_series

from repro.algebra.operators import Location, TemporalJoin
from repro.core.feedback import FeedbackAdapter
from repro.core.tango import Tango, TangoConfig
from repro.workloads.queries import query3_initial_plan

import pytest

#: Candidate Query 3 bounds; the test picks one whose placement genuinely
#: hinges on transfer costs under this session's calibration: calibrated
#: factors send the temporal join to the middleware, stale transfer
#: factors keep it in the DBMS.
CANDIDATE_BOUNDS = ("1996-01-01", "1997-01-01", "1998-01-01", "1999-01-01")


def _tjoin_location_under(tango, factors, bound) -> str:
    from repro.optimizer.search import Optimizer

    optimizer = Optimizer(tango.estimator, factors)
    result = optimizer.optimize(query3_initial_plan(tango.db, bound))
    node = next(n for n in result.plan.walk() if isinstance(n, TemporalJoin))
    return node.location.value


def _pick_probe_bound(tango, stale) -> str | None:
    for bound in CANDIDATE_BOUNDS:
        calibrated = _tjoin_location_under(tango, tango.factors, bound)
        under_stale = _tjoin_location_under(tango, stale, bound)
        if calibrated == "middleware" and under_stale == "dbms":
            return bound
    return None


def test_feedback_converges_partitioning(benchmark, bench_db, tango):
    # Transfer costs stale by orders of magnitude — as if carried over from
    # a deployment with a slow client-DBMS network.
    stale = replace(
        tango.factors,
        p_tmr=tango.factors.p_tmr * 5000 + 5000,
        p_tdr=tango.factors.p_tdr * 5000 + 5000,
    )
    probe_bound = _pick_probe_bound(tango, stale)
    if probe_bound is None:  # pragma: no cover - rare calibration corner
        pytest.skip("no transfer-sensitive Query 3 bound at this calibration")

    def _tjoin_location(middleware) -> str:
        result = middleware.optimize(
            query3_initial_plan(middleware.db, probe_bound)
        )
        node = next(
            n for n in result.plan.walk() if isinstance(n, TemporalJoin)
        )
        return node.location.value

    def run():
        adaptive = Tango(bench_db, config=TangoConfig(adaptive=True), factors=stale)
        adaptive.feedback = FeedbackAdapter(smoothing=0.6)
        history = []
        for round_number in range(12):
            placement = _tjoin_location(adaptive)
            history.append(
                [round_number, placement, f"{adaptive.factors.p_tmr:.1f}"]
            )
            if placement == Location.MIDDLEWARE.value and round_number >= 1:
                break
            # Execute *some* temporal query; its transfers feed back.
            adaptive.query(
                "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION_8000 "
                "GROUP BY PosID ORDER BY PosID"
            )
        return history, adaptive.feedback.observations_applied

    history, applied = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Adaptive feedback: Query 3 join placement vs queries executed",
        ["queries run", "TJOIN placement", "p_tmr (us/tuple)"],
        history,
    )
    print(f"\ntransfer observations applied: {applied}")
    assert history[0][1] == Location.DBMS.value, "stale factors start in DBMS"
    assert history[-1][1] == Location.MIDDLEWARE.value, (
        "feedback must converge the partitioning to the middleware"
    )
    assert applied >= 1