"""Ablation A2 — calibrated vs default cost factors.

The Cost Estimator fits the Figure 6 factors to the machine (after Du et
al.).  This ablation quantifies what calibration buys: how often the
optimizer's choice agrees with the wall-clock-best enumerated plan, with
and without calibration.
"""

from harness import print_series, run_spec

from repro.core.tango import Tango
from repro.workloads import queries


def _best_by_wall_clock(tango, specs):
    measured = [
        (run_spec(tango, spec).seconds, spec.name)
        for spec in specs
        if spec.plan is not None
    ]
    return min(measured)


def _agreement(tango, cases):
    hits = 0
    rows = []
    for label, initial, specs in cases:
        chosen_cost = tango.optimize(initial)
        import time

        samples = []
        for _ in range(2):  # best of two, against scheduler noise
            begin = time.perf_counter()
            tango.execute_plan(chosen_cost.plan)
            samples.append(time.perf_counter() - begin)
        chosen_seconds = min(samples)
        best_seconds, best_name = _best_by_wall_clock(tango, specs)
        close = chosen_seconds <= best_seconds * 1.75
        hits += close
        rows.append(
            [label, f"{chosen_seconds:.4f}s", f"{best_seconds:.4f}s ({best_name})",
             "yes" if close else "NO"]
        )
    return hits, rows


def _cases(db):
    cases = [("Q1", queries.query1_initial_plan(db), queries.query1_plans(db))]
    for end in ("1990-01-01", "1998-01-01"):
        cases.append(
            (f"Q2@{end[:4]}", queries.query2_initial_plan(db, end),
             queries.query2_plans(db, end))
        )
    for bound in ("1990-01-01", "1998-01-01"):
        cases.append(
            (f"Q3@{bound[:4]}", queries.query3_initial_plan(db, bound),
             queries.query3_plans(db, bound))
        )
    return cases


def test_calibration_ablation(benchmark, bench_db):
    def measure():
        calibrated = Tango(bench_db)
        calibrated.calibrate(sizes=(500, 1500))
        default = Tango(bench_db)  # stock CostFactors()
        cases = _cases(bench_db)
        hits_cal, rows_cal = _agreement(calibrated, cases)
        hits_def, rows_def = _agreement(default, cases)
        return (hits_cal, rows_cal), (hits_def, rows_def), len(cases)

    (hits_cal, rows_cal), (hits_def, rows_def), total = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print_series(
        "A2: calibrated factors — chosen plan vs wall-clock best",
        ["case", "chosen", "best (name)", "within 1.5x"],
        rows_cal,
    )
    print_series(
        "A2: default factors — chosen plan vs wall-clock best",
        ["case", "chosen", "best (name)", "within 1.5x"],
        rows_def,
    )
    print(f"\nagreement: calibrated {hits_cal}/{total}, default {hits_def}/{total}")
    # Single-run wall-clock classification is noisy; allow one case of slack
    # in the head-to-head, but the calibrated optimizer must track reality.
    assert hits_cal >= hits_def - 1, "calibration must not reduce agreement"
    assert hits_cal >= total - 1, "calibrated optimizer should track reality"
