"""Section 3.3's worked selectivity example, as a regenerable table.

The paper's relation: 100,000 tuples, 7-day periods uniformly distributed
over [1995-01-01, 2000-01-01); query ``Overlaps(1997-02-01, 1997-02-08)``.

Paper numbers:

* true result: 383 … 766 tuples (0.4-0.8 %);
* straightforward (independent-conjunct) estimate: 24.7 % — "a factor of
  40 too high!";
* semantic estimate (StartBefore − EndBefore): ≈0.8 %.
"""

import pytest

from harness import print_series

from repro.stats.collector import AttributeStats, RelationStats
from repro.stats.histogram import build_height_balanced
from repro.stats.selectivity import (
    naive_overlaps_selectivity,
    overlaps_selectivity,
    timeslice_selectivity,
)
from repro.temporal.timestamps import day_of
from repro.workloads.generator import TemporalRelationSpec, generate_rows

A = day_of("1997-02-01")
B = day_of("1997-02-08")


def build_relation():
    spec = TemporalRelationSpec()  # the paper's exact parameters
    rows = generate_rows(spec)
    t1_values = [float(row[2]) for row in rows]
    t2_values = [float(row[3]) for row in rows]
    stats_plain = RelationStats(
        cardinality=float(len(rows)),
        avg_row_size=24,
        attributes={
            "t1": AttributeStats("T1", min(t1_values), max(t1_values),
                                 len(set(t1_values))),
            "t2": AttributeStats("T2", min(t2_values), max(t2_values),
                                 len(set(t2_values))),
        },
    )
    stats_hist = RelationStats(
        cardinality=float(len(rows)),
        avg_row_size=24,
        attributes={
            "t1": AttributeStats("T1", min(t1_values), max(t1_values),
                                 len(set(t1_values)),
                                 build_height_balanced(t1_values, 10)),
            "t2": AttributeStats("T2", min(t2_values), max(t2_values),
                                 len(set(t2_values)),
                                 build_height_balanced(t2_values, 10)),
        },
    )
    return rows, stats_plain, stats_hist


def test_section33_worked_example(benchmark):
    def compute():
        rows, stats_plain, stats_hist = build_relation()
        count = len(rows)
        actual = sum(1 for row in rows if row[2] < B and row[3] > A)
        naive = naive_overlaps_selectivity(A, B, stats_plain) * count
        semantic = overlaps_selectivity(A, B, stats_plain) * count
        semantic_hist = overlaps_selectivity(A, B, stats_hist) * count
        return count, actual, naive, semantic, semantic_hist

    count, actual, naive, semantic, semantic_hist = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    print_series(
        "Section 3.3: Overlaps(1997-02-01, 1997-02-08) over 100k uniform tuples",
        ["estimator", "tuples", "% of relation", "error factor"],
        [
            ["actual", actual, f"{100 * actual / count:.2f}%", "1.0"],
            ["naive (independent)", f"{naive:.0f}",
             f"{100 * naive / count:.1f}%", f"{naive / actual:.1f}"],
            ["semantic (min/max)", f"{semantic:.0f}",
             f"{100 * semantic / count:.2f}%", f"{semantic / actual:.2f}"],
            ["semantic (histograms)", f"{semantic_hist:.0f}",
             f"{100 * semantic_hist / count:.2f}%",
             f"{semantic_hist / actual:.2f}"],
        ],
    )
    # The paper's headline numbers.
    assert 383 <= actual <= 766
    assert naive / count == pytest.approx(0.247, abs=0.02)
    assert 30 <= naive / actual <= 55          # "a factor of 40 too high"
    assert semantic / count == pytest.approx(0.008, abs=0.002)
    assert 0.4 <= semantic / actual <= 2.5     # close to the truth
    assert abs(semantic_hist - actual) <= abs(naive - actual)


def test_timeslice_estimate(benchmark):
    def compute():
        rows, stats_plain, _ = build_relation()
        actual = sum(1 for row in rows if row[2] <= A < row[3])
        estimate = timeslice_selectivity(A, stats_plain) * len(rows)
        return actual, estimate

    actual, estimate = benchmark.pedantic(compute, rounds=1, iterations=1)
    # About 383 tuples intersect each day (Section 3.3).
    assert actual == pytest.approx(383, rel=0.2)
    assert estimate == pytest.approx(actual, rel=0.5)
