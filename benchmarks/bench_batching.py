"""Batched execution and the plan cache — the fast paths, measured.

Four checks:

* the middleware aggregation stage (Query 1's ``TAGGR^M`` over its sorted
  argument) must run at least ``BENCH_BATCHING_MIN_SPEEDUP`` (default 2.0)
  times faster at ``batch_size=256`` than at ``batch_size=1``, the paper's
  row-at-a-time protocol;
* the columnar ``TAGGR^M`` path must beat the row-at-a-time COUNT fast
  path by ``BENCH_COLUMNAR_MIN_SPEEDUP`` (default 3.0) on the interval
  reporting shape it targets — an ungrouped multi-COUNT over
  coarse-granularity periods (the pure-python backend is gated; the numpy
  backend and the vectorization-hostile shapes are reported, not gated);
* end-to-end Query 1 must be no slower batched than row-at-a-time (the
  lenient form CI asserts on its tiny dataset);
* a repeated query must be answered from the plan cache without invoking
  the optimizer (asserted through the metrics registry, not timing).

All timings are best-of-N and interleaved to cancel machine drift.  Each
test appends its numbers to ``BENCH_BATCHING_JSON`` (default
``bench_batching_results.json``) so CI can archive the run.
"""

import json
import os
import time
from operator import itemgetter

import pytest
from harness import fmt, print_series

from repro.algebra.operators import AggregateSpec
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.core.tango import Tango, TangoConfig
from repro.dbms.database import MiniDB
from repro.workloads.queries import query1_plans, query1_sql
from repro.workloads.uis import load_uis
from repro.xxl.columnar import numpy_available
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_aggregate import TemporalAggregateCursor

ROUNDS = 11
BATCHED = 256
MIN_SPEEDUP = float(os.environ.get("BENCH_BATCHING_MIN_SPEEDUP", "2.0"))
COLUMNAR_MIN_SPEEDUP = float(os.environ.get("BENCH_COLUMNAR_MIN_SPEEDUP", "3.0"))
# The columnar comparison gets its own, larger dataset: the vectorized
# sweep's advantage grows with input size (its python-level work scales
# with distinct instants, not rows), and the shared 0.02-scale bench_db
# leaves the >=3x gate within measurement noise.
COLUMNAR_SCALE = float(os.environ.get("BENCH_COLUMNAR_SCALE", "0.05"))
RESULTS_PATH = os.environ.get("BENCH_BATCHING_JSON", "bench_batching_results.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def aggregation_input(bench_db) -> tuple[Schema, list[tuple]]:
    """Query 1's middleware-aggregation argument: the sorted projection
    that ``TRANSFER^M`` delivers to ``TAGGR^M`` (Figure 4's plan P1)."""
    rows = bench_db.query("SELECT PosID, T1, T2 FROM POSITION ORDER BY PosID, T1")
    schema = Schema(
        [
            Attribute("PosID"),
            Attribute("T1", AttrType.DATE),
            Attribute("T2", AttrType.DATE),
        ]
    )
    return schema, rows


def drain_aggregation(schema, rows, batch_size: int) -> float:
    source = RelationCursor(schema, rows)
    source.batch_size = batch_size
    taggr = TemporalAggregateCursor(
        source,
        group_by=["PosID"],
        aggregates=[AggregateSpec("COUNT", "PosID")],
    )
    taggr.batch_size = batch_size
    begin = time.perf_counter()
    while taggr.next_batch(batch_size):
        pass
    return time.perf_counter() - begin


def test_middleware_aggregation_speedup(bench_db):
    schema, rows = aggregation_input(bench_db)
    drain_aggregation(schema, rows, BATCHED)  # warm
    rowwise_times, batched_times = [], []
    for _ in range(ROUNDS):
        rowwise_times.append(drain_aggregation(schema, rows, 1))
        batched_times.append(drain_aggregation(schema, rows, BATCHED))
    rowwise, batched = min(rowwise_times), min(batched_times)
    speedup = rowwise / batched
    print_series(
        "Middleware aggregation (TAGGR^M), Query 1",
        ["batch size", "best", "tuples/s"],
        [
            ["1 (row-at-a-time)", fmt(rowwise), f"{len(rows) / rowwise:,.0f}"],
            [str(BATCHED), fmt(batched), f"{len(rows) / batched:,.0f}"],
            ["speedup", f"{speedup:.2f}x", "-"],
        ],
    )
    record(
        "middleware_aggregation",
        {
            "input_tuples": len(rows),
            "rowwise_seconds": rowwise,
            "batched_seconds": batched,
            "batch_size": BATCHED,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched aggregation is only {speedup:.2f}x row-at-a-time "
        f"(need >= {MIN_SPEEDUP}x): {fmt(batched)} vs {fmt(rowwise)}"
    )


@pytest.fixture(scope="module")
def columnar_db() -> MiniDB:
    db = MiniDB()
    load_uis(db, scale=COLUMNAR_SCALE, with_variants=False)
    return db


def columnar_aggregation_inputs(bench_db) -> dict[str, tuple[list, list, list]]:
    """``TAGGR^M`` workload shapes for the row-vs-columnar comparison.

    ``monthly``
        The gated shape: an ungrouped interval report — ``COUNT(*)`` next
        to ``COUNT(PosID)`` over POSITION validity periods snapped to
        30-day boundaries, T1-sorted.  Many rows share each event instant,
        which is exactly what the vectorized sweep exploits.
    ``raw``
        The same report at day granularity (nearly one distinct instant
        per row) — the sweep's worst ungrouped case, reported for honesty.
    ``grouped``
        Query 1's own argument (grouped by PosID, mean group ~8 rows) —
        the shape adaptive de-vectorization hands back to the row path.
    """
    both_counts = [AggregateSpec("COUNT", None), AggregateSpec("COUNT", "PosID")]
    raw = bench_db.query("SELECT PosID, T1, T2 FROM POSITION ORDER BY T1")
    monthly = sorted(
        (
            (pos, t1 - t1 % 30, t2 + (-t2) % 30 or t2 + 30)
            for pos, t1, t2 in raw
        ),
        key=itemgetter(1),
    )
    grouped = bench_db.query("SELECT PosID, T1, T2 FROM POSITION ORDER BY PosID, T1")
    return {
        "monthly": (monthly, [], both_counts),
        "raw": (raw, [], both_counts),
        "grouped": (grouped, ["PosID"], [AggregateSpec("COUNT", "PosID")]),
    }


def drain_columnar(schema, rows, group_by, aggregates, backend):
    """Drain one ``TAGGR^M`` over *rows*; returns (seconds, output rows)."""
    source = RelationCursor(schema, rows)
    source.batch_size = BATCHED
    taggr = TemporalAggregateCursor(source, group_by=group_by, aggregates=aggregates)
    taggr.batch_size = BATCHED
    if backend is not None:
        source.columnar = backend
        taggr.columnar = backend
    output = []
    begin = time.perf_counter()
    while True:
        batch = taggr.next_batch(BATCHED)
        if not batch:
            break
        output.extend(batch)
    return time.perf_counter() - begin, output


def test_columnar_taggr_speedup(columnar_db):
    schema = Schema(
        [
            Attribute("PosID"),
            Attribute("T1", AttrType.DATE),
            Attribute("T2", AttrType.DATE),
        ]
    )
    shapes = columnar_aggregation_inputs(columnar_db)
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    payload, table = {}, []
    for name, (rows, group_by, aggregates) in shapes.items():
        timings = {backend: [] for backend in [None] + backends}
        expected = drain_columnar(schema, rows, group_by, aggregates, None)[1]
        for backend in backends:  # warm + byte-identical output guard
            assert drain_columnar(schema, rows, group_by, aggregates, backend)[1] == expected
        for _ in range(ROUNDS):
            for backend, series in timings.items():
                series.append(drain_columnar(schema, rows, group_by, aggregates, backend)[0])
        rowwise = min(timings[None])
        entry = {"input_tuples": len(rows), "rowwise_seconds": rowwise, "speedups": {}}
        for backend in backends:
            best = min(timings[backend])
            entry[f"{backend}_seconds"] = best
            entry["speedups"][backend] = rowwise / best
            table.append(
                [name, backend, fmt(rowwise), fmt(best), f"{rowwise / best:.2f}x"]
            )
        payload[name] = entry
    print_series(
        f"Columnar TAGGR^M vs the row COUNT fast path [scale={COLUMNAR_SCALE}]",
        ["shape", "backend", "row best", "columnar best", "speedup"],
        table,
    )
    record("columnar_aggregation", {"scale": COLUMNAR_SCALE, "shapes": payload})
    gated = payload["monthly"]["speedups"]["python"]
    assert gated >= COLUMNAR_MIN_SPEEDUP, (
        f"columnar TAGGR^M (python backend) is only {gated:.2f}x the row "
        f"COUNT fast path on the interval-report shape "
        f"(need >= {COLUMNAR_MIN_SPEEDUP}x)"
    )


def test_end_to_end_query1_batched_not_slower(bench_db):
    spec = query1_plans(bench_db)[0]  # sort in DBMS, TAGGR^M in middleware
    rowwise_tango = Tango(bench_db, config=TangoConfig(batch_size=1))
    batched_tango = Tango(bench_db, config=TangoConfig(batch_size=BATCHED))
    for tango in (rowwise_tango, batched_tango):  # warm statistics
        tango.execute_plan(spec.plan)

    def timed(tango) -> float:
        begin = time.perf_counter()
        tango.execute_plan(spec.plan)
        return time.perf_counter() - begin

    rowwise_times, batched_times = [], []
    for _ in range(ROUNDS):
        rowwise_times.append(timed(rowwise_tango))
        batched_times.append(timed(batched_tango))
    rowwise, batched = min(rowwise_times), min(batched_times)
    speedup = rowwise / batched
    print_series(
        "End-to-end Query 1 (plan Q1-P1)",
        ["batch size", "best", "speedup"],
        [
            ["1 (row-at-a-time)", fmt(rowwise), "-"],
            [str(BATCHED), fmt(batched), f"{speedup:.2f}x"],
        ],
    )
    record(
        "end_to_end_query1",
        {
            "rowwise_seconds": rowwise,
            "batched_seconds": batched,
            "batch_size": BATCHED,
            "speedup": speedup,
        },
    )
    assert batched <= rowwise, (
        f"batched execution slower than row-at-a-time: "
        f"{fmt(batched)} vs {fmt(rowwise)}"
    )


def test_cached_rerun_skips_optimizer(bench_db):
    tango = Tango(bench_db)
    sql = query1_sql()
    first = tango.query(sql)
    assert tango.metrics.value("optimizer_runs") == 1
    begin = time.perf_counter()
    second = tango.query(sql)
    cached_seconds = time.perf_counter() - begin
    # The repeat is answered without invoking the optimizer at all.
    assert tango.metrics.value("optimizer_runs") == 1
    assert tango.metrics.value("plan_cache_hits") == 1
    assert second.rows == first.rows
    print_series(
        "Plan cache, Query 1 re-run",
        ["metric", "value"],
        [
            ["optimizer runs", tango.metrics.value("optimizer_runs")],
            ["plan cache hits", tango.metrics.value("plan_cache_hits")],
            ["cached re-run", fmt(cached_seconds)],
        ],
    )
    record(
        "plan_cache",
        {
            "optimizer_runs": tango.metrics.value("optimizer_runs"),
            "plan_cache_hits": tango.metrics.value("plan_cache_hits"),
            "cached_rerun_seconds": cached_seconds,
        },
    )
