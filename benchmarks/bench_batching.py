"""Batched execution and the plan cache — the two fast paths, measured.

Three checks:

* the middleware aggregation stage (Query 1's ``TAGGR^M`` over its sorted
  argument) must run at least ``BENCH_BATCHING_MIN_SPEEDUP`` (default 2.0)
  times faster at ``batch_size=256`` than at ``batch_size=1``, the paper's
  row-at-a-time protocol;
* end-to-end Query 1 must be no slower batched than row-at-a-time (the
  lenient form CI asserts on its tiny dataset);
* a repeated query must be answered from the plan cache without invoking
  the optimizer (asserted through the metrics registry, not timing).

All timings are best-of-N and interleaved to cancel machine drift.  Each
test appends its numbers to ``BENCH_BATCHING_JSON`` (default
``bench_batching_results.json``) so CI can archive the run.
"""

import json
import os
import time

from harness import fmt, print_series

from repro.algebra.operators import AggregateSpec
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.core.tango import Tango, TangoConfig
from repro.workloads.queries import query1_plans, query1_sql
from repro.xxl.sources import RelationCursor
from repro.xxl.temporal_aggregate import TemporalAggregateCursor

ROUNDS = 11
BATCHED = 256
MIN_SPEEDUP = float(os.environ.get("BENCH_BATCHING_MIN_SPEEDUP", "2.0"))
RESULTS_PATH = os.environ.get("BENCH_BATCHING_JSON", "bench_batching_results.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def aggregation_input(bench_db) -> tuple[Schema, list[tuple]]:
    """Query 1's middleware-aggregation argument: the sorted projection
    that ``TRANSFER^M`` delivers to ``TAGGR^M`` (Figure 4's plan P1)."""
    rows = bench_db.query("SELECT PosID, T1, T2 FROM POSITION ORDER BY PosID, T1")
    schema = Schema(
        [
            Attribute("PosID"),
            Attribute("T1", AttrType.DATE),
            Attribute("T2", AttrType.DATE),
        ]
    )
    return schema, rows


def drain_aggregation(schema, rows, batch_size: int) -> float:
    source = RelationCursor(schema, rows)
    source.batch_size = batch_size
    taggr = TemporalAggregateCursor(
        source,
        group_by=["PosID"],
        aggregates=[AggregateSpec("COUNT", "PosID")],
    )
    taggr.batch_size = batch_size
    begin = time.perf_counter()
    while taggr.next_batch(batch_size):
        pass
    return time.perf_counter() - begin


def test_middleware_aggregation_speedup(bench_db):
    schema, rows = aggregation_input(bench_db)
    drain_aggregation(schema, rows, BATCHED)  # warm
    rowwise_times, batched_times = [], []
    for _ in range(ROUNDS):
        rowwise_times.append(drain_aggregation(schema, rows, 1))
        batched_times.append(drain_aggregation(schema, rows, BATCHED))
    rowwise, batched = min(rowwise_times), min(batched_times)
    speedup = rowwise / batched
    print_series(
        "Middleware aggregation (TAGGR^M), Query 1",
        ["batch size", "best", "tuples/s"],
        [
            ["1 (row-at-a-time)", fmt(rowwise), f"{len(rows) / rowwise:,.0f}"],
            [str(BATCHED), fmt(batched), f"{len(rows) / batched:,.0f}"],
            ["speedup", f"{speedup:.2f}x", "-"],
        ],
    )
    record(
        "middleware_aggregation",
        {
            "input_tuples": len(rows),
            "rowwise_seconds": rowwise,
            "batched_seconds": batched,
            "batch_size": BATCHED,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched aggregation is only {speedup:.2f}x row-at-a-time "
        f"(need >= {MIN_SPEEDUP}x): {fmt(batched)} vs {fmt(rowwise)}"
    )


def test_end_to_end_query1_batched_not_slower(bench_db):
    spec = query1_plans(bench_db)[0]  # sort in DBMS, TAGGR^M in middleware
    rowwise_tango = Tango(bench_db, config=TangoConfig(batch_size=1))
    batched_tango = Tango(bench_db, config=TangoConfig(batch_size=BATCHED))
    for tango in (rowwise_tango, batched_tango):  # warm statistics
        tango.execute_plan(spec.plan)

    def timed(tango) -> float:
        begin = time.perf_counter()
        tango.execute_plan(spec.plan)
        return time.perf_counter() - begin

    rowwise_times, batched_times = [], []
    for _ in range(ROUNDS):
        rowwise_times.append(timed(rowwise_tango))
        batched_times.append(timed(batched_tango))
    rowwise, batched = min(rowwise_times), min(batched_times)
    speedup = rowwise / batched
    print_series(
        "End-to-end Query 1 (plan Q1-P1)",
        ["batch size", "best", "speedup"],
        [
            ["1 (row-at-a-time)", fmt(rowwise), "-"],
            [str(BATCHED), fmt(batched), f"{speedup:.2f}x"],
        ],
    )
    record(
        "end_to_end_query1",
        {
            "rowwise_seconds": rowwise,
            "batched_seconds": batched,
            "batch_size": BATCHED,
            "speedup": speedup,
        },
    )
    assert batched <= rowwise, (
        f"batched execution slower than row-at-a-time: "
        f"{fmt(batched)} vs {fmt(rowwise)}"
    )


def test_cached_rerun_skips_optimizer(bench_db):
    tango = Tango(bench_db)
    sql = query1_sql()
    first = tango.query(sql)
    assert tango.metrics.value("optimizer_runs") == 1
    begin = time.perf_counter()
    second = tango.query(sql)
    cached_seconds = time.perf_counter() - begin
    # The repeat is answered without invoking the optimizer at all.
    assert tango.metrics.value("optimizer_runs") == 1
    assert tango.metrics.value("plan_cache_hits") == 1
    assert second.rows == first.rows
    print_series(
        "Plan cache, Query 1 re-run",
        ["metric", "value"],
        [
            ["optimizer runs", tango.metrics.value("optimizer_runs")],
            ["plan cache hits", tango.metrics.value("plan_cache_hits")],
            ["cached re-run", fmt(cached_seconds)],
        ],
    )
    record(
        "plan_cache",
        {
            "optimizer_runs": tango.metrics.value("optimizer_runs"),
            "plan_cache_hits": tango.metrics.value("plan_cache_hits"),
            "cached_rerun_seconds": cached_seconds,
        },
    )
