"""Ablation A3 — JDBC row-prefetch size vs TRANSFER^M time (Section 3.2).

"Experiments with Oracle show that the performance is also affected by the
row-prefetch setting, which specifies the number of tuples fetched at a
time by JDBC to a client-side buffer."  The paper leaves the setting out of
the cost formula because it is DBMS-specific; this ablation shows the
effect the remark refers to, in both wall-clock and simulated ticks.
"""

import time

from harness import print_series

from repro.dbms.jdbc import Connection
from repro.xxl.sources import SQLCursor

PREFETCH_SIZES = (1, 10, 100, 1000)


def test_prefetch_ablation(benchmark, bench_db):
    def measure():
        rows = []
        ticks = {}
        seconds = {}
        for prefetch in PREFETCH_SIZES:
            connection = Connection(bench_db, prefetch=prefetch)
            bench_db.meter.reset()
            cursor = SQLCursor(connection, "SELECT * FROM POSITION")
            begin = time.perf_counter()
            fetched = sum(1 for _ in cursor.init())
            elapsed = time.perf_counter() - begin
            seconds[prefetch] = elapsed
            ticks[prefetch] = bench_db.meter.ticks
            rows.append([prefetch, f"{elapsed:.4f}s", ticks[prefetch], fetched])
        return rows, seconds, ticks

    rows, seconds, ticks = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "A3: TRANSFER^M of POSITION vs JDBC row prefetch",
        ["prefetch", "wall-clock", "simulated ticks", "rows"],
        rows,
    )
    # More round trips → more simulated transfer work, monotonically.
    assert ticks[1] > ticks[10] > ticks[100] >= ticks[1000]
    # The effect the paper observed: tiny prefetch is measurably slower.
    assert seconds[1] >= seconds[1000] * 0.8
