"""Partition-parallel execution, measured: Query 1 at workers 1/2/4.

The exchange layer's speedup comes from overlapping DBMS wire latency
across partitions, so this benchmark runs in the paper's remote-DBMS
regime: every connection sleeps ``BENCH_PARALLEL_LATENCY`` seconds per
round trip (default 10 ms; the sleep releases the GIL, exactly like a
socket read).  With latency at zero — the in-process default — partition
parallelism buys nothing and the optimizer's startup term keeps plans
serial; that configuration is covered by the equivalence suite instead.

Asserted here:

* workers=4 answers Query 1 at least ``BENCH_PARALLEL_MIN_SPEEDUP``
  (default 1.5) times faster than workers=1 on the same dataset;
* every worker count returns exactly the serial rows;
* the run records ``parallel_efficiency`` (Σ partition busy time over
  wall time x partitions) for the archive.

Numbers land in ``BENCH_PARALLEL_JSON`` (default
``bench_parallel_results.json``) so CI can gate and archive the run.
"""

import json
import os
import time

from harness import fmt, print_series

from repro.core.tango import Tango, TangoConfig
from repro.workloads.queries import query1_sql

ROUNDS = 3
WORKER_COUNTS = (1, 2, 4)
LATENCY = float(os.environ.get("BENCH_PARALLEL_LATENCY", "0.01"))
MIN_SPEEDUP = float(os.environ.get("BENCH_PARALLEL_MIN_SPEEDUP", "1.5"))
RESULTS_PATH = os.environ.get("BENCH_PARALLEL_JSON", "bench_parallel_results.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def test_query1_parallel_speedup(bench_db):
    sql = query1_sql()
    tangos = {
        workers: Tango(
            bench_db,
            config=TangoConfig(
                workers=workers, network_latency_seconds=LATENCY
            ),
        )
        for workers in WORKER_COUNTS
    }
    rows = {w: t.query(sql).rows for w, t in tangos.items()}  # warm + verify
    assert rows[2] == rows[1] and rows[4] == rows[1]

    best = {workers: float("inf") for workers in WORKER_COUNTS}
    for _ in range(ROUNDS):  # interleaved to cancel machine drift
        for workers, tango in tangos.items():
            begin = time.perf_counter()
            tango.query(sql)
            best[workers] = min(best[workers], time.perf_counter() - begin)

    efficiency = {
        workers: tango.metrics.histogram("parallel_efficiency").mean
        for workers, tango in tangos.items()
    }
    partitions = {
        workers: tango.metrics.value("exchange_partitions")
        for workers, tango in tangos.items()
    }
    speedup = {workers: best[1] / best[workers] for workers in WORKER_COUNTS}
    print_series(
        f"Parallel Query 1 (wire latency {LATENCY * 1e3:.0f}ms/round trip)",
        ["workers", "best", "speedup", "efficiency"],
        [
            [
                str(workers),
                fmt(best[workers]),
                f"{speedup[workers]:.2f}x",
                f"{efficiency[workers]:.2f}" if workers > 1 else "-",
            ]
            for workers in WORKER_COUNTS
        ],
    )
    record(
        "parallel_query1",
        {
            "latency_seconds": LATENCY,
            "result_rows": len(rows[1]),
            "best_seconds": {str(w): best[w] for w in WORKER_COUNTS},
            "speedup": {str(w): speedup[w] for w in WORKER_COUNTS},
            "parallel_efficiency": {
                str(w): efficiency[w] for w in WORKER_COUNTS if w > 1
            },
            "min_speedup_required": MIN_SPEEDUP,
        },
    )
    for tango in tangos.values():
        tango.close()

    assert partitions[4] >= 2, "workers=4 never fanned out an exchange"
    assert speedup[4] >= MIN_SPEEDUP, (
        f"workers=4 is only {speedup[4]:.2f}x workers=1 "
        f"(need >= {MIN_SPEEDUP}x): {fmt(best[4])} vs {fmt(best[1])}"
    )
