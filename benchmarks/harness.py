"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark measures *both* currencies described in DESIGN.md:

* wall-clock seconds of the pure-Python implementation;
* MiniDB's deterministic simulated ticks (I/O-weighted work units).

The relative plan ordering — who wins, where the crossover falls — is the
paper-facing result; absolute values depend on the machine and on
``REPRO_BENCH_SCALE`` (fraction of the paper's relation cardinalities,
default 0.02 ≈ 1,677 POSITION tuples).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.core.tango import Tango
from repro.workloads.queries import PlanSpec

#: Fraction of the paper's cardinalities the benchmark dataset uses.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@dataclass
class Measurement:
    """One plan execution: timing, simulated work, and the result size."""

    plan: str
    seconds: float
    ticks: int
    rows: int


def run_spec(tango: Tango, spec: PlanSpec) -> Measurement:
    """Execute one enumerated plan (algebra tree or raw hinted SQL).

    Both paths go through Tango and yield a
    :class:`~repro.core.tango.QueryResult` — hinted SQL takes the stratum
    passthrough, which is ``db.execute`` plus result packaging.
    """
    meter = tango.db.meter
    before_ticks = meter.ticks
    begin = time.perf_counter()
    if spec.plan is not None:
        result = tango.execute_plan(spec.plan)
    else:
        assert spec.sql is not None
        result = tango.query(spec.sql)
    seconds = time.perf_counter() - begin
    return Measurement(
        spec.name, seconds, meter.ticks - before_ticks, len(result.rows)
    )


def print_series(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Print one figure's data series as an aligned text table."""
    print(f"\n== {title} (scale={BENCH_SCALE}) ==")
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def fmt(seconds: float) -> str:
    return f"{seconds:.4f}s"
