"""Robustness (Section 5.1): "does [the optimizer] return plans that fall
within, say, 20 % of the best plans".

For every sweep point of Queries 1-3 we execute the optimizer's chosen
plan and every enumerated plan, and report the chosen plan's wall-clock
overhead over the best enumerated plan.  The paper's criterion is checked
as a median over the sweep (single-run wall-clock at benchmark scale is
noisy; the median is the honest statistic).
"""

import statistics

from harness import print_series, run_spec

from repro.workloads import queries


def _chosen_seconds(tango, initial_plan):
    result = tango.optimize(initial_plan)
    import time

    samples = []
    for _ in range(2):  # best of two against one-off scheduler spikes
        begin = time.perf_counter()
        tango.execute_plan(result.plan)
        samples.append(time.perf_counter() - begin)
    return min(samples)


def test_robustness_table(benchmark, tango):
    def measure():
        rows = []
        overheads = []
        cases = []
        cases.append(
            ("Q1", queries.query1_initial_plan(tango.db),
             queries.query1_plans(tango.db))
        )
        for end in ("1990-01-01", "1996-01-01", "1999-01-01"):
            cases.append(
                (f"Q2@{end[:4]}",
                 queries.query2_initial_plan(tango.db, end),
                 queries.query2_plans(tango.db, end))
            )
        for bound in ("1990-01-01", "1996-01-01", "1998-01-01"):
            cases.append(
                (f"Q3@{bound[:4]}",
                 queries.query3_initial_plan(tango.db, bound),
                 queries.query3_plans(tango.db, bound))
            )
        for label, initial, specs in cases:
            chosen = _chosen_seconds(tango, initial)
            enumerated = [
                run_spec(tango, spec).seconds
                for spec in specs
                if spec.plan is not None
            ]
            best = min(enumerated)
            overhead = chosen / best if best > 0 else 1.0
            overheads.append(overhead)
            rows.append(
                [label, f"{chosen:.4f}s", f"{best:.4f}s", f"{overhead:.2f}x"]
            )
        return rows, overheads

    rows, overheads = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "Optimizer robustness: chosen plan vs best enumerated plan",
        ["case", "chosen", "best enumerated", "overhead"],
        rows,
    )
    median = statistics.median(overheads)
    print(f"\nmedian overhead: {median:.2f}x (paper target: within ~20%)")
    assert median <= 1.35, f"median overhead {median:.2f}x exceeds tolerance"
    # No catastrophic misses anywhere in the sweep (generous bound: the
    # sub-10ms cases are dominated by noise).
    assert max(overheads) <= 5.0
