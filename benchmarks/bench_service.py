"""The query service under sustained multi-tenant load, measured.

Three experiments against one shared scaled-UIS database:

* **sustained mixed traffic** — eight closed-loop tenants (one query in
  flight each) submit a Query 1–4 mix for ``BENCH_SERVICE_SECONDS``;
  gated on p50/p95/p99 end-to-end latency (submit → result) and on
  overall throughput.  This is the serving-layer headline: concurrency
  without starvation, bounded tails.
* **weighted fairness** — a weight-1 batch tenant floods the queue, a
  weight-8 interactive tenant arrives late; the interactive tenant's
  mean queue wait must stay well under the batch tenant's.  A
  low-priority tenant cannot starve a high-priority one.
* **sickness shedding** — with every DBMS round trip faulted and
  fallback off, the health monitor classifies the backend SICK and new
  admissions are refused with :class:`~repro.errors.BackendSickError`
  (counted in ``service_shed_total``) instead of queueing unboundedly.

Latency gates default to generous values so the benchmark is a tripwire
for regressions, not a flaky wall-clock test; CI's smoke job tightens the
duration, not the gates.  Numbers land in ``BENCH_SERVICE_JSON`` (default
``bench_service_results.json``) so CI can archive the percentile series.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core.tango import TangoConfig
from repro.errors import BackendSickError, QueueFullError, ReproError
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy
from repro.resilience.health import BackendState, HealthPolicy
from repro.service import QueryService, ServiceConfig, TenantSpec
from repro.workloads.queries import (
    query1_sql,
    query2_initial_plan,
    query3_initial_plan,
    query4_initial_plan,
)

#: Wall-clock seconds of sustained traffic (CI smoke shortens this).
DURATION = float(os.environ.get("BENCH_SERVICE_SECONDS", "6"))
#: Concurrent closed-loop tenants (the ISSUE floor is 8).
TENANTS = int(os.environ.get("BENCH_SERVICE_TENANTS", "8"))
#: Worker threads inside the service.
CONCURRENCY = int(os.environ.get("BENCH_SERVICE_CONCURRENCY", "4"))
#: Latency gates, seconds (generous tripwires, not tight SLOs).
P95_GATE = float(os.environ.get("BENCH_SERVICE_P95", "5.0"))
P99_GATE = float(os.environ.get("BENCH_SERVICE_P99", "10.0"))
#: Minimum sustained queries/second across all tenants.
MIN_QPS = float(os.environ.get("BENCH_SERVICE_MIN_QPS", "1.0"))
RESULTS_PATH = os.environ.get("BENCH_SERVICE_JSON", "bench_service_results.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) by nearest-rank on sorted samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def mixed_workload(db) -> list:
    """The Query 1–4 mix every tenant cycles through: temporal SQL plus
    three initial plans (the service admits either form)."""
    return [
        query1_sql(),
        query2_initial_plan(db, "1996-01-01"),
        query3_initial_plan(db, "1998-01-01"),
        query4_initial_plan(db),
    ]


def test_sustained_mixed_traffic(bench_db):
    workload = mixed_workload(bench_db)
    config = ServiceConfig(
        max_concurrency=CONCURRENCY,
        queue_limit=TENANTS * 4,
        tenants=tuple(
            # Half the fleet carries double weight, so the fair-share
            # path (not plain FIFO) is what gets measured.
            TenantSpec(f"tenant{index}", weight=2 if index % 2 else 1)
            for index in range(TENANTS)
        ),
    )
    latencies: dict[str, list[float]] = {
        f"tenant{index}": [] for index in range(TENANTS)
    }
    errors: list[BaseException] = []

    with QueryService(bench_db, config) as service:
        deadline = time.monotonic() + DURATION

        def tenant_loop(name: str, offset: int) -> None:
            step = offset
            try:
                while time.monotonic() < deadline:
                    handle = service.submit(
                        workload[step % len(workload)], tenant=name
                    )
                    handle.result(timeout=120)
                    latencies[name].append(handle.total_seconds)
                    step += 1
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        begin = time.monotonic()
        threads = [
            threading.Thread(
                target=tenant_loop, args=(f"tenant{index}", index)
            )
            for index in range(TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - begin
        snapshot = service.snapshot()

    assert not errors, f"tenant loops failed: {errors[:3]}"
    all_latencies = [
        sample for samples in latencies.values() for sample in samples
    ]
    completed = len(all_latencies)
    qps = completed / elapsed
    p50 = percentile(all_latencies, 0.50)
    p95 = percentile(all_latencies, 0.95)
    p99 = percentile(all_latencies, 0.99)
    print(
        f"\nservice sustained load: {TENANTS} tenants x {elapsed:.1f}s -> "
        f"{completed} queries, {qps:.1f} qps, "
        f"p50={p50 * 1e3:.1f}ms p95={p95 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms"
    )
    record(
        "sustained_mixed_traffic",
        {
            "tenants": TENANTS,
            "concurrency": CONCURRENCY,
            "duration_seconds": elapsed,
            "completed": completed,
            "qps": qps,
            "p50_seconds": p50,
            "p95_seconds": p95,
            "p99_seconds": p99,
            "per_tenant_completed": {
                name: len(samples) for name, samples in latencies.items()
            },
            "snapshot": snapshot,
        },
    )
    # Every tenant made sustained progress — nobody starved outright.
    assert all(latencies[f"tenant{index}"] for index in range(TENANTS))
    assert completed >= TENANTS, "each tenant must complete at least once"
    assert qps >= MIN_QPS, f"throughput collapsed: {qps:.2f} qps < {MIN_QPS}"
    assert p95 <= P95_GATE, f"p95 {p95:.2f}s blew the {P95_GATE}s gate"
    assert p99 <= P99_GATE, f"p99 {p99:.2f}s blew the {P99_GATE}s gate"


def test_weighted_fairness_no_starvation(bench_db):
    """A weight-1 flood must not starve a weight-8 tenant (ISSUE gate)."""
    workload = mixed_workload(bench_db)
    config = ServiceConfig(
        max_concurrency=2,
        queue_limit=256,
        tenants=(
            TenantSpec("batch", weight=1),
            TenantSpec("interactive", weight=8),
        ),
    )
    with QueryService(bench_db, config) as service:
        flood = [
            service.submit(workload[index % len(workload)], tenant="batch")
            for index in range(30)
        ]
        probes = [
            service.submit(workload[index % len(workload)], tenant="interactive")
            for index in range(10)
        ]
        for probe in probes:
            probe.result(timeout=300)
        flood_pending_at_probe_done = sum(
            1 for handle in flood if not handle.done
        )
        for handle in flood:
            handle.result(timeout=300)

    batch_waits = [handle.queue_seconds for handle in flood]
    interactive_waits = [handle.queue_seconds for handle in probes]
    mean_batch = sum(batch_waits) / len(batch_waits)
    mean_interactive = sum(interactive_waits) / len(interactive_waits)
    print(
        f"\nfairness: interactive mean wait {mean_interactive * 1e3:.1f}ms vs "
        f"batch {mean_batch * 1e3:.1f}ms "
        f"({flood_pending_at_probe_done} flood queries still pending when "
        f"the last probe finished)"
    )
    record(
        "weighted_fairness",
        {
            "mean_batch_wait_seconds": mean_batch,
            "mean_interactive_wait_seconds": mean_interactive,
            "flood_pending_when_probes_done": flood_pending_at_probe_done,
        },
    )
    # The high-weight tenant jumped the flood: waits strictly shorter on
    # average, and a chunk of the earlier-submitted flood still queued.
    assert mean_interactive < mean_batch
    assert flood_pending_at_probe_done >= 5


def test_sick_backend_sheds_instead_of_queueing(bench_db):
    """Injected backend sickness: admission shifts to shedding with a
    distinct error and ``service_shed_total``, queue stays bounded."""
    injector = FaultInjector(
        FaultPolicy(round_trip_p=1.0, load_chunk_p=1.0), seed=11
    )
    config = ServiceConfig(
        max_concurrency=2,
        queue_limit=8,
        health=HealthPolicy(min_samples=2, window_seconds=600.0),
    )
    tango_config = TangoConfig(
        retry=RetryPolicy(
            max_attempts=2, base_delay_seconds=0.0, max_delay_seconds=0.0
        ),
        fallback=False,
    )
    service = QueryService(
        bench_db, config, tango_config=tango_config, fault_injector=injector
    )
    sheds = 0
    failures = 0
    try:
        for _ in range(40):
            try:
                handle = service.submit(query1_sql())
            except BackendSickError:
                sheds += 1
                continue
            except QueueFullError:
                continue
            try:
                handle.result(timeout=120)
            except ReproError:
                failures += 1
        counters = service.metrics.to_dict()["counters"]
        state = service.health.classify()
        queued = service.scheduler.queued_total
    finally:
        service.close()
    print(
        f"\nsickness: {failures} failures drove state={state.value}, "
        f"{sheds} submissions shed, queue depth {queued}"
    )
    record(
        "sickness_shedding",
        {
            "failures": failures,
            "sheds": sheds,
            "state": state.value,
            "shed_total_counter": counters.get("service_shed_total", 0),
        },
    )
    assert failures >= 2, "fault injection should exhaust retries"
    assert state is BackendState.SICK
    assert sheds >= 1, "SICK backend must shed new admissions"
    assert counters.get("service_shed_total", 0) >= sheds
    assert counters.get("service_shed_sick_total", 0) >= 1
    assert queued <= config.queue_limit, "the admission queue must stay bounded"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
