"""Figure 8 — Query 1 (temporal aggregation), three plans over the eight
POSITION size variants.

Paper findings to reproduce (shape, not absolute numbers):

* Plans 1 and 2 (TAGGR^M, sort in DBMS or middleware) significantly
  outperform Plan 3 (TAGGR^D in SQL);
* "processing in the middleware can be up to ten times faster, if a query
  involves temporal aggregation";
* the two middleware plans stay close to each other.
"""

import pytest

from harness import Measurement, fmt, print_series, run_spec

from repro.workloads.queries import query1_plans
from repro.workloads.uis import POSITION_VARIANTS


@pytest.mark.parametrize("plan_index", [0, 1, 2], ids=["P1", "P2", "P3"])
def test_query1_plan_at_full_size(benchmark, tango, plan_index):
    """Per-plan timing at the full POSITION relation (pytest-benchmark)."""
    spec = query1_plans(tango.db)[plan_index]
    benchmark.extra_info["plan"] = spec.description

    def run():
        return run_spec(tango, spec)

    measurement = benchmark.pedantic(run, rounds=3, iterations=1)
    assert measurement.rows > 0


def test_figure8_series(benchmark, tango):
    """Regenerate the Figure 8 data series and check its shape."""

    def sweep() -> list[list[object]]:
        table_rows: list[list[object]] = []
        results: dict[tuple[int, str], Measurement] = {}
        for nominal in POSITION_VARIANTS + (83_857,):
            table = "POSITION" if nominal == 83_857 else f"POSITION_{nominal}"
            measurements = [
                run_spec(tango, spec) for spec in query1_plans(tango.db, table)
            ]
            for measurement in measurements:
                results[(nominal, measurement.plan)] = measurement
            table_rows.append(
                [nominal]
                + [fmt(m.seconds) for m in measurements]
                + [m.ticks for m in measurements]
            )
        sweep.results = results  # type: ignore[attr-defined]
        return table_rows

    table_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Figure 8: Query 1 running times",
        ["tuples", "P1 (sortD+TAGGR^M)", "P2 (sortM+TAGGR^M)", "P3 (TAGGR^D)",
         "P1 ticks", "P2 ticks", "P3 ticks"],
        table_rows,
    )

    results = sweep.results  # type: ignore[attr-defined]
    largest = max(POSITION_VARIANTS + (83_857,))
    p1 = results[(largest, "Q1-P1")]
    p2 = results[(largest, "Q1-P2")]
    p3 = results[(largest, "Q1-P3")]
    # Shape assertions: the middleware plans beat the DBMS plan decisively
    # at the largest size, and track each other closely.
    assert p3.seconds > 3 * p1.seconds, "TAGGR^D should be far slower"
    assert p3.ticks > 3 * p1.ticks
    assert p2.seconds < p3.seconds
    speedup = p3.seconds / p1.seconds
    print(f"\nmiddleware speedup at {largest} tuples: {speedup:.1f}x "
          f"(paper: up to ~10x)")


def test_figure8_optimizer_always_picks_middleware_plan(benchmark, tango):
    """Paper: "for all queries, the optimizer selects the first plan"."""

    def choices():
        from repro.algebra.operators import Location, TemporalAggregate
        from repro.workloads.queries import query1_initial_plan

        picked = []
        for nominal in POSITION_VARIANTS:
            result = tango.optimize(
                query1_initial_plan(tango.db, f"POSITION_{nominal}")
            )
            taggr_location = next(
                node.location
                for node in result.plan.walk()
                if isinstance(node, TemporalAggregate)
            )
            picked.append(taggr_location is Location.MIDDLEWARE)
        return picked

    picked = benchmark.pedantic(choices, rounds=1, iterations=1)
    assert all(picked)
