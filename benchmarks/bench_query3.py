"""Figure 11(a) — Query 3 (temporal self-join), two plans, sweeping the
maximum allowed time-period start.

Paper findings to reproduce:

* as the bound relaxes, Plan 2 (temporal join in the middleware) pulls
  ahead of Plan 1 (all in the DBMS), because the join result outgrows the
  arguments and Plan 1 pays DBMS sorting plus transfer of that result;
* "the difference in performance becomes obvious when the maximum
  time-period start reaches year 1996, since about 65 % of the POSITION
  tuples have time-periods starting at 1995 or later".
"""

import pytest

from harness import Measurement, fmt, print_series, run_spec

from repro.workloads.queries import query3_initial_plan, query3_plans

BOUNDS = (
    "1988-01-01", "1990-01-01", "1992-01-01", "1994-01-01",
    "1995-01-01", "1996-01-01", "1997-01-01", "1998-01-01", "1999-01-01",
)


@pytest.mark.parametrize("plan_index", [0, 1], ids=["P1", "P2"])
def test_query3_plan_at_late_bound(benchmark, tango, plan_index):
    spec = query3_plans(tango.db, "1998-01-01")[plan_index]
    benchmark.extra_info["plan"] = spec.description
    measurement = benchmark.pedantic(
        lambda: run_spec(tango, spec), rounds=3, iterations=1
    )
    assert measurement.rows > 0


def test_figure11a_series(benchmark, tango):
    def sweep():
        table_rows = []
        results: dict[tuple[str, str], Measurement] = {}
        for bound in BOUNDS:
            measurements = [
                run_spec(tango, spec) for spec in query3_plans(tango.db, bound)
            ]
            for measurement in measurements:
                results[(bound, measurement.plan)] = measurement
            table_rows.append(
                [bound[:4]]
                + [fmt(m.seconds) for m in measurements]
                + [measurements[0].rows]
            )
        return table_rows, results

    table_rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Figure 11(a): Query 3 running times",
        ["bound", "P1 (DBMS)", "P2 (TJOIN^M)", "result rows"],
        table_rows,
    )
    late = BOUNDS[-1]
    p1 = results[(late, "Q3-P1")]
    p2 = results[(late, "Q3-P2")]
    # Plan 2 clearly ahead once most tuples qualify.
    assert p2.seconds < p1.seconds
    assert p2.ticks < p1.ticks
    # The gap widens along the sweep: compare relative gaps early vs late.
    early = BOUNDS[0]
    early_gap = results[(early, "Q3-P1")].seconds - results[(early, "Q3-P2")].seconds
    late_gap = p1.seconds - p2.seconds
    assert late_gap > early_gap


def test_figure11a_optimizer_flips_to_middleware(benchmark, tango):
    """The paper's optimizer returned Plan 1 for the first six bounds and
    Plan 2 for the last three.  With our calibrated in-process transfer
    costs the flip point sits earlier (transfers are cheaper than over
    Oracle's client network — see EXPERIMENTS.md), but the late bounds must
    land in the middleware and choices must be monotone."""

    def choices():
        from repro.algebra.operators import Location, TemporalJoin

        picked = []
        for bound in BOUNDS:
            result = tango.optimize(query3_initial_plan(tango.db, bound))
            location = next(
                node.location
                for node in result.plan.walk()
                if isinstance(node, TemporalJoin)
            )
            picked.append((bound[:4], location is Location.MIDDLEWARE))
        return picked

    picked = benchmark.pedantic(choices, rounds=1, iterations=1)
    print_series(
        "Query 3 optimizer choices",
        ["bound", "TJOIN in middleware"],
        [list(row) for row in picked],
    )
    flags = [flag for _, flag in picked]
    assert all(flags[-2:]), "late bounds must run the join in the middleware"
    assert not flags[0], "the most selective bound should stay in the DBMS"
    # Once the optimizer moves to the middleware it should not flip back.
    first_mw = flags.index(True) if True in flags else len(flags)
    assert all(flags[first_mw:])
