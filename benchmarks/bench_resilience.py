"""Resilience under chaos, measured.

Runs the paper's four queries fault-free and again under seeded transient
faults (``BENCH_CHAOS_P``, default 0.2, on round trips and load chunks):

* both runs must return identical answers (chaos costs latency, never
  correctness);
* the chaos run must actually retry (nonzero ``retries``) and must not
  leak a single ``TANGO_TMP`` table;
* the chaos run's simulated DBMS work must stay within
  ``BENCH_CHAOS_MAX_OVERHEAD``× of fault-free (default 3.0) — retries
  re-send individual calls, they do not re-run queries.

Each run's metrics registry is snapshotted into ``BENCH_CHAOS_JSON``
(default ``bench_resilience_metrics.json``) so CI can archive the numbers.
"""

import json
import os

from harness import print_series

from repro.core.tango import Tango, TangoConfig
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy
from repro.workloads import queries

CHAOS_P = float(os.environ.get("BENCH_CHAOS_P", "0.2"))
CHAOS_SEED = int(os.environ.get("BENCH_CHAOS_SEED", "20010521"))
MAX_OVERHEAD = float(os.environ.get("BENCH_CHAOS_MAX_OVERHEAD", "3.0"))
RESULTS_PATH = os.environ.get("BENCH_CHAOS_JSON", "bench_resilience_metrics.json")

#: Chaos-grade retries: generous attempts, no real backoff sleep, so the
#: benchmark measures retry *work*, not timer waits.
CHAOS_RETRY = RetryPolicy(
    max_attempts=10, budget=100_000, base_delay_seconds=0.0, max_delay_seconds=0.0
)


def four_queries(db):
    return {
        "Q1": queries.query1_sql(),
        "Q2": queries.query2_initial_plan(db, "1996-01-01"),
        "Q3": queries.query3_initial_plan(db, "1995-01-01"),
        "Q4": queries.query4_initial_plan(db),
    }


def run_all(tango, workload):
    answers = {}
    for name, query in workload.items():
        if isinstance(query, str):
            answers[name] = tango.query(query).rows
        else:
            answers[name] = tango.execute_plan(tango.optimize(query).plan).rows
    return answers


def snapshot(section: str, payload: dict) -> None:
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def test_chaos_identity_and_overhead(bench_db):
    workload = four_queries(bench_db)
    config = TangoConfig(retry=CHAOS_RETRY)

    meter = bench_db.meter
    baseline_tango = Tango(bench_db, config=config)
    before = meter.ticks
    baseline = run_all(baseline_tango, workload)
    baseline_ticks = meter.ticks - before

    injector = FaultInjector(
        FaultPolicy(round_trip_p=CHAOS_P, load_chunk_p=CHAOS_P), seed=CHAOS_SEED
    )
    chaos_tango = Tango(bench_db, config=config, fault_injector=injector)
    before = meter.ticks
    chaotic = run_all(chaos_tango, workload)
    chaos_ticks = meter.ticks - before

    for name in workload:
        assert chaotic[name] == baseline[name], f"{name} changed under chaos"
    leaked = [t for t in bench_db.list_tables() if t.startswith("TANGO_TMP")]
    assert leaked == [], f"leaked temp tables: {leaked}"

    retries = chaos_tango.metrics.value("retries")
    faults = injector.faults_injected
    assert faults > 0, "chaos run injected no faults — nothing was exercised"
    assert retries > 0

    overhead = chaos_ticks / max(1, baseline_ticks)
    print_series(
        f"chaos p={CHAOS_P} seed={CHAOS_SEED}",
        ["run", "ticks", "retries", "faults", "fallbacks"],
        [
            ["fault-free", baseline_ticks, 0, 0, 0],
            [
                "chaos",
                chaos_ticks,
                retries,
                faults,
                chaos_tango.metrics.value("fallbacks"),
            ],
        ],
    )
    snapshot(
        "chaos_run",
        {
            "chaos_p": CHAOS_P,
            "seed": CHAOS_SEED,
            "baseline_ticks": baseline_ticks,
            "chaos_ticks": chaos_ticks,
            "overhead": overhead,
            "faults_injected": faults,
            "metrics": chaos_tango.metrics.flush(),
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"chaos overhead {overhead:.2f}x exceeds {MAX_OVERHEAD}x"
    )
