"""Ablation A4 — the adaptability headline: the DBMS's temporal-processing
penalty governs the middleware/DBMS split.

TANGO exists because SQL rewrites of temporal operations are expensive in a
conventional DBMS.  This ablation simulates a DBMS with progressively
better native temporal support by scaling the measured ``TAGGR^D`` and
generic-join factors down, and watches the optimizer adapt: with cheap
DBMS temporal processing every operation stays below the ``T^M`` (the
middleware degenerates to a pure stratum); at the measured penalties the
temporal operators migrate into the middleware.

This is also the forward-looking statement of the paper's Section 7: when
vendors "incorporate temporal features into their products", the same
cost-based apportioning automatically hands the work back to the DBMS.
"""

from dataclasses import replace

from harness import print_series

from repro.algebra.operators import Location, TemporalAggregate, TemporalJoin
from repro.optimizer.search import Optimizer
from repro.workloads.queries import (
    query1_initial_plan,
    query2_initial_plan,
    query3_initial_plan,
)

PENALTY_SCALES = (0.02, 0.1, 0.3, 1.0)


def _location_of(plan, node_type):
    return next(
        node.location for node in plan.walk() if isinstance(node, node_type)
    )


def test_dbms_temporal_penalty_ablation(benchmark, tango):
    def measure():
        base = tango.factors
        rows = []
        placements = []
        for scale in PENALTY_SCALES:
            factors = replace(
                base,
                p_taggd1=base.p_taggd1 * scale,
                p_taggd2=base.p_taggd2 * scale,
                p_joind=base.p_joind * scale,
            )
            optimizer = Optimizer(tango.estimator, factors)
            q1 = _location_of(
                optimizer.optimize(query1_initial_plan(tango.db)).plan,
                TemporalAggregate,
            )
            q2 = _location_of(
                optimizer.optimize(
                    query2_initial_plan(tango.db, "1998-01-01")
                ).plan,
                TemporalAggregate,
            )
            q3 = _location_of(
                optimizer.optimize(
                    query3_initial_plan(tango.db, "1998-01-01")
                ).plan,
                TemporalJoin,
            )
            placements.append((scale, q1, q2, q3))
            rows.append(
                [f"{scale}x", q1.value, q2.value, q3.value]
            )
        return rows, placements

    rows, placements = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "A4: operator placement vs DBMS temporal-processing penalty",
        ["penalty scale", "Q1 TAGGR", "Q2 TAGGR", "Q3 TJOIN"],
        rows,
    )
    # A DBMS with near-native temporal support keeps everything.
    cheapest = placements[0]
    assert cheapest[1] is Location.DBMS
    assert cheapest[2] is Location.DBMS
    assert cheapest[3] is Location.DBMS
    # At the measured penalties, the temporal operators migrate up.
    measured = placements[-1]
    assert measured[1] is Location.MIDDLEWARE
    assert measured[2] is Location.MIDDLEWARE
    # Monotone: once an operator migrates, it does not come back as the
    # DBMS gets more expensive.
    for column in (1, 2, 3):
        flags = [p[column] is Location.MIDDLEWARE for p in placements]
        first = flags.index(True) if True in flags else len(flags)
        assert all(flags[first:])
