"""Incremental view maintenance vs full recompute, measured.

The scenario: a temporal-join view — a ~4000-row UIS fact relation
joined on its key against a one-row-per-key dimension — maintained under
seeded update streams of varying churn against the fact side.  The
bilinear delta rule makes the incremental path truly delta-sized
(ΔL ⋈ S_new; the dimension never changes, so the L_old ⋈ ΔS term
vanishes), while the full path re-runs the whole join through the
optimizer and engine.  Two twin middleware instances see identical
streams; one refreshes through the cost-based chooser, the other is
forced to recompute from scratch every time.

Asserted here:

* every refresh — whatever strategy the chooser picks — leaves the view
  byte-identical to a from-scratch recompute of its defining query;
* at low churn (2% per batch) the chooser picks the incremental path and
  is at least ``BENCH_VIEWS_MIN_SPEEDUP`` (default 2.0) times faster per
  refresh than always recomputing;
* at high churn (every row replaced per batch) the chooser falls back to
  full and loses at most ``BENCH_VIEWS_MAX_HIGH_CHURN_LOSS`` (default
  1.10, i.e. 10%) against always-full — the decision overhead must stay
  in the noise;
* the churn level where the chooser's decision actually crosses from
  incremental to full is measured and reported, not assumed.

Numbers land in ``BENCH_VIEWS_JSON`` (default ``BENCH_views.json``) so
CI can gate and archive the run.
"""

import json
import os
import time

from harness import fmt, print_series

from repro.algebra.builder import scan
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.core.tango import Tango
from repro.dbms.database import MiniDB
from repro.dbms.loader import DirectPathLoader
from repro.fuzz.compare import canonical_rows
from repro.workloads.generator import (
    ColumnSpec,
    RandomRelationSpec,
    UpdateStreamSpec,
    generate_relation_rows,
    generate_update_stream,
)

BASE_ROWS = 4000
KEYS = 400
ROUNDS = 5
LOW_CHURN = 0.02
HIGH_CHURN = 1.0
CROSSOVER_SWEEP = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
MIN_SPEEDUP = float(os.environ.get("BENCH_VIEWS_MIN_SPEEDUP", "2.0"))
MAX_HIGH_CHURN_LOSS = float(
    os.environ.get("BENCH_VIEWS_MAX_HIGH_CHURN_LOSS", "1.10")
)
RESULTS_PATH = os.environ.get("BENCH_VIEWS_JSON", "BENCH_views.json")


def record(section: str, payload: dict) -> None:
    """Merge one test's numbers into the shared JSON results file."""
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2)


def base_spec() -> RandomRelationSpec:
    return RandomRelationSpec(
        name="BASE",
        columns=(ColumnSpec("K0", AttrType.INT, distinct=KEYS),),
        cardinality=BASE_ROWS,
        window_start=0,
        window_end=365,
        max_duration=30,
        skew=0.5,
        seed=13,
    )


DIM_SCHEMA = Schema(
    [
        Attribute("K0", AttrType.INT),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def make_tango() -> Tango:
    spec = base_spec()
    db = MiniDB()
    loader = DirectPathLoader(db)
    loader.load(
        spec.name, spec.schema, generate_relation_rows(spec), temporary=False
    )
    # One wide-period dimension row per key: every fact row matches once.
    loader.load(
        "DIM",
        DIM_SCHEMA,
        [(key, 0, 365) for key in range(KEYS)],
        temporary=False,
    )
    db.analyze(spec.name)
    db.analyze("DIM")
    return Tango(db)


def view_plan(db):
    return (
        scan(db, "BASE")
        .temporal_join(scan(db, "DIM").build(), "K0", "K0")
        .to_middleware()
        .build()
    )


def refresh_timed(tango: Tango, strategy):
    begin = time.perf_counter()
    outcome = tango.refresh_view("V", strategy=strategy)
    return time.perf_counter() - begin, outcome


def scratch_rows(tango: Tango) -> list[tuple]:
    plan = view_plan(tango.db)
    return canonical_rows(tango.execute_plan(tango.optimize(plan).plan).rows)


def run_stream(churn: float, stream_seed: int):
    """Twin instances, identical batches; chooser vs always-full.

    Returns (best chooser seconds, best full seconds, strategies picked,
    total delta rows applied).
    """
    chooser, full = make_tango(), make_tango()
    chooser.create_view("V", view_plan(chooser.db))
    full.create_view("V", view_plan(full.db))
    batches = generate_update_stream(
        base_spec(),
        UpdateStreamSpec(
            batches=ROUNDS, churn=churn, insert_fraction=0.5, seed=stream_seed
        ),
    )
    best_chooser, best_full = float("inf"), float("inf")
    strategies, delta_rows = [], 0
    for batch in batches:
        delta_rows += batch.rows
        chooser.apply_updates("BASE", batch.inserts, batch.deletes)
        full.apply_updates("BASE", batch.inserts, batch.deletes)
        elapsed, outcome = refresh_timed(chooser, None)
        best_chooser = min(best_chooser, elapsed)
        strategies.append(outcome.strategy)
        elapsed, _ = refresh_timed(full, "full")
        best_full = min(best_full, elapsed)
        assert list(chooser.db.table("V").rows) == list(full.db.table("V").rows)
    # Whatever path was taken, the view is byte-identical to scratch.
    assert list(chooser.db.table("V").rows) == scratch_rows(chooser)
    chooser.close()
    full.close()
    return best_chooser, best_full, strategies, delta_rows


def measure_crossover() -> float | None:
    """The lowest swept churn where the chooser's decision is full."""
    for churn in CROSSOVER_SWEEP:
        tango = make_tango()
        tango.create_view("V", view_plan(tango.db))
        batch = generate_update_stream(
            base_spec(),
            UpdateStreamSpec(
                batches=1, churn=churn, insert_fraction=0.5, seed=29
            ),
        )[0]
        tango.apply_updates("BASE", batch.inserts, batch.deletes)
        decision = tango.views.choose("V")
        tango.close()
        if decision.strategy == "full":
            return churn
    return None


def test_incremental_maintenance_beats_full_recompute():
    t_inc, t_full_low, low_strategies, low_delta = run_stream(LOW_CHURN, 17)
    assert all(strategy == "incremental" for strategy in low_strategies), (
        f"the chooser abandoned the incremental path at {LOW_CHURN:.0%} "
        f"churn: {low_strategies}"
    )
    t_high, t_full_high, high_strategies, high_delta = run_stream(
        HIGH_CHURN, 23
    )
    assert all(strategy == "full" for strategy in high_strategies), (
        f"the chooser kept merging deltas at {HIGH_CHURN:.0%} churn: "
        f"{high_strategies}"
    )
    crossover = measure_crossover()

    speedup = t_full_low / t_inc
    high_ratio = t_high / t_full_high
    print_series(
        f"View refresh: cost-based chooser vs always-full "
        f"({BASE_ROWS} fact rows x {KEYS} dimension keys, best of {ROUNDS})",
        ["churn", "chooser", "always-full", "ratio", "picked"],
        [
            [f"{LOW_CHURN:.0%}", fmt(t_inc), fmt(t_full_low),
             f"{speedup:.2f}x faster", "incremental"],
            [f"{HIGH_CHURN:.0%}", fmt(t_high), fmt(t_full_high),
             f"{high_ratio:.2f}x of full", "full"],
            ["crossover",
             f"{crossover:.0%}" if crossover is not None else ">100%",
             "-", "-", "decision flips"],
        ],
    )
    record(
        "views",
        {
            "base_rows": BASE_ROWS,
            "dimension_keys": KEYS,
            "rounds": ROUNDS,
            "low_churn": LOW_CHURN,
            "high_churn": HIGH_CHURN,
            "low_delta_rows": low_delta,
            "high_delta_rows": high_delta,
            "best_seconds": {
                "chooser_low_churn": t_inc,
                "full_low_churn": t_full_low,
                "chooser_high_churn": t_high,
                "full_high_churn": t_full_high,
            },
            "low_churn_speedup": speedup,
            "high_churn_ratio": high_ratio,
            "crossover_churn": crossover,
            "min_speedup_required": MIN_SPEEDUP,
            "max_high_churn_loss": MAX_HIGH_CHURN_LOSS,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental refresh is only {speedup:.2f}x always-full at "
        f"{LOW_CHURN:.0%} churn (need >= {MIN_SPEEDUP}x): "
        f"{fmt(t_inc)} vs {fmt(t_full_low)}"
    )
    assert high_ratio <= MAX_HIGH_CHURN_LOSS, (
        f"the chooser costs {high_ratio:.2f}x always-full at "
        f"{HIGH_CHURN:.0%} churn (allowed <= {MAX_HIGH_CHURN_LOSS}x): "
        f"{fmt(t_high)} vs {fmt(t_full_high)}"
    )
