"""Ablation A1 — histograms on/off for temporal selectivity (Section 5.2).

The paper: "when used without histograms, the optimizer returned the
second plan for the six queries with the time-period end varying from
January 1, 1984 to January 1, 1989, and the first plan for all other
queries.  When used with histograms, the optimizer always returned the
second plan ... because it could more accurately estimate the result size
of the temporal selection."

We measure what the ablation actually changes: the accuracy of the
temporal-selection cardinality estimate across the Query 2 sweep, and
whether the resulting plan choice (aggregation/join placement) is stable.
"""

from harness import print_series

from repro.core.tango import Tango, TangoConfig
from repro.temporal.timestamps import day_of
from repro.workloads.queries import Q2_PERIOD_START, query2_initial_plan

ENDS = ("1986-01-01", "1990-01-01", "1993-01-01", "1996-01-01", "1999-01-01")


def test_histogram_ablation_estimates(benchmark, bench_db):
    def measure():
        with_hist = Tango(bench_db, config=TangoConfig(use_histograms=True))
        without = Tango(bench_db, config=TangoConfig(use_histograms=False))
        start = day_of(Q2_PERIOD_START)
        position = bench_db.table("POSITION")
        schema = position.schema
        t1 = schema.index_of("T1")
        t2 = schema.index_of("T2")
        rows = []
        errors = {"with": [], "without": []}
        for end in ENDS:
            end_day = day_of(end)
            actual = sum(
                1 for row in position.rows
                if row[t1] < end_day and row[t2] > start
            )
            from repro.algebra.builder import scan
            from repro.algebra.expressions import Comparison, col, lit

            predicate = (
                Comparison("<", col("T1"), lit(end_day))
                & Comparison(">", col("T2"), lit(start))
            )
            plan = scan(bench_db, "POSITION").select(predicate).build()
            est_with = with_hist.estimator.estimate(plan).cardinality
            est_without = without.estimator.estimate(plan).cardinality
            for key, estimate in (("with", est_with), ("without", est_without)):
                errors[key].append(
                    abs(estimate - actual) / max(1, actual)
                )
            rows.append(
                [end[:4], actual, f"{est_with:.0f}", f"{est_without:.0f}"]
            )
        return rows, errors

    rows, errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "A1: temporal-selection cardinality, histograms on/off",
        ["end", "actual", "est (hist)", "est (no hist)"],
        rows,
    )
    mean_with = sum(errors["with"]) / len(errors["with"])
    mean_without = sum(errors["without"]) / len(errors["without"])
    print(f"\nmean relative error: with={mean_with:.2f} without={mean_without:.2f}")
    # Histograms must not hurt, and must help overall on this skewed data.
    assert mean_with <= mean_without + 0.02


def test_histogram_ablation_choices_stay_sound(benchmark, bench_db):
    """Both configurations must still produce valid, correct plans — the
    ablation degrades estimates, not correctness."""

    def measure():
        outcomes = []
        for use_histograms in (True, False):
            tango = Tango(bench_db, config=TangoConfig(use_histograms=use_histograms))
            result = tango.optimize(query2_initial_plan(bench_db, "1996-01-01"))
            rows = tango.execute_plan(result.plan).rows
            outcomes.append((use_histograms, result.cost, len(rows)))
        return outcomes

    outcomes = benchmark.pedantic(measure, rounds=1, iterations=1)
    (_, _, rows_with), (_, _, rows_without) = outcomes
    assert rows_with == rows_without
