"""Statistics collection and selectivity estimation.

* :mod:`repro.stats.histogram` — height- and width-balanced histograms in the
  shapes maintained by conventional DBMSs.
* :mod:`repro.stats.collector` — the paper's Statistics Collector component:
  pulls base-relation and attribute statistics out of the DBMS catalog.
* :mod:`repro.stats.selectivity` — Section 3.3: ``StartBefore``/``EndBefore``
  and the temporal-predicate estimators built from them, next to the naive
  independent-predicate baseline they improve upon.
* :mod:`repro.stats.cardinality` — result-cardinality derivation for every
  algebra operator, including the temporal-aggregation bounds of Section 3.4.
"""

from repro.stats.histogram import Histogram, build_height_balanced, build_width_balanced
from repro.stats.collector import StatisticsCollector, RelationStats, AttributeStats
from repro.stats.selectivity import (
    start_before,
    end_before,
    overlaps_selectivity,
    timeslice_selectivity,
    naive_overlaps_selectivity,
)
from repro.stats.cardinality import CardinalityEstimator

__all__ = [
    "Histogram",
    "build_height_balanced",
    "build_width_balanced",
    "StatisticsCollector",
    "RelationStats",
    "AttributeStats",
    "start_before",
    "end_before",
    "overlaps_selectivity",
    "timeslice_selectivity",
    "naive_overlaps_selectivity",
    "CardinalityEstimator",
]
