"""Histograms in the shapes conventional DBMSs maintain.

Section 3.3 defines ``StartBefore``/``EndBefore`` over a histogram ``H``
through four accessor functions:

* ``b1(i, H)`` / ``b2(i, H)`` — start and end value of bucket *i*;
* ``bVal(i, H)`` — number of attribute values in bucket *i*;
* ``bNo(A, H)`` — the bucket that value ``A`` falls into.

Both *height-balanced* histograms (equal tuple counts per bucket — Oracle's
default) and *width-balanced* histograms (equal value ranges per bucket) are
provided behind the same interface, exactly as the paper notes the formulas
work for either.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.errors import StatisticsError


@dataclass(frozen=True)
class Histogram:
    """A bucketed summary of a numeric column.

    ``bounds`` has one more entry than ``counts``; bucket *i* covers the
    value range ``[bounds[i], bounds[i + 1])`` — except the last bucket,
    which is closed on both ends so the column maximum belongs to it.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    kind: str = "height-balanced"

    def __post_init__(self) -> None:
        if len(self.bounds) != len(self.counts) + 1:
            raise StatisticsError("histogram bounds/counts lengths are inconsistent")
        if len(self.counts) == 0:
            raise StatisticsError("histogram must have at least one bucket")
        if any(b2 < b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise StatisticsError("histogram bounds must be non-decreasing")

    # -- the paper's accessor functions ---------------------------------------

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    def b1(self, i: int) -> float:
        """Start value of bucket *i* (0-based)."""
        return self.bounds[i]

    def b2(self, i: int) -> float:
        """End value of bucket *i* (0-based)."""
        return self.bounds[i + 1]

    def b_val(self, i: int) -> int:
        """Number of attribute values in bucket *i*."""
        return self.counts[i]

    def b_no(self, value: float) -> int:
        """Bucket index that *value* belongs to, clamped to valid buckets."""
        if value <= self.bounds[0]:
            return 0
        if value >= self.bounds[-1]:
            return self.num_buckets - 1
        # rightmost bucket whose start is <= value
        index = bisect.bisect_right(self.bounds, value) - 1
        return min(index, self.num_buckets - 1)

    # -- estimation -------------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts)

    def values_below(self, value: float) -> float:
        """Estimated number of column values strictly below *value*.

        Sums full preceding buckets and linearly interpolates within the
        bucket containing *value* — the paper's ``StartBefore`` shape.
        """
        if value <= self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            return float(self.total)
        bucket = self.b_no(value)
        below = float(sum(self.counts[:bucket]))
        width = self.b2(bucket) - self.b1(bucket)
        if width <= 0:
            return below
        fraction = (value - self.b1(bucket)) / width
        return below + fraction * self.b_val(bucket)

    def selectivity_below(self, value: float) -> float:
        """``values_below`` normalized to [0, 1]."""
        if self.total == 0:
            return 0.0
        return self.values_below(value) / self.total


def build_height_balanced(values: Sequence[float], num_buckets: int = 10) -> Histogram:
    """Build a height-balanced histogram (equal tuple count per bucket).

    This is what Oracle's ``ANALYZE ... COMPUTE STATISTICS`` produces and
    hence what the Statistics Collector finds in the catalog.
    """
    if not values:
        raise StatisticsError("cannot build a histogram over no values")
    ordered = sorted(values)
    count = len(ordered)
    buckets = max(1, min(num_buckets, count))
    bounds: list[float] = [float(ordered[0])]
    counts: list[int] = []
    previous_index = 0
    for bucket in range(1, buckets + 1):
        boundary_index = round(bucket * count / buckets)
        boundary_index = max(boundary_index, previous_index + 1)
        boundary_index = min(boundary_index, count)
        upper = float(ordered[boundary_index - 1])
        if upper <= bounds[-1] and bucket < buckets:
            # Degenerate bucket (heavy duplicates); widen minimally so bounds
            # stay non-decreasing while counts remain exact.
            upper = bounds[-1]
        bounds.append(upper)
        counts.append(boundary_index - previous_index)
        previous_index = boundary_index
        if previous_index >= count:
            break
    return Histogram(tuple(bounds), tuple(counts), "height-balanced")


def build_width_balanced(values: Sequence[float], num_buckets: int = 10) -> Histogram:
    """Build a width-balanced histogram (equal value range per bucket)."""
    if not values:
        raise StatisticsError("cannot build a histogram over no values")
    low = float(min(values))
    high = float(max(values))
    buckets = max(1, num_buckets)
    if high == low:
        return Histogram((low, high), (len(values),), "width-balanced")
    width = (high - low) / buckets
    counts = [0] * buckets
    for value in values:
        index = int((value - low) / width)
        if index >= buckets:
            index = buckets - 1
        counts[index] += 1
    bounds = tuple(low + i * width for i in range(buckets)) + (high,)
    return Histogram(bounds, tuple(counts), "width-balanced")
