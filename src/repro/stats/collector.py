"""The Statistics Collector component (Figure 1).

"The Statistics Collector component obtains statistics on base relations and
attributes from the DBMS catalog and provides them to the optimizer."

This module defines the middleware-side statistics records
(:class:`RelationStats` / :class:`AttributeStats`) — deliberately decoupled
from MiniDB's internal catalog classes, since a real deployment would parse
whatever shape the vendor's statistics views have — and the collector that
fills them from the DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import StatisticsError
from repro.stats.histogram import Histogram


@dataclass(frozen=True)
class AttributeStats:
    """Middleware view of one attribute's statistics."""

    name: str
    min_value: float | None = None
    max_value: float | None = None
    distinct: int = 0
    histogram: Histogram | None = None
    has_index: bool = False
    index_clustered: bool = False

    @property
    def value_range(self) -> float | None:
        if self.min_value is None or self.max_value is None:
            return None
        return float(self.max_value) - float(self.min_value)

    def scaled_to(self, cardinality: float) -> "AttributeStats":
        """Clamp the distinct count to a (reduced) relation cardinality."""
        distinct = min(self.distinct, int(cardinality)) if self.distinct else 0
        return replace(self, distinct=max(distinct, 1 if cardinality >= 1 else 0))


@dataclass(frozen=True)
class RelationStats:
    """Middleware view of one relation's statistics.

    Used both for base relations (filled by the collector) and for
    intermediate results (derived by
    :class:`repro.stats.cardinality.CardinalityEstimator`).
    """

    cardinality: float
    avg_row_size: int
    blocks: int = 0
    attributes: dict[str, AttributeStats] = field(default_factory=dict)

    @property
    def size(self) -> float:
        """The paper's ``size(r)``: cardinality × average tuple size."""
        return self.cardinality * self.avg_row_size

    def attribute(self, name: str) -> AttributeStats:
        """Stats for *name*; a pessimistic default when unknown."""
        found = self.attributes.get(name.lower())
        if found is not None:
            return found
        return AttributeStats(
            name=name, distinct=max(1, int(self.cardinality))
        )

    def has_histogram(self, name: str) -> bool:
        """The paper's ``hasHistogram(A, r)``."""
        stats = self.attributes.get(name.lower())
        return stats is not None and stats.histogram is not None

    def with_cardinality(self, cardinality: float) -> "RelationStats":
        """A copy scaled to a new cardinality (same attribute shapes)."""
        cardinality = max(0.0, cardinality)
        scaled = {
            key: stats.scaled_to(cardinality)
            for key, stats in self.attributes.items()
        }
        blocks = max(1, int(cardinality * self.avg_row_size // 8192)) if cardinality else 0
        return RelationStats(cardinality, self.avg_row_size, blocks, scaled)


class StatisticsCollector:
    """Pulls base-relation statistics out of the DBMS catalog.

    *connection* is a :class:`repro.dbms.jdbc.Connection`.  Results are
    cached per table name; call :meth:`refresh` after data changes.
    """

    def __init__(self, connection, auto_analyze: bool = True):
        self._connection = connection
        self._auto_analyze = auto_analyze
        self._cache: dict[str, RelationStats] = {}
        #: Bumped on every refresh; anything keyed on statistics (the plan
        #: cache above all) includes the epoch so new statistics silently
        #: retire every stale entry.
        self.epoch = 0

    def refresh(self) -> None:
        """Drop all cached statistics and enter a new statistics epoch."""
        self._cache.clear()
        self.epoch += 1

    def collect(self, table_name: str) -> RelationStats:
        """Statistics for a base relation, from cache or the catalog."""
        key = table_name.lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        db = self._connection.db
        catalog = db.statistics_of(table_name)
        if catalog is None:
            if not self._auto_analyze:
                raise StatisticsError(
                    f"no statistics for {table_name!r}; run ANALYZE first"
                )
            catalog = db.analyze(table_name)
        attributes: dict[str, AttributeStats] = {}
        for column_key, column in catalog.columns.items():
            attributes[column_key] = AttributeStats(
                name=column.name,
                min_value=_as_float(column.min_value),
                max_value=_as_float(column.max_value),
                distinct=column.num_distinct,
                histogram=column.histogram,
                has_index=column.has_index,
                index_clustered=column.index_clustered,
            )
        stats = RelationStats(
            cardinality=float(catalog.cardinality),
            avg_row_size=catalog.avg_row_size,
            blocks=catalog.blocks,
            attributes=attributes,
        )
        self._cache[key] = stats
        return stats


def _as_float(value: object | None) -> float | None:
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None  # non-numeric (string) min/max are not used by estimators
