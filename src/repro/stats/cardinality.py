"""Result-cardinality derivation for algebra operators.

"The availability of statistics on base relations as well as the ability to
derive statistics for intermediate relations are important to the query
optimizer" (Section 3).  :class:`CardinalityEstimator` walks a logical plan
and produces a :class:`~repro.stats.collector.RelationStats` for every node:

* selections use :class:`~repro.stats.selectivity.PredicateEstimator`
  (semantic temporal estimation included);
* joins use the classic ``|L|·|R| / max(d(a), d(b))`` equi-join estimate;
* temporal joins additionally apply an overlap factor derived from average
  period durations over the shared lifespan (after Gunadhi & Segev);
* temporal aggregation implements the Section 3.4 bounds and the paper's
  60 %-of-maximum rule.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algebra.expressions import ColumnRef
from repro.algebra.operators import (
    Coalesce,
    Dedup,
    Difference,
    Join,
    Operator,
    Product,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)
from repro.errors import StatisticsError
from repro.stats.collector import AttributeStats, RelationStats, StatisticsCollector
from repro.stats.selectivity import PredicateEstimator


class CardinalityEstimator:
    """Derives statistics for every node of a logical plan.

    Results are memoized per operator identity for the lifetime of the
    estimator, so costing many plans over shared subtrees stays cheap.
    """

    def __init__(
        self,
        collector: StatisticsCollector,
        predicate_estimator: PredicateEstimator | None = None,
        taggr_max_fraction: float = 0.6,
        metrics=None,
        feedback=None,
    ):
        self._collector = collector
        self._predicates = predicate_estimator or PredicateEstimator()
        self._taggr_max_fraction = taggr_max_fraction
        self._cache: dict[tuple, RelationStats] = {}
        #: Optional repro.obs.metrics.MetricsRegistry counting cache traffic.
        self._metrics = metrics
        #: Optional :class:`~repro.core.cardinality.CardinalityFeedbackStore`
        #: (anything with ``epoch`` and ``learned_cardinality(fp)``): a
        #: learned cardinality overrides the derived one per subtree.
        self._feedback = feedback
        self._feedback_epoch = feedback.epoch if feedback is not None else 0
        self._fingerprints: dict[tuple, str | None] = {}

    # -- public API -----------------------------------------------------------------

    def estimate(self, plan: Operator) -> RelationStats:
        """Statistics of the relation *plan* evaluates to."""
        if self._feedback is not None and self._feedback.epoch != self._feedback_epoch:
            # New learned cardinalities re-derive everything memoized.
            self._cache.clear()
            self._feedback_epoch = self._feedback.epoch
        key = plan.cache_key
        cached = self._cache.get(key)
        if cached is not None:
            if self._metrics is not None:
                self._metrics.counter("estimator_cache_hits").inc()
            return cached
        if self._metrics is not None:
            self._metrics.counter("estimator_cache_misses").inc()
        stats = self._apply_feedback(plan, self._dispatch(plan))
        self._cache[key] = stats
        return stats

    def _apply_feedback(self, plan: Operator, stats: RelationStats) -> RelationStats:
        """Prefer a learned cardinality over the derived one (observed
        actuals outrank any model) — scaled copy, same attribute shapes."""
        if self._feedback is None:
            return stats
        key = plan.cache_key
        if key not in self._fingerprints:
            # Imported lazily: repro.core's package init pulls in the Tango
            # facade, which imports this module back.
            from repro.core.cardinality import plan_fingerprint

            self._fingerprints[key] = plan_fingerprint(plan)
        fingerprint = self._fingerprints[key]
        if fingerprint is None:
            return stats
        learned = self._feedback.learned_cardinality(fingerprint)
        if learned is None or learned == stats.cardinality:
            return stats
        return stats.with_cardinality(learned)

    def selectivity(self, predicate, stats: RelationStats) -> float:
        return self._predicates.estimate(predicate, stats)

    # -- dispatch -------------------------------------------------------------------

    def _dispatch(self, plan: Operator) -> RelationStats:
        if isinstance(plan, Scan):
            return self._collector.collect(plan.table)
        if isinstance(plan, Select):
            return self._select(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, (Sort, TransferM, TransferD)):
            return self.estimate(plan.inputs[0])
        if isinstance(plan, Dedup):
            return self._dedup(plan)
        if isinstance(plan, Coalesce):
            return self._coalesce(plan)
        if isinstance(plan, Product):
            return self._product(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, TemporalJoin):
            return self._temporal_join(plan)
        if isinstance(plan, TemporalAggregate):
            return self._temporal_aggregate(plan)
        if isinstance(plan, Difference):
            return self.estimate(plan.inputs[0])
        raise StatisticsError(f"no cardinality rule for {type(plan).__name__}")

    # -- per-operator rules ------------------------------------------------------------

    def _select(self, plan: Select) -> RelationStats:
        input_stats = self.estimate(plan.input)
        selectivity = self._predicates.estimate(plan.predicate, input_stats)
        return input_stats.with_cardinality(input_stats.cardinality * selectivity)

    def _project(self, plan: Project) -> RelationStats:
        input_stats = self.estimate(plan.input)
        schema = plan.schema
        attributes: dict[str, AttributeStats] = {}
        for name, expression in plan.outputs:
            if isinstance(expression, ColumnRef):
                source = input_stats.attributes.get(expression.name.lower())
                if source is not None:
                    attributes[name.lower()] = replace(source, name=name)
        return RelationStats(
            cardinality=input_stats.cardinality,
            avg_row_size=schema.row_width,
            blocks=max(1, int(input_stats.cardinality * schema.row_width // 8192)),
            attributes=attributes,
        )

    def _dedup(self, plan: Dedup) -> RelationStats:
        input_stats = self.estimate(plan.input)
        bound = 1.0
        for attribute in plan.schema:
            stats = input_stats.attributes.get(attribute.name.lower())
            distinct = stats.distinct if stats and stats.distinct else input_stats.cardinality
            bound *= max(1.0, float(distinct))
            if bound >= input_stats.cardinality:
                return input_stats
        return input_stats.with_cardinality(min(bound, input_stats.cardinality))

    def _coalesce(self, plan: Coalesce) -> RelationStats:
        # Coalescing never grows a relation; without value-correlation
        # statistics we keep the (safe) input cardinality.
        return self.estimate(plan.input)

    def _product(self, plan: Product) -> RelationStats:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        return self._combined(plan, left, right, left.cardinality * right.cardinality)

    def equi_join_cardinality(
        self,
        left: RelationStats,
        right: RelationStats,
        left_attr: str,
        right_attr: str,
    ) -> float:
        """Equi-join cardinality: histogram-based (skew aware) when both
        sides carry histograms and histograms are enabled; otherwise the
        classic uniform ``|L|·|R| / max(d_l, d_r)``."""
        if self._predicates.use_histograms:
            from repro.stats.selectivity import histogram_join_cardinality

            estimated = histogram_join_cardinality(left, right, left_attr, right_attr)
            if estimated is not None:
                return estimated
        distinct = max(
            left.attribute(left_attr).distinct,
            right.attribute(right_attr).distinct,
            1,
        )
        return left.cardinality * right.cardinality / distinct

    def _join(self, plan: Join) -> RelationStats:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        cardinality = self.equi_join_cardinality(
            left, right, plan.left_attr, plan.right_attr
        )
        if plan.residual is not None:
            combined = self._combined(plan, left, right, cardinality)
            selectivity = self._predicates.estimate(plan.residual, combined)
            cardinality *= selectivity
        return self._combined(plan, left, right, cardinality)

    def _temporal_join(self, plan: TemporalJoin) -> RelationStats:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        equi_cardinality = self.equi_join_cardinality(
            left, right, plan.left_attr, plan.right_attr
        )
        overlap = self._overlap_factor(left, right, plan.period)
        return self._combined(plan, left, right, equi_cardinality * overlap)

    def _overlap_factor(
        self,
        left: RelationStats,
        right: RelationStats,
        period: tuple[str, str],
    ) -> float:
        """Probability that two periods with matching keys overlap.

        With histograms on the left side's T1 (standard DBMS statistics),
        the factor integrates the Overlaps selectivity of the right side
        over the left side's start-time distribution — temporally clustered
        data (like UIS, concentrated after 1992) then gets the high overlap
        probability it actually exhibits.  Without histograms, the uniform
        approximation after Gunadhi & Segev: two periods of average
        durations d1, d2 on a shared lifespan L overlap with probability
        ≈ (d1 + d2) / L.
        """
        t1, t2 = period
        duration_left = _avg_duration(left, period)
        if self._predicates.use_histograms:
            start_histogram = left.attribute(t1).histogram
            if start_histogram is not None and start_histogram.total > 0:
                factor = 0.0
                from repro.stats.selectivity import overlaps_selectivity

                for i in range(start_histogram.num_buckets):
                    fraction = start_histogram.b_val(i) / start_histogram.total
                    if fraction <= 0:
                        continue
                    midpoint = (
                        start_histogram.b1(i) + start_histogram.b2(i)
                    ) / 2
                    factor += fraction * overlaps_selectivity(
                        midpoint, midpoint + max(1.0, duration_left),
                        right, period,
                    )
                return max(0.0, min(1.0, factor))
        lifespan_start = _min_or_none(
            left.attribute(t1).min_value, right.attribute(t1).min_value
        )
        lifespan_end = _max_or_none(
            left.attribute(t2).max_value, right.attribute(t2).max_value
        )
        if lifespan_start is None or lifespan_end is None:
            return 1.0
        lifespan = float(lifespan_end) - float(lifespan_start)
        if lifespan <= 0:
            return 1.0
        duration_right = _avg_duration(right, period)
        factor = (duration_left + duration_right) / lifespan
        return max(0.0, min(1.0, factor))

    def _temporal_aggregate(self, plan: TemporalAggregate) -> RelationStats:
        input_stats = self.estimate(plan.input)
        cardinality = input_stats.cardinality
        t1, t2 = plan.period
        distinct_t1 = input_stats.attribute(t1).distinct or int(cardinality)
        distinct_t2 = input_stats.attribute(t2).distinct or int(cardinality)

        group_distincts = [
            max(1, input_stats.attribute(name).distinct or 1)
            for name in plan.group_by
        ]
        minimum_candidates = [float(distinct_t1 + 1), float(distinct_t2 + 1)]
        minimum_candidates.extend(float(d) for d in group_distincts)
        minimum = min(minimum_candidates) if cardinality >= 1 else 0.0

        if not plan.group_by:
            maximum = float(distinct_t1 + distinct_t2 + 1)
        else:
            top = max(group_distincts)
            per_group = cardinality / top if top else cardinality
            maximum = (per_group * 2 - 1) * top
            # Tightening in the spirit of Section 3.4 ("knowing the number of
            # distinct values ... allows us to tighten the range"): each
            # group's intervals are bounded by the global instant count.
            maximum = min(maximum, top * (distinct_t1 + distinct_t2 + 1))
        maximum = min(maximum, cardinality * 2 - 1 if cardinality >= 1 else 0.0)
        maximum = max(maximum, minimum)

        estimate = self._taggr_max_fraction * maximum
        if estimate <= minimum:
            estimate = minimum

        schema = plan.schema
        attributes: dict[str, AttributeStats] = {}
        for name in plan.group_by:
            source = input_stats.attributes.get(name.lower())
            if source is not None:
                attributes[name.lower()] = source.scaled_to(estimate)
        for name in plan.period:
            source = input_stats.attributes.get(name.lower())
            if source is not None:
                attributes[name.lower()] = replace(
                    source, histogram=None
                ).scaled_to(estimate)
        return RelationStats(
            cardinality=estimate,
            avg_row_size=schema.row_width,
            blocks=max(1, int(estimate * schema.row_width // 8192)),
            attributes=attributes,
        )

    # -- helpers -------------------------------------------------------------------

    def _combined(
        self,
        plan: Operator,
        left: RelationStats,
        right: RelationStats,
        cardinality: float,
    ) -> RelationStats:
        """Stats for a two-input operator's output schema.

        Attribute statistics are matched from the inputs by bare name
        (disambiguated right-side names fall back to their originals).
        """
        cardinality = max(0.0, cardinality)
        schema = plan.schema
        attributes: dict[str, AttributeStats] = {}
        for attribute in schema:
            key = attribute.name.lower()
            source = left.attributes.get(key) or right.attributes.get(key)
            if source is None and "_" in key:
                base = key.rsplit("_", 1)[0]
                source = right.attributes.get(base) or left.attributes.get(base)
            if source is not None:
                attributes[key] = replace(source, name=attribute.name).scaled_to(
                    cardinality
                )
        return RelationStats(
            cardinality=cardinality,
            avg_row_size=schema.row_width,
            blocks=max(1, int(cardinality * schema.row_width // 8192)),
            attributes=attributes,
        )


def _avg_duration(stats: RelationStats, period: tuple[str, str]) -> float:
    """Average period duration ≈ mean(T2) − mean(T1) under uniformity."""
    t1 = stats.attribute(period[0])
    t2 = stats.attribute(period[1])
    if (
        t1.min_value is None
        or t1.max_value is None
        or t2.min_value is None
        or t2.max_value is None
    ):
        return 0.0
    mean_start = (float(t1.min_value) + float(t1.max_value)) / 2
    mean_end = (float(t2.min_value) + float(t2.max_value)) / 2
    return max(0.0, mean_end - mean_start)


def _min_or_none(a: float | None, b: float | None) -> float | None:
    values = [v for v in (a, b) if v is not None]
    return min(values) if values else None


def _max_or_none(a: float | None, b: float | None) -> float | None:
    values = [v for v in (a, b) if v is not None]
    return max(values) if values else None
