"""Selectivity estimation (Section 3.3).

Two estimators for temporal predicates are provided:

* the **naive** baseline that treats ``T1``/``T2`` as independent attributes
  — the paper shows it overestimates an ``Overlaps`` result by a factor of
  40 on its worked example;
* the **semantic** estimator built from ``StartBefore``/``EndBefore``, which
  exploits the constraint that a period's end never precedes its start and
  needs nothing beyond ordinary DBMS statistics (min/max, cardinality, and
  optional histograms).

On top of those, :class:`PredicateEstimator` analyzes arbitrary conjunctive
predicates: it recognizes the ``Overlaps``/timeslice patterns on the period
attributes, handles ordinary equality and range predicates with histograms
or uniform-distribution assumptions, and multiplies independent conjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.stats.collector import AttributeStats, RelationStats

#: Fallback selectivity for predicates we cannot analyze.
DEFAULT_SELECTIVITY = 0.10
#: Fallback selectivity for equality with no distinct-count information.
DEFAULT_EQUALITY_SELECTIVITY = 0.01


# -- the paper's StartBefore / EndBefore ------------------------------------------


def start_before(value: float, stats: RelationStats, attribute: str = "T1") -> float:
    """``StartBefore(A, r)``: estimated tuples with ``attribute < A``.

    Uses the histogram when available, otherwise linear interpolation
    between the attribute's min and max — exactly the two-branch definition
    in Section 3.3.
    """
    attr = stats.attribute(attribute)
    cardinality = stats.cardinality
    if attr.histogram is not None:
        return attr.histogram.selectivity_below(value) * cardinality
    if attr.min_value is None or attr.max_value is None:
        return cardinality * DEFAULT_SELECTIVITY
    if attr.max_value == attr.min_value:
        return cardinality if value > attr.min_value else 0.0
    fraction = (value - attr.min_value) / (attr.max_value - attr.min_value)
    return max(0.0, min(1.0, fraction)) * cardinality


def end_before(value: float, stats: RelationStats, attribute: str = "T2") -> float:
    """``EndBefore(A, r)``: estimated tuples with ``attribute < A``."""
    return start_before(value, stats, attribute)


# -- temporal-predicate estimators --------------------------------------------------


def overlaps_selectivity(
    start: float,
    end: float,
    stats: RelationStats,
    period: tuple[str, str] = ("T1", "T2"),
) -> float:
    """Selectivity of ``Overlaps(start, end)`` = ``T1 < end AND T2 > start``.

    Estimated tuples = ``StartBefore(end) - EndBefore(start + 1)``; the
    subtraction encodes the start ≤ end semantic constraint.
    """
    if stats.cardinality <= 0:
        return 0.0
    t1, t2 = period
    starting = start_before(end, stats, t1)
    ended = end_before(start + 1, stats, t2)
    estimated = max(0.0, starting - ended)
    return min(1.0, estimated / stats.cardinality)


def timeslice_selectivity(
    instant: float,
    stats: RelationStats,
    period: tuple[str, str] = ("T1", "T2"),
) -> float:
    """Selectivity of ``T1 <= A AND T2 > A`` (tuples valid at instant A).

    Estimated tuples = ``StartBefore(A + 1) - EndBefore(A + 1)``.
    """
    if stats.cardinality <= 0:
        return 0.0
    t1, t2 = period
    estimated = max(
        0.0,
        start_before(instant + 1, stats, t1) - end_before(instant + 1, stats, t2),
    )
    return min(1.0, estimated / stats.cardinality)


def naive_overlaps_selectivity(
    start: float,
    end: float,
    stats: RelationStats,
    period: tuple[str, str] = ("T1", "T2"),
) -> float:
    """The straightforward (wrong) estimate: treat the two comparisons as
    independent — ``sel(T1 < end) × sel(T2 > start)``."""
    if stats.cardinality <= 0:
        return 0.0
    t1, t2 = period
    sel_start = start_before(end, stats, t1) / stats.cardinality
    sel_end = 1.0 - end_before(start + 1, stats, t2) / stats.cardinality
    return max(0.0, min(1.0, sel_start)) * max(0.0, min(1.0, sel_end))


# -- join cardinality with histograms ---------------------------------------------------


def histogram_join_cardinality(
    left_stats: RelationStats,
    right_stats: RelationStats,
    left_attr: str,
    right_attr: str,
) -> float | None:
    """Skew-aware equi-join cardinality from join-attribute histograms.

    The paper's Query 3 notes that "the selectivity estimation for join and
    temporal join assumes uniform distribution of the join-attribute values
    ... which is not the case for the data used" — and that this causes
    plan-choice errors.  When both sides carry histograms on the join
    attribute (which conventional DBMSs maintain), the uniform assumption
    only needs to hold *within* each bucket:

        |A ⋈ B| ≈ Σ_buckets (a_i · b_i) / d_i

    where ``a_i``/``b_i`` are the matching tuple counts in bucket *i* of the
    left histogram and ``d_i`` the distinct join values in the bucket
    (bounded by the bucket's integer width).  Height-balanced histograms
    put narrow buckets over hot keys, so d_i shrinks exactly where the
    skew is.  Returns ``None`` when either histogram is missing.
    """
    left = left_stats.attribute(left_attr)
    right = right_stats.attribute(right_attr)
    if left.histogram is None or right.histogram is None:
        return None
    if left_stats.cardinality <= 0 or right_stats.cardinality <= 0:
        return 0.0
    H = left.histogram
    G = right.histogram
    if H.total == 0 or G.total == 0:
        return 0.0
    total = 0.0
    for i in range(H.num_buckets):
        low, high = H.b1(i), H.b2(i)
        left_fraction = H.b_val(i) / H.total
        if high <= low:
            # Degenerate single-value bucket — the signature of a hot key in
            # a height-balanced histogram.  Match the right side's mass at
            # exactly that value.
            right_fraction = (
                G.values_below(low + 1) - G.values_below(low)
            ) / G.total
        elif i == H.num_buckets - 1:
            right_fraction = (G.total - G.values_below(low)) / G.total
        else:
            right_fraction = (G.values_below(high) - G.values_below(low)) / G.total
        if left_fraction <= 0 or right_fraction <= 0:
            continue
        width = max(1.0, high - low)
        distinct_bound = max(1.0, min(width, float(left.distinct or width)))
        total += (
            left_fraction
            * left_stats.cardinality
            * right_fraction
            * right_stats.cardinality
            / distinct_bound
        )
    return total


# -- general predicate analysis --------------------------------------------------------


@dataclass(frozen=True)
class _RangeBound:
    """One ``column <op> literal`` comparison, normalized."""

    column: str
    op: str  # '=', '<', '<=', '>', '>='
    value: float


def _normalize_comparison(term: Expression) -> _RangeBound | None:
    """Normalize ``col <op> literal`` / ``literal <op> col`` comparisons."""
    if not isinstance(term, Comparison):
        return None
    left, right = term.left, term.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        comparison = term
    elif isinstance(left, Literal) and isinstance(right, ColumnRef):
        comparison = term.flipped()
    else:
        return None
    assert isinstance(comparison.left, ColumnRef)
    assert isinstance(comparison.right, Literal)
    value = comparison.right.value
    if not isinstance(value, (int, float)):
        if comparison.op == "=":
            # String equality still gets the 1/distinct treatment.
            return _RangeBound(comparison.left.name.lower(), "=", float("nan"))
        return None
    if comparison.op in ("<>", "!="):
        return None
    return _RangeBound(comparison.left.name.lower(), comparison.op, float(value))


class PredicateEstimator:
    """Estimates the selectivity of a predicate against one relation.

    Parameters
    ----------
    use_histograms:
        When False, histograms in the statistics are ignored — the
        configuration the paper benchmarks against in Query 2.
    semantic_temporal:
        When False, the ``Overlaps``/timeslice patterns are *not* given the
        semantic treatment and fall back to independent-conjunct estimation
        (the naive baseline).
    period:
        Names of the period attributes.
    """

    def __init__(
        self,
        use_histograms: bool = True,
        semantic_temporal: bool = True,
        period: tuple[str, str] = ("T1", "T2"),
    ):
        self.use_histograms = use_histograms
        self.semantic_temporal = semantic_temporal
        self.period = period

    def _stats_view(self, stats: RelationStats) -> RelationStats:
        if self.use_histograms:
            return stats
        stripped = {
            key: AttributeStats(
                name=attr.name,
                min_value=attr.min_value,
                max_value=attr.max_value,
                distinct=attr.distinct,
                histogram=None,
                has_index=attr.has_index,
                index_clustered=attr.index_clustered,
            )
            for key, attr in stats.attributes.items()
        }
        return RelationStats(stats.cardinality, stats.avg_row_size, stats.blocks, stripped)

    def estimate(self, predicate: Expression | None, stats: RelationStats) -> float:
        """Selectivity of *predicate* over a relation with *stats* (0..1)."""
        if predicate is None:
            return 1.0
        stats = self._stats_view(stats)
        terms = list(conjuncts(predicate))
        bounds: list[_RangeBound] = []
        other: list[Expression] = []
        for term in terms:
            bound = _normalize_comparison(term)
            if bound is not None:
                bounds.append(bound)
            else:
                other.append(term)

        selectivity = 1.0
        if self.semantic_temporal:
            bounds, temporal_selectivity = self._extract_temporal(bounds, stats)
            selectivity *= temporal_selectivity
        for bound in bounds:
            selectivity *= self._bound_selectivity(bound, stats)
        for term in other:
            selectivity *= self._other_selectivity(term, stats)
        return max(0.0, min(1.0, selectivity))

    # -- temporal pattern extraction ------------------------------------------------

    def _extract_temporal(
        self, bounds: list[_RangeBound], stats: RelationStats
    ) -> tuple[list[_RangeBound], float]:
        """Pull out an ``Overlaps`` pattern: an upper bound on T1 and a lower
        bound on T2.  Returns the remaining bounds and the pattern's
        selectivity (1.0 when no pattern found)."""
        t1, t2 = (name.lower() for name in self.period)
        upper_t1: _RangeBound | None = None
        lower_t2: _RangeBound | None = None
        for bound in bounds:
            if bound.column == t1 and bound.op in ("<", "<=") and upper_t1 is None:
                upper_t1 = bound
            elif bound.column == t2 and bound.op in (">", ">=") and lower_t2 is None:
                lower_t2 = bound
        if upper_t1 is None or lower_t2 is None:
            return bounds, 1.0
        remaining = [b for b in bounds if b is not upper_t1 and b is not lower_t2]
        # Normalize to the closed-open Overlaps(A, B) = T1 < B AND T2 > A.
        end = upper_t1.value + (1 if upper_t1.op == "<=" else 0)
        start = lower_t2.value - (1 if lower_t2.op == ">=" else 0)
        return remaining, overlaps_selectivity(start, end, stats, self.period)

    # -- simple bounds ------------------------------------------------------------------

    def _bound_selectivity(self, bound: _RangeBound, stats: RelationStats) -> float:
        attr = stats.attribute(bound.column)
        cardinality = stats.cardinality
        if cardinality <= 0:
            return 0.0
        if bound.op == "=":
            if attr.distinct > 0:
                return 1.0 / attr.distinct
            return DEFAULT_EQUALITY_SELECTIVITY
        below = start_before(bound.value, stats, bound.column) / cardinality
        below_inclusive = (
            start_before(bound.value + 1, stats, bound.column) / cardinality
        )
        if bound.op == "<":
            return below
        if bound.op == "<=":
            return below_inclusive
        if bound.op == ">":
            return 1.0 - below_inclusive
        return 1.0 - below  # '>='

    def _other_selectivity(self, term: Expression, stats: RelationStats) -> float:
        if isinstance(term, Not):
            return 1.0 - self.estimate(term.term, stats)
        if isinstance(term, Or):
            # Inclusion-exclusion under independence.
            miss = 1.0
            for arm in term.terms:
                miss *= 1.0 - self.estimate(arm, stats)
            return 1.0 - miss
        if isinstance(term, And):
            return self.estimate(term, stats)
        if isinstance(term, Comparison):
            if isinstance(term.left, ColumnRef) and isinstance(term.right, ColumnRef):
                if term.op == "=":
                    left = stats.attribute(term.left.name)
                    right = stats.attribute(term.right.name)
                    distinct = max(left.distinct, right.distinct, 1)
                    return 1.0 / distinct
                return 1.0 / 3.0  # textbook default for col-vs-col ranges
        return DEFAULT_SELECTIVITY
