"""Weighted fair-share scheduling over a bounded admission queue.

Stride scheduling: every tenant carries a *pass* value advanced by
``STRIDE_SCALE / weight`` per dispatch, and the dispatcher always serves
the runnable tenant with the lowest pass.  A weight-8 tenant therefore
gets ~8 dispatch slots for every slot a weight-1 tenant gets while both
have queued work — and a tenant with no backlog costs the others nothing.
When an idle tenant re-joins, its pass is advanced to the current virtual
time, so sitting out does not bank credit it could later use to starve
everyone else (the classic stride join rule).

Within a tenant, queries order by ``priority`` (higher first), then
submission order.  Admission is bounded twice — a global queue limit and
optional per-tenant limits — and both bounds reject with
:class:`~repro.errors.QueueFullError` rather than queueing unboundedly.

The scheduler is the synchronization point of the service: ``enqueue``
is the admission door, ``next_task`` blocks worker threads until work
*and* capacity exist (capacity is a callable so the service can shrink
it while the backend is degraded), and ``task_done`` returns quota.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.errors import QueueFullError
from repro.service.config import ServiceConfig, TenantSpec
from repro.service.handle import HandleState, QueryHandle

#: Numerator of the stride: pass advances by STRIDE_SCALE / weight.
STRIDE_SCALE = 1 << 20

#: How often a blocked worker re-polls capacity (seconds).  Capacity can
#: change without an enqueue/task_done notification (health decay), so
#: waits are bounded.
_POLL_SECONDS = 0.05


class _TenantState:
    """Mutable scheduling state of one tenant (guarded by the scheduler)."""

    __slots__ = (
        "spec", "heap", "queued", "in_flight", "pass_value", "stride",
        "dispatched", "sheds",
    )

    def __init__(self, spec: TenantSpec, pass_value: float):
        self.spec = spec
        #: (-priority, seq, handle) — max-priority first, FIFO within.
        self.heap: list[tuple[int, int, QueryHandle]] = []
        #: Live (non-cancelled) queued entries; the heap may hold more.
        self.queued = 0
        self.in_flight = 0
        self.pass_value = pass_value
        self.stride = STRIDE_SCALE / spec.weight
        self.dispatched = 0
        self.sheds = 0

    @property
    def quota(self) -> int | None:
        return self.spec.max_in_flight

    def runnable(self) -> bool:
        return self.queued > 0 and (
            self.quota is None or self.in_flight < self.quota
        )


class FairShareScheduler:
    """The admission queue + dispatch policy of one query service."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self._tenants: dict[str, _TenantState] = {}
        self._queued_total = 0
        self._running_total = 0
        self._seq = itertools.count()
        self._closed = False
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)

    # -- admission ------------------------------------------------------------------

    def enqueue(self, handle: QueryHandle) -> None:
        """Admit *handle*, or reject with :class:`QueueFullError`."""
        with self._lock:
            if self._closed:
                raise QueueFullError("the query service is shutting down")
            tenant = self._tenant(handle.tenant)
            if self._queued_total >= self.config.queue_limit:
                tenant.sheds += 1
                raise QueueFullError(
                    f"admission queue is full ({self._queued_total} queued, "
                    f"limit {self.config.queue_limit})"
                )
            limit = tenant.spec.queue_limit
            if limit is not None and tenant.queued >= limit:
                tenant.sheds += 1
                raise QueueFullError(
                    f"tenant {handle.tenant!r} queue is full "
                    f"({tenant.queued} queued, limit {limit})"
                )
            if tenant.queued == 0:
                # Re-joining the virtual timeline: no banked credit.
                tenant.pass_value = max(tenant.pass_value, self._virtual_time())
            heapq.heappush(
                tenant.heap, (-handle.priority, next(self._seq), handle)
            )
            tenant.queued += 1
            self._queued_total += 1
            self._wakeup.notify()

    # -- dispatch -------------------------------------------------------------------

    def next_task(self, capacity=None, timeout: float | None = None):
        """The next (handle, tenant name) to run, or None on shutdown.

        Blocks while there is no runnable work or no capacity.
        *capacity* is a zero-argument callable returning the current
        global concurrency bound (None = unbounded); it is re-polled
        every ``_POLL_SECONDS`` so health-driven changes take effect
        without a notification.  *timeout* bounds the total wait (None =
        wait for shutdown).
        """
        remaining = timeout
        with self._wakeup:
            while True:
                cap = capacity() if capacity is not None else None
                if cap is None or self._running_total < cap:
                    chosen = self._pick_locked()
                    if chosen is not None:
                        tenant, handle = chosen
                        tenant.pass_value += tenant.stride
                        tenant.in_flight += 1
                        tenant.dispatched += 1
                        self._running_total += 1
                        return handle, tenant.spec.name
                if self._closed and self._queued_total == 0:
                    return None
                if remaining is not None:
                    if remaining <= 0:
                        return None
                    step = min(_POLL_SECONDS, remaining)
                    self._wakeup.wait(step)
                    remaining -= step
                else:
                    self._wakeup.wait(_POLL_SECONDS)

    def _pick_locked(self):
        """Lowest-pass runnable tenant and its best queued handle.

        Cancelled entries are tombstones: clients cancel through the
        handle alone (no scheduler reference), so the queue accounting is
        corrected here, when a tombstone is dropped, rather than at
        cancel time.
        """
        best: _TenantState | None = None
        for tenant in self._tenants.values():
            self._drop_tombstones(tenant)
            if not tenant.runnable():
                continue
            if best is None or tenant.pass_value < best.pass_value:
                best = tenant
        if best is None:
            return None
        while best.heap:
            _, _, handle = heapq.heappop(best.heap)
            best.queued -= 1
            self._queued_total -= 1
            if handle.status() is HandleState.CANCELLED:
                continue
            return best, handle
        return None

    def _drop_tombstones(self, tenant: _TenantState) -> None:
        while tenant.heap and tenant.heap[0][2].status() is HandleState.CANCELLED:
            heapq.heappop(tenant.heap)
            tenant.queued -= 1
            self._queued_total -= 1

    def task_done(self, tenant_name: str) -> None:
        """Return the dispatch slot and the tenant's quota unit."""
        with self._wakeup:
            tenant = self._tenants.get(tenant_name)
            if tenant is not None and tenant.in_flight > 0:
                tenant.in_flight -= 1
            self._running_total -= 1
            self._wakeup.notify_all()

    # -- lifecycle / introspection ----------------------------------------------------

    def close(self, cancel_queued: bool = False) -> None:
        """Stop admitting; optionally cancel everything still queued.

        Workers drain the remaining queue (unless cancelled here) and
        then ``next_task`` returns None, ending their loops.
        """
        with self._wakeup:
            self._closed = True
            if cancel_queued:
                for tenant in self._tenants.values():
                    while tenant.heap:
                        _, _, handle = heapq.heappop(tenant.heap)
                        tenant.queued -= 1
                        self._queued_total -= 1
                        if handle.status() is not HandleState.CANCELLED:
                            handle.mark_cancelled()
            self._wakeup.notify_all()

    def _virtual_time(self) -> float:
        active = [
            tenant.pass_value
            for tenant in self._tenants.values()
            if tenant.queued > 0 or tenant.in_flight > 0
        ]
        return min(active) if active else 0.0

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(self.config.spec_for(name), self._virtual_time())
            self._tenants[name] = state
        return state

    @property
    def queued_total(self) -> int:
        return self._queued_total

    @property
    def running_total(self) -> int:
        return self._running_total

    def depth(self, tenant: str) -> int:
        with self._lock:
            state = self._tenants.get(tenant)
            return state.queued if state is not None else 0

    def snapshot(self) -> dict:
        """Per-tenant queue/dispatch state (JSON-ready, for dashboards)."""
        with self._lock:
            return {
                name: {
                    "weight": state.spec.weight,
                    "queued": state.queued,
                    "in_flight": state.in_flight,
                    "dispatched": state.dispatched,
                    "sheds": state.sheds,
                }
                for name, state in sorted(self._tenants.items())
            }
