"""The multi-tenant query service: TANGO as a long-lived server.

The paper positions TANGO as *middleware* between many clients and a
DBMS; this package is the serving layer that makes that literal.  A
:class:`QueryService` admits up to N concurrent queries over a shared
:class:`~repro.dbms.jdbc.ConnectionPool`, schedules them fair-share
across weighted tenants (per-tenant quotas, bounded admission queue),
and sheds load when the resilience layer's health classification
(:class:`~repro.resilience.health.HealthMonitor`) says the backend is
sick.

The public surface is the session/handle API:

    service = QueryService(db, ServiceConfig(max_concurrency=4))
    handle = service.submit(sql, tenant="analytics", priority=1)
    handle.status()          # queued | running | done | failed | cancelled
    result = handle.result(timeout=5.0)   # a QueryResult
    handle.cancel()          # dequeue, or abort at the next batch boundary

:meth:`Tango.submit` exposes the same handle surface on a standalone
instance (executing inline), and routes here when
``TangoConfig.service`` is set — one API for the scheduler, the CLI,
and the tests.
"""

from repro.service.config import ServiceConfig, TenantSpec
from repro.service.handle import HandleState, QueryHandle
from repro.service.scheduler import FairShareScheduler
from repro.service.service import QueryService

__all__ = [
    "FairShareScheduler",
    "HandleState",
    "QueryHandle",
    "QueryService",
    "ServiceConfig",
    "TenantSpec",
]
