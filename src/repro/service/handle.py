"""The client's view of one submitted query.

A :class:`QueryHandle` is what :meth:`Tango.submit` and
:meth:`QueryService.submit` return: a thread-safe, observable future over
one query's lifecycle —

    queued ──► running ──► done | failed
       │          │
       └──────────┴──────► cancelled

``result(timeout)`` blocks for the outcome and re-raises the query's own
error; ``cancel()`` removes a queued query outright and aborts a running
one cooperatively at its next batch boundary (the execution engine checks
the handle between batches, the same cadence as deadlines).  All
timestamps are monotonic-clock, so ``queue_seconds`` and
``total_seconds`` are meaningful under NTP steps.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import TYPE_CHECKING

from repro.errors import QueryCancelledError, ResultTimeoutError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids the cycle
    from repro.core.tango import QueryResult


class HandleState(str, enum.Enum):
    """Lifecycle states of a submitted query."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a handle never leaves.
_TERMINAL = frozenset({HandleState.DONE, HandleState.FAILED, HandleState.CANCELLED})


class QueryHandle:
    """One submitted query: status, result, cancellation.

    Producers (the service's workers, or the inline path in
    ``Tango.submit``) drive the lifecycle through :meth:`mark_running`,
    :meth:`complete`, :meth:`fail`, and :meth:`mark_cancelled`; clients
    only read.
    """

    _sequence = 0
    _sequence_lock = threading.Lock()

    def __init__(self, query, *, tenant: str = "default", priority: int = 0):
        with QueryHandle._sequence_lock:
            QueryHandle._sequence += 1
            self.id = QueryHandle._sequence
        self.query = query
        self.tenant = tenant
        self.priority = priority
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._state = HandleState.QUEUED
        self._result: "QueryResult | None" = None
        self._error: BaseException | None = None
        self._cancel_requested = False
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- client surface -------------------------------------------------------------

    def status(self) -> HandleState:
        return self._state

    @property
    def done(self) -> bool:
        """True once the handle reached a terminal state."""
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; True if it finished within *timeout*."""
        return self._finished.wait(timeout)

    def result(self, timeout: float | None = None) -> "QueryResult":
        """The query's :class:`QueryResult`, blocking up to *timeout*.

        Re-raises the query's own error when it failed or was cancelled;
        raises :class:`~repro.errors.ResultTimeoutError` when *timeout*
        expires first (the query itself keeps going).
        """
        if not self._finished.wait(timeout):
            raise ResultTimeoutError(
                f"query #{self.id} still {self._state.value} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Ask for the query not to produce a result.

        Queued queries transition to ``cancelled`` immediately (the
        scheduler skips them); running queries are aborted at their next
        batch boundary.  Returns False only when the query already
        finished (``done``/``failed``), True otherwise — including when
        it was already cancelled.
        """
        with self._lock:
            if self._state in (HandleState.DONE, HandleState.FAILED):
                return False
            self._cancel_requested = True
            if self._state is HandleState.QUEUED:
                self._finish_locked(
                    HandleState.CANCELLED,
                    error=QueryCancelledError(
                        f"query #{self.id} cancelled while queued"
                    ),
                )
        return True

    def abort_reason(self) -> str | None:
        """The engine's cooperative-abort probe (checked between batches)."""
        if self._cancel_requested:
            return f"query #{self.id} cancelled by client"
        return None

    @property
    def queue_seconds(self) -> float | None:
        """Admission-queue wait (None until the query starts)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def total_seconds(self) -> float | None:
        """Submit-to-terminal latency (None until finished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # -- producer surface -----------------------------------------------------------

    def mark_running(self) -> bool:
        """Queued → running; False when the handle was cancelled first."""
        with self._lock:
            if self._state is not HandleState.QUEUED:
                return False
            self._state = HandleState.RUNNING
            self.started_at = time.monotonic()
            return True

    def complete(self, result: "QueryResult") -> None:
        with self._lock:
            if self._state in _TERMINAL:
                return
            self._result = result
            self._finish_locked(HandleState.DONE)

    def fail(self, error: BaseException) -> None:
        """Terminal failure; cancellations land in ``cancelled`` instead."""
        with self._lock:
            if self._state in _TERMINAL:
                return
            state = (
                HandleState.CANCELLED
                if isinstance(error, QueryCancelledError)
                else HandleState.FAILED
            )
            self._finish_locked(state, error=error)

    def mark_cancelled(self, error: BaseException | None = None) -> None:
        with self._lock:
            if self._state in _TERMINAL:
                return
            self._finish_locked(
                HandleState.CANCELLED,
                error=error
                or QueryCancelledError(f"query #{self.id} cancelled"),
            )

    def _finish_locked(
        self, state: HandleState, error: BaseException | None = None
    ) -> None:
        self._state = state
        self._error = error
        self.finished_at = time.monotonic()
        self._finished.set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryHandle(#{self.id} tenant={self.tenant!r} "
            f"priority={self.priority} {self._state.value})"
        )
