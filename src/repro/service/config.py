"""Frozen configuration for the query service.

Both dataclasses are frozen and hashable: :class:`ServiceConfig` rides
inside :class:`~repro.core.tango.TangoConfig` (itself a plan-cache key
component), so nothing here may be mutable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.health import HealthPolicy


@dataclass(frozen=True)
class TenantSpec:
    """Scheduling parameters of one tenant.

    Tenants not declared in :attr:`ServiceConfig.tenants` are created on
    first submit with the config's defaults, so multi-tenant operation
    needs no registration step — specs exist to give *specific* tenants
    more (or less) than the default share.
    """

    name: str
    #: Fair-share weight: relative dispatch rate under contention.  A
    #: weight-8 tenant gets ~8 dispatch slots for every slot a weight-1
    #: tenant gets while both have queued work.
    weight: int = 1
    #: Quota: this tenant's queries running at once.  None = bounded only
    #: by the service's ``max_concurrency``.
    max_in_flight: int | None = None
    #: This tenant's share of the admission queue.  None = bounded only
    #: by the global ``queue_limit``.
    queue_limit: int | None = None

    def __post_init__(self):
        if self.weight < 1:
            raise ValueError(f"tenant {self.name!r}: weight must be >= 1")


@dataclass(frozen=True)
class ServiceConfig:
    """Construction-time configuration of a :class:`QueryService`."""

    #: Queries executing concurrently (worker threads; also the size of
    #: the service's connection pool).
    max_concurrency: int = 4
    #: Total queries waiting in the admission queue before submits are
    #: shed with :class:`~repro.errors.QueueFullError`.
    queue_limit: int = 64
    #: Pre-declared tenants; unknown tenants get the defaults below.
    tenants: tuple[TenantSpec, ...] = ()
    #: Fair-share weight for undeclared tenants.
    default_weight: int = 1
    #: Quota for undeclared tenants (None = up to ``max_concurrency``).
    default_max_in_flight: int | None = None
    #: Per-tenant queue bound for undeclared tenants (None = global only).
    default_queue_limit: int | None = None
    #: How backend health is classified from query outcomes.
    health: HealthPolicy = HealthPolicy()
    #: Shed new submissions with :class:`~repro.errors.BackendSickError`
    #: while the backend classifies SICK (queued work keeps draining at
    #: reduced concurrency either way).
    shed_when_sick: bool = True
    #: Concurrency multiplier applied while the backend classifies
    #: DEGRADED — deferring load instead of piling it onto a struggling
    #: DBMS.  SICK drains one query at a time regardless.
    degraded_concurrency_factor: float = 0.5

    def spec_for(self, tenant: str) -> TenantSpec:
        """The declared spec for *tenant*, or one built from defaults."""
        for spec in self.tenants:
            if spec.name == tenant:
                return spec
        return TenantSpec(
            tenant,
            weight=self.default_weight,
            max_in_flight=self.default_max_in_flight,
            queue_limit=self.default_queue_limit,
        )
