"""The long-lived, concurrent, multi-tenant query service.

One :class:`QueryService` is TANGO running as a *server*: N worker
threads, each owning a full middleware stack (optimizer, engine, a
primary DBMS connection leased from a shared
:class:`~repro.dbms.jdbc.ConnectionPool`), all sharing one
:class:`~repro.obs.metrics.MetricsRegistry`, one thread-safe
:class:`~repro.core.plan_cache.PlanCache` (tenant A's optimization warms
tenant B's cache hit), and one
:class:`~repro.resilience.health.HealthMonitor`.

The admission pipeline per submit::

    submit() ── health gate ──► fair-share queue ──► worker ──► QueryHandle
        │  SICK: BackendSickError     │ full: QueueFullError
        └──────── shed ◄──────────────┘   (service_shed_total)

Workers record every outcome into the health monitor — that is the
cross-layer loop: retry exhaustion and deadline classification computed
by the resilience layer during execution become the admission-control
signal for the *next* submission.  While DEGRADED, dispatch concurrency
shrinks (``degraded_concurrency_factor``); while SICK, new load is shed
and the backlog drains one query at a time.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.dbms.database import MiniDB
from repro.dbms.jdbc import ConnectionPool
from repro.errors import BackendSickError, DatabaseError, QueueFullError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector
from repro.resilience.health import BackendState, HealthMonitor
from repro.service.config import ServiceConfig
from repro.service.handle import HandleState, QueryHandle
from repro.service.scheduler import FairShareScheduler

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids the cycle
    from repro.core.tango import QueryResult, TangoConfig


class QueryService:
    """Admits, schedules, and executes queries for many tenants at once."""

    def __init__(
        self,
        db: MiniDB,
        config: ServiceConfig | None = None,
        *,
        tango_config: "TangoConfig | None" = None,
        fault_injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        pool: ConnectionPool | None = None,
    ):
        # Imported here, not at module level: repro.core.tango imports
        # this package for the handle surface.
        from repro.core.cardinality import CardinalityFeedbackStore
        from repro.core.plan_cache import PlanCache
        from repro.core.tango import TangoConfig

        self.db = db
        self.config = config or ServiceConfig()
        base = tango_config or TangoConfig()
        if base.service is not None:
            # Worker Tangos must execute inline, not recurse into a
            # service of their own.
            from dataclasses import replace

            base = replace(base, service=None)
        self.tango_config = base
        self.metrics = metrics or MetricsRegistry()
        self.fault_injector = fault_injector
        if fault_injector is not None and fault_injector.metrics is None:
            fault_injector.metrics = self.metrics
        self._owns_pool = pool is None
        self.pool = pool or ConnectionPool(
            db,
            size=self.config.max_concurrency,
            prefetch=base.prefetch,
            metrics=self.metrics,
            injector=fault_injector,
            latency_seconds=base.network_latency_seconds,
        )
        self.health = HealthMonitor(self.config.health)
        self.scheduler = FairShareScheduler(self.config)
        #: Shared across workers: one tenant's optimization is every
        #: tenant's cache hit (PlanCache is thread-safe).
        self.plan_cache = PlanCache(base.plan_cache_size)
        #: Shared across workers too: cardinalities one tenant's execution
        #: taught the store sharpen every tenant's next optimization (the
        #: store is thread-safe).  Loaded/saved by the service, which owns
        #: it — worker Tangos receive it pre-built.
        self.feedback_store = CardinalityFeedbackStore()
        if base.feedback_path:
            try:
                self.feedback_store.load(base.feedback_path)
            except FileNotFoundError:
                pass
        self._closed = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"tango-service-{index}",
                daemon=True,
            )
            for index in range(max(1, self.config.max_concurrency))
        ]
        for worker in self._workers:
            worker.start()

    # -- the client surface ---------------------------------------------------------

    def submit(
        self, query, *, tenant: str = "default", priority: int = 0
    ) -> QueryHandle:
        """Admit one query (SQL text or an initial plan) for *tenant*.

        Returns a :class:`QueryHandle` immediately.  Raises
        :class:`~repro.errors.BackendSickError` when admission control is
        shedding (backend classified SICK) and
        :class:`~repro.errors.QueueFullError` when the bounded admission
        queue — global or per-tenant — is full.  Both are *sheds*: the
        query never entered the system, and ``service_shed_total``
        counts it.
        """
        if self._closed:
            raise DatabaseError("this QueryService is closed")
        self.metrics.counter("service_submitted_total").inc()
        if (
            self.config.shed_when_sick
            and self.health.classify() is BackendState.SICK
        ):
            self._count_shed(tenant, "service_shed_sick_total")
            raise BackendSickError(
                "admission control is shedding load: the backend's recent "
                "retry/deadline record classifies it as sick "
                f"({self.health.snapshot()})"
            )
        handle = QueryHandle(query, tenant=tenant, priority=priority)
        try:
            self.scheduler.enqueue(handle)
        except QueueFullError:
            self._count_shed(tenant, "service_shed_queue_full_total")
            raise
        self.metrics.counter("service_admitted_total").inc()
        self.metrics.counter(f"service_admitted_total.{tenant}").inc()
        self.metrics.histogram("service_queue_depth").observe(
            self.scheduler.queued_total
        )
        return handle

    def query(
        self,
        query,
        *,
        tenant: str = "default",
        priority: int = 0,
        timeout: float | None = None,
    ) -> "QueryResult":
        """Sugar: ``submit(...).result(timeout)``."""
        return self.submit(query, tenant=tenant, priority=priority).result(timeout)

    def _count_shed(self, tenant: str, reason_counter: str) -> None:
        self.metrics.counter("service_shed_total").inc()
        self.metrics.counter(reason_counter).inc()
        self.metrics.counter(f"service_shed_total.{tenant}").inc()

    # -- workers --------------------------------------------------------------------

    def _capacity(self) -> int:
        """Current dispatch bound, shrunk while the backend struggles."""
        state = self.health.classify()
        if state is BackendState.SICK:
            return 1
        if state is BackendState.DEGRADED:
            return max(
                1,
                int(
                    self.config.max_concurrency
                    * self.config.degraded_concurrency_factor
                ),
            )
        return self.config.max_concurrency

    def _make_worker_tango(self):
        from repro.core.tango import Tango

        return Tango(
            self.db,
            config=self.tango_config,
            fault_injector=self.fault_injector,
            metrics=self.metrics,
            pool=self.pool,
            plan_cache=self.plan_cache,
            feedback_store=self.feedback_store,
        )

    def _worker_loop(self) -> None:
        tango = None
        try:
            while True:
                item = self.scheduler.next_task(capacity=self._capacity)
                if item is None:
                    return
                handle, tenant = item
                try:
                    if not handle.mark_running():
                        continue  # cancelled between dispatch and start
                    if tango is None:
                        tango = self._make_worker_tango()
                    self._run_one(tango, handle, tenant)
                finally:
                    self.scheduler.task_done(tenant)
        finally:
            if tango is not None:
                tango.close()

    def _run_one(self, tango, handle: QueryHandle, tenant: str) -> None:
        queue_wait = handle.queue_seconds or 0.0
        self.metrics.histogram("service_queue_seconds").observe(queue_wait)
        self.metrics.histogram(f"service_queue_seconds.{tenant}").observe(
            queue_wait
        )
        try:
            result = tango.run(handle.query, abort=handle.abort_reason)
        except BaseException as error:  # noqa: BLE001 - a worker must survive
            handle.fail(error)
            self.health.record_outcome(error)
            if handle.status() is HandleState.CANCELLED:
                self.metrics.counter("service_cancelled_total").inc()
            else:
                self.metrics.counter("service_failed_total").inc()
                self.metrics.counter(f"service_failed_total.{tenant}").inc()
            return
        handle.complete(result)
        self.health.record_outcome(None, degraded=result.degraded)
        self.metrics.counter("service_completed_total").inc()
        self.metrics.counter(f"service_completed_total.{tenant}").inc()
        latency = handle.total_seconds or 0.0
        self.metrics.histogram("service_latency_seconds").observe(latency)
        self.metrics.histogram(f"service_latency_seconds.{tenant}").observe(
            latency
        )

    # -- lifecycle / observability ----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop admitting and shut the workers down; idempotent.

        ``drain=True`` (default) lets queued queries finish; ``False``
        cancels everything still queued.  Running queries always finish
        (they hold pool connections mid-flight).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.scheduler.close(cancel_queued=not drain)
        for worker in self._workers:
            worker.join(timeout)
        if self.tango_config.feedback_path and len(self.feedback_store):
            try:
                self.feedback_store.save(self.tango_config.feedback_path)
            except OSError:
                self.metrics.counter("feedback_store_save_errors").inc()
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> dict:
        """One JSON-ready dashboard frame: tenants, health, key metrics."""
        counters = self.metrics.to_dict()["counters"]
        return {
            "closed": self._closed,
            "max_concurrency": self.config.max_concurrency,
            "effective_concurrency": self._capacity(),
            "queued": self.scheduler.queued_total,
            "running": self.scheduler.running_total,
            "tenants": self.scheduler.snapshot(),
            "health": self.health.snapshot(),
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("service_")
            },
        }
