"""Plan properties: order and duplicates.

Section 4 of the paper distinguishes *list* equivalence (equal as ordered
lists) from *multiset* equivalence (equal up to order).  Whether a plan's
delivered order can be relied upon depends on where it runs:

    "while the middleware algorithms are designed to be order preserving,
    this does not hold for the DBMS algorithms."

:func:`guaranteed_order` encodes that rule: a plan's order is guaranteed when
(1) the producing operator resides in the middleware, or (2) the top DBMS
operation is an explicit sort (which the Translator-To-SQL turns into an
``ORDER BY``).  Otherwise the DBMS is free to reorder and only multiset
equivalence holds.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.operators import Location, Operator, Sort, TransferM


def is_prefix_of(candidate: Sequence[str], order: Sequence[str]) -> bool:
    """The paper's ``IsPrefixOf`` predicate, case-insensitive.

    >>> is_prefix_of(["PosID"], ["posid", "t1"])
    True
    >>> is_prefix_of(["T1"], ["posid", "t1"])
    False
    """
    if len(candidate) > len(order):
        return False
    return all(
        a.lower() == b.lower() for a, b in zip(candidate, order)
    )


def guaranteed_order(plan: Operator) -> tuple[str, ...]:
    """The delivered order of *plan* that downstream operators may rely on.

    Returns the order attribute list, or ``()`` when no order is guaranteed.
    """
    if plan.location is Location.MIDDLEWARE:
        # Middleware algorithms are order preserving; T^M preserves the order
        # of what the DBMS delivered — which is only guaranteed if the DBMS
        # part itself tops out in a sort.
        if isinstance(plan, TransferM):
            return guaranteed_order(plan.input)
        return plan.order()
    if isinstance(plan, Sort):
        return plan.keys
    return ()


def satisfies_order(plan: Operator, required: Sequence[str]) -> bool:
    """True when *plan* reliably delivers at least the *required* order."""
    if not required:
        return True
    return is_prefix_of(required, guaranteed_order(plan))
