"""Scalar expressions and predicates over rows.

Expressions are immutable trees.  They can be

* *evaluated* — :meth:`Expression.compile` turns a tree into a fast
  ``row -> value`` closure for a given schema;
* *rendered* — :meth:`Expression.to_sql` produces the SQL text the
  Translator-To-SQL emits for DBMS-resident plan parts;
* *inspected* — :func:`attributes_of` (the paper's ``attr(P)``) and
  :func:`conjuncts` support transformation-rule preconditions and
  selectivity estimation.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.algebra.schema import AttrType, Schema
from repro.errors import ExpressionError

RowFunc = Callable[[tuple], object]

_COMPARISONS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expression:
    """Abstract base for scalar expressions."""

    def compile(self, schema: Schema) -> RowFunc:
        """Return a ``row -> value`` evaluator bound to *schema*."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render as SQL text in the MiniDB dialect."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """Lower-cased attribute names referenced (the paper's ``attr``)."""
        raise NotImplementedError

    def result_type(self, schema: Schema) -> AttrType:
        """Static type of the expression under *schema*."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        return ()

    # Expressions participate in memo keys, so value equality matters.
    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_sql()

    # Convenience combinators ------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True, eq=False)
class ColumnRef(Expression):
    """Reference to an attribute by name."""

    name: str

    def compile(self, schema: Schema) -> RowFunc:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def to_sql(self) -> str:
        return self.name

    def attributes(self) -> frozenset[str]:
        return frozenset((self.name.lower(),))

    def result_type(self, schema: Schema) -> AttrType:
        return schema.type_of(self.name)

    def _key(self) -> tuple:
        return (self.name.lower(),)


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant value (int, float, str, or a DATE day number)."""

    value: object
    type: AttrType | None = None

    def compile(self, schema: Schema) -> RowFunc:
        value = self.value
        return lambda row: value

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def result_type(self, schema: Schema) -> AttrType:
        if self.type is not None:
            return self.type
        if isinstance(self.value, bool):
            return AttrType.INT
        if isinstance(self.value, int):
            return AttrType.INT
        if isinstance(self.value, float):
            return AttrType.FLOAT
        return AttrType.STR

    def _key(self) -> tuple:
        return (self.value, self.type)


@dataclass(frozen=True, eq=False)
class BinOp(Expression):
    """Arithmetic: ``+ - * /``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def compile(self, schema: Schema) -> RowFunc:
        func = _ARITHMETIC[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: func(left(row), right(row))

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def result_type(self, schema: Schema) -> AttrType:
        left = self.left.result_type(schema)
        right = self.right.result_type(schema)
        if AttrType.FLOAT in (left, right) or self.op == "/":
            return AttrType.FLOAT
        return left

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)


@dataclass(frozen=True, eq=False)
class Comparison(Expression):
    """A boolean comparison: ``= <> < <= > >=``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def compile(self, schema: Schema) -> RowFunc:
        func = _COMPARISONS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: func(left(row), right(row))

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def result_type(self, schema: Schema) -> AttrType:
        return AttrType.INT

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def flipped(self) -> "Comparison":
        """The same comparison with sides exchanged (``a < b`` → ``b > a``)."""
        flip = {"=": "=", "<>": "<>", "!=": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Comparison(flip[self.op], self.right, self.left)


@dataclass(frozen=True, eq=False)
class And(Expression):
    """N-ary conjunction."""

    terms: tuple[Expression, ...]

    def __init__(self, terms: Iterable[Expression]):
        flattened: list[Expression] = []
        for term in terms:
            if isinstance(term, And):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        if not flattened:
            raise ExpressionError("empty conjunction")
        object.__setattr__(self, "terms", tuple(flattened))

    def compile(self, schema: Schema) -> RowFunc:
        funcs = [term.compile(schema) for term in self.terms]
        return lambda row: all(func(row) for func in funcs)

    def to_sql(self) -> str:
        return " AND ".join(
            f"({t.to_sql()})" if isinstance(t, Or) else t.to_sql() for t in self.terms
        )

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(t.attributes() for t in self.terms))

    def result_type(self, schema: Schema) -> AttrType:
        return AttrType.INT

    def children(self) -> tuple[Expression, ...]:
        return self.terms

    def _key(self) -> tuple:
        return self.terms


@dataclass(frozen=True, eq=False)
class Or(Expression):
    """N-ary disjunction."""

    terms: tuple[Expression, ...]

    def __init__(self, terms: Iterable[Expression]):
        flattened: list[Expression] = []
        for term in terms:
            if isinstance(term, Or):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        if not flattened:
            raise ExpressionError("empty disjunction")
        object.__setattr__(self, "terms", tuple(flattened))

    def compile(self, schema: Schema) -> RowFunc:
        funcs = [term.compile(schema) for term in self.terms]
        return lambda row: any(func(row) for func in funcs)

    def to_sql(self) -> str:
        return " OR ".join(t.to_sql() for t in self.terms)

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(t.attributes() for t in self.terms))

    def result_type(self, schema: Schema) -> AttrType:
        return AttrType.INT

    def children(self) -> tuple[Expression, ...]:
        return self.terms

    def _key(self) -> tuple:
        return self.terms


@dataclass(frozen=True, eq=False)
class Not(Expression):
    """Boolean negation."""

    term: Expression

    def compile(self, schema: Schema) -> RowFunc:
        func = self.term.compile(schema)
        return lambda row: not func(row)

    def to_sql(self) -> str:
        return f"NOT ({self.term.to_sql()})"

    def attributes(self) -> frozenset[str]:
        return self.term.attributes()

    def result_type(self, schema: Schema) -> AttrType:
        return AttrType.INT

    def children(self) -> tuple[Expression, ...]:
        return (self.term,)

    def _key(self) -> tuple:
        return (self.term,)


_FUNCTIONS: dict[str, Callable[..., object]] = {
    "GREATEST": max,
    "LEAST": min,
    "ABS": abs,
    "LENGTH": len,
}


@dataclass(frozen=True, eq=False)
class FuncCall(Expression):
    """Scalar function call — notably ``GREATEST``/``LEAST`` (Figure 5)."""

    name: str
    args: tuple[Expression, ...]

    def __init__(self, name: str, args: Iterable[Expression]):
        upper = name.upper()
        if upper not in _FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {name!r}")
        object.__setattr__(self, "name", upper)
        object.__setattr__(self, "args", tuple(args))

    def compile(self, schema: Schema) -> RowFunc:
        func = _FUNCTIONS[self.name]
        arg_funcs = [arg.compile(schema) for arg in self.args]
        return lambda row: func(*(arg(row) for arg in arg_funcs))

    def to_sql(self) -> str:
        rendered = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({rendered})"

    def attributes(self) -> frozenset[str]:
        if not self.args:
            return frozenset()
        return frozenset().union(*(a.attributes() for a in self.args))

    def result_type(self, schema: Schema) -> AttrType:
        if self.name == "LENGTH":
            return AttrType.INT
        if not self.args:
            return AttrType.INT
        return self.args[0].result_type(schema)

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def _key(self) -> tuple:
        return (self.name, self.args)


# -- convenience constructors -------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: object, type: AttrType | None = None) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value, type)


def conjuncts(predicate: Expression | None) -> Iterator[Expression]:
    """Yield the top-level AND-terms of *predicate* (none for ``None``)."""
    if predicate is None:
        return
    if isinstance(predicate, And):
        yield from predicate.terms
    else:
        yield predicate


def conjoin(terms: Sequence[Expression]) -> Expression | None:
    """Combine terms with AND; ``None`` for an empty sequence."""
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return And(terms)


def attributes_of(*expressions: Expression | None) -> frozenset[str]:
    """Union of attribute names over possibly-``None`` expressions."""
    names: frozenset[str] = frozenset()
    for expression in expressions:
        if expression is not None:
            names |= expression.attributes()
    return names
