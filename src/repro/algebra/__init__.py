"""Logical algebra: schemas, scalar expressions, and operator trees.

This is the language the optimizer speaks.  A query plan is a tree of
:class:`~repro.algebra.operators.Operator` nodes; each node carries a
*location* (DBMS or middleware), an output schema, and an order property.
The transfer operators ``T^M`` and ``T^D`` are ordinary nodes, which lets the
paper's transformation rules (T1-T12, E1-E5) be expressed as plain tree
rewrites.
"""

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.algebra.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    Literal,
    Not,
    Or,
    col,
    lit,
)
from repro.algebra.operators import (
    Location,
    Operator,
    Scan,
    Select,
    Project,
    Sort,
    Join,
    TemporalJoin,
    TemporalAggregate,
    Product,
    Dedup,
    Coalesce,
    Difference,
    TransferM,
    TransferD,
    AggregateSpec,
)
from repro.algebra.properties import is_prefix_of, guaranteed_order
from repro.algebra import builder

__all__ = [
    "Attribute",
    "AttrType",
    "Schema",
    "Expression",
    "ColumnRef",
    "Literal",
    "BinOp",
    "Comparison",
    "And",
    "Or",
    "Not",
    "FuncCall",
    "col",
    "lit",
    "Location",
    "Operator",
    "Scan",
    "Select",
    "Project",
    "Sort",
    "Join",
    "TemporalJoin",
    "TemporalAggregate",
    "Product",
    "Dedup",
    "Coalesce",
    "Difference",
    "TransferM",
    "TransferD",
    "AggregateSpec",
    "is_prefix_of",
    "guaranteed_order",
    "builder",
]
