"""Fluent construction of logical plans.

The benchmarks rebuild the exact plans of the paper's Figures 7 and 9; this
module keeps that code readable:

    plan = (scan(db, "POSITION")
            .project("PosID", "T1", "T2")
            .sort("PosID", "T1")
            .to_middleware()
            .taggr(group_by=["PosID"], count="PosID")
            .build())
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    AggregateSpec,
    Coalesce,
    Dedup,
    Join,
    Location,
    Operator,
    Product,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)


class PlanBuilder:
    """Wraps an :class:`Operator` and offers chainable constructors.

    Every method returns a new builder; the wrapped tree is immutable.
    The *location* of each added operator defaults to the location of the
    current top of the plan, so chains read naturally: operators added after
    :meth:`to_middleware` run in the middleware until :meth:`to_dbms`.
    """

    def __init__(self, plan: Operator):
        self._plan = plan

    def build(self) -> Operator:
        """Return the wrapped operator tree."""
        return self._plan

    @property
    def plan(self) -> Operator:
        return self._plan

    def _here(self, loc: Location | None) -> Location:
        return loc if loc is not None else self._plan.location

    # -- unary operators ------------------------------------------------------

    def select(self, predicate: Expression, loc: Location | None = None) -> "PlanBuilder":
        return PlanBuilder(Select(self._plan, self._here(loc), predicate))

    def project(self, *names: str, loc: Location | None = None) -> "PlanBuilder":
        return PlanBuilder(Project.of_columns(self._plan, names, self._here(loc)))

    def project_exprs(
        self,
        outputs: Sequence[tuple[str, Expression]],
        loc: Location | None = None,
    ) -> "PlanBuilder":
        return PlanBuilder(Project(self._plan, self._here(loc), tuple(outputs)))

    def sort(self, *keys: str, loc: Location | None = None) -> "PlanBuilder":
        return PlanBuilder(Sort(self._plan, self._here(loc), tuple(keys)))

    def dedup(self, loc: Location | None = None) -> "PlanBuilder":
        return PlanBuilder(Dedup(self._plan, self._here(loc)))

    def coalesce(self, loc: Location | None = None) -> "PlanBuilder":
        return PlanBuilder(Coalesce(self._plan, self._here(loc)))

    def taggr(
        self,
        group_by: Sequence[str] = (),
        count: str | None = None,
        aggregates: Sequence[AggregateSpec] = (),
        loc: Location | None = None,
    ) -> "PlanBuilder":
        """Temporal aggregation; ``count="PosID"`` is sugar for COUNT(PosID)."""
        specs = list(aggregates)
        if count is not None:
            specs.append(AggregateSpec("COUNT", count))
        return PlanBuilder(
            TemporalAggregate(
                self._plan, self._here(loc), tuple(group_by), tuple(specs)
            )
        )

    # -- binary operators ------------------------------------------------------

    def join(
        self,
        other: "PlanBuilder | Operator",
        left_attr: str,
        right_attr: str,
        residual: Expression | None = None,
        loc: Location | None = None,
    ) -> "PlanBuilder":
        right = other.build() if isinstance(other, PlanBuilder) else other
        return PlanBuilder(
            Join(self._plan, right, self._here(loc), left_attr, right_attr, residual)
        )

    def temporal_join(
        self,
        other: "PlanBuilder | Operator",
        left_attr: str,
        right_attr: str,
        loc: Location | None = None,
    ) -> "PlanBuilder":
        right = other.build() if isinstance(other, PlanBuilder) else other
        return PlanBuilder(
            TemporalJoin(self._plan, right, self._here(loc), left_attr, right_attr)
        )

    def product(
        self, other: "PlanBuilder | Operator", loc: Location | None = None
    ) -> "PlanBuilder":
        right = other.build() if isinstance(other, PlanBuilder) else other
        return PlanBuilder(Product(self._plan, right, self._here(loc)))

    # -- transfers -------------------------------------------------------------

    def to_middleware(self) -> "PlanBuilder":
        """Insert ``T^M``; no-op if the plan already runs in the middleware."""
        if self._plan.location is Location.MIDDLEWARE:
            return self
        return PlanBuilder(TransferM(self._plan))

    def to_dbms(self) -> "PlanBuilder":
        """Insert ``T^D``; no-op if the plan already runs in the DBMS."""
        if self._plan.location is Location.DBMS:
            return self
        return PlanBuilder(TransferD(self._plan))


def scan(database: "object", table: str) -> PlanBuilder:
    """Start a plan from a base relation of a MiniDB instance.

    *database* is duck-typed: anything exposing ``schema_of(table)`` and
    optionally ``clustered_order_of(table)`` works, so the algebra layer does
    not import the DBMS package.
    """
    schema = database.schema_of(table)  # type: ignore[attr-defined]
    clustered: tuple[str, ...] = ()
    getter = getattr(database, "clustered_order_of", None)
    if getter is not None:
        clustered = tuple(getter(table))
    return PlanBuilder(Scan(table, schema, clustered))


def from_operator(plan: Operator) -> PlanBuilder:
    """Wrap an existing operator tree."""
    return PlanBuilder(plan)
