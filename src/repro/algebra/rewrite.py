"""Generic expression-tree rewriting.

Used by the SQL planner (aggregate extraction, name resolution) and by the
optimizer's transformation rules (predicate/projection pushing).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.algebra.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    Not,
    Or,
)
from repro.errors import ExpressionError


def rebuild(expression: Expression, children: tuple[Expression, ...]) -> Expression:
    """Clone *expression* with new *children* (same arity, same class)."""
    if isinstance(expression, BinOp):
        left, right = children
        return BinOp(expression.op, left, right)
    if isinstance(expression, Comparison):
        left, right = children
        return Comparison(expression.op, left, right)
    if isinstance(expression, And):
        return And(children)
    if isinstance(expression, Or):
        return Or(children)
    if isinstance(expression, Not):
        (term,) = children
        return Not(term)
    if isinstance(expression, FuncCall):
        return FuncCall(expression.name, children)
    if hasattr(expression, "func") and hasattr(expression, "distinct"):
        # SQL-layer AggregateCall (duck-typed to avoid a layering cycle).
        argument = children[0] if children else None
        return type(expression)(expression.func, argument, expression.distinct)  # type: ignore[call-arg]
    if children:
        raise ExpressionError(f"cannot rebuild {type(expression).__name__} with children")
    return expression


def transform(
    expression: Expression, visitor: Callable[[Expression], Expression | None]
) -> Expression:
    """Bottom-up rewrite.  *visitor* may return a replacement or ``None``
    to keep the (children-rewritten) node."""
    children = expression.children()
    if children:
        new_children = tuple(transform(child, visitor) for child in children)
        if new_children != children:
            expression = rebuild(expression, new_children)
    replacement = visitor(expression)
    return expression if replacement is None else replacement


def substitute(expression: Expression, mapping: Mapping[Expression, Expression]) -> Expression:
    """Replace every node equal to a mapping key, top-down.

    Matching is value equality; matched subtrees are not descended into,
    so an aggregate call mapped to a column reference is swapped atomically.
    """
    if expression in mapping:
        return mapping[expression]
    children = expression.children()
    if not children:
        return expression
    new_children = tuple(substitute(child, mapping) for child in children)
    if new_children == children:
        return expression
    return rebuild(expression, new_children)


def rename_columns(expression: Expression, mapping: Mapping[str, str]) -> Expression:
    """Rewrite column references per *mapping* (lower-cased old -> new)."""

    def visit(node: Expression) -> Expression | None:
        if isinstance(node, ColumnRef):
            replacement = mapping.get(node.name.lower())
            if replacement is not None:
                return ColumnRef(replacement)
        return None

    return transform(expression, visit)


def contains(expression: Expression, needle_type: type) -> bool:
    """True when a node of *needle_type* occurs anywhere in the tree."""
    if isinstance(expression, needle_type):
        return True
    return any(contains(child, needle_type) for child in expression.children())


def collect(expression: Expression, needle_type: type) -> list[Expression]:
    """All nodes of *needle_type* in pre-order."""
    found: list[Expression] = []
    if isinstance(expression, needle_type):
        found.append(expression)
        return found
    for child in expression.children():
        found.extend(collect(child, needle_type))
    return found
