"""Logical algebra operators.

Operators form immutable trees.  Each node carries:

* ``inputs`` — child operators;
* ``location`` — where the paper assigns its evaluation
  (:attr:`Location.DBMS` or :attr:`Location.MIDDLEWARE`);
* a derived output :meth:`~Operator.schema`;
* a delivered :meth:`~Operator.order` (attribute-name tuple) — see
  :mod:`repro.algebra.properties` for when that order is *guaranteed*.

The transfer operators :class:`TransferM` (``T^M``) and :class:`TransferD`
(``T^D``) move a relation between the two locations and are ordinary tree
nodes, exactly as in the paper's plans (Figures 4 and 7).

Temporal convention: a *temporal relation* has two ``DATE`` attributes named
``T1``/``T2`` holding a closed-open validity period (configurable per
operator via ``period`` but defaulted throughout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Iterable, Sequence

from repro.algebra.expressions import Expression
from repro.algebra.schema import Attribute, AttrType, Schema
from repro.errors import PlanError

#: Default names of the period-delimiting attributes.
DEFAULT_PERIOD = ("T1", "T2")


class Location(enum.Enum):
    """Where an operator is evaluated."""

    DBMS = "dbms"
    MIDDLEWARE = "middleware"

    @property
    def superscript(self) -> str:
        """The paper's plan-notation superscript: ``D`` or ``M``."""
        return "D" if self is Location.DBMS else "M"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate function application, e.g. ``COUNT(PosID)``.

    ``attribute`` is ``None`` for ``COUNT(*)``.  The default output name
    follows the paper's Figure 3(b): ``COUNTofPosID``.
    """

    func: str
    attribute: str | None = None
    output: str | None = None

    _FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __post_init__(self) -> None:
        object.__setattr__(self, "func", self.func.upper())
        if self.func not in self._FUNCS:
            raise PlanError(f"unsupported aggregate function {self.func!r}")
        if self.func != "COUNT" and self.attribute is None:
            raise PlanError(f"{self.func} requires an argument attribute")

    @property
    def output_name(self) -> str:
        if self.output:
            return self.output
        target = self.attribute if self.attribute is not None else "ALL"
        return f"{self.func}of{target}"

    def output_type(self, schema: Schema) -> AttrType:
        if self.func == "COUNT":
            return AttrType.INT
        assert self.attribute is not None
        source = schema.type_of(self.attribute)
        if self.func == "AVG":
            return AttrType.FLOAT
        return source

    def to_sql(self) -> str:
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.func}({arg})"


@dataclass(frozen=True)
class Operator:
    """Abstract base operator."""

    # Subclasses declare their own fields; `inputs` is synthesized per class.

    @property
    def inputs(self) -> tuple["Operator", ...]:
        return ()

    @property
    def location(self) -> Location:
        raise NotImplementedError

    @cached_property
    def schema(self) -> Schema:
        return self._derive_schema()

    def _derive_schema(self) -> Schema:
        raise NotImplementedError

    def order(self) -> tuple[str, ...]:
        """Attribute names the output is ordered by (possibly empty)."""
        return ()

    def with_inputs(self, *inputs: "Operator") -> "Operator":
        """Copy of this node with new children (same arity)."""
        raise NotImplementedError

    def located(self, location: Location) -> "Operator":
        """Copy of this node assigned to *location*."""
        if self.location is location:
            return self
        return replace(self, loc=location)  # type: ignore[arg-type]

    def signature(self) -> tuple:
        """Structural identity *excluding* children (used by the memo)."""
        raise NotImplementedError

    @cached_property
    def cache_key(self) -> tuple:
        """Structural identity of the whole tree (location included).

        Two structurally equal plans share statistics and cost estimates,
        so estimator caches key on this rather than object identity.
        """
        return (
            self.signature(),
            self.location,
            tuple(child.cache_key for child in self.inputs),
        )

    # -- traversal helpers ----------------------------------------------------

    def walk(self) -> Iterable["Operator"]:
        """Pre-order traversal of the tree rooted here."""
        yield self
        for child in self.inputs:
            yield from child.walk()

    def size(self) -> int:
        """Number of operator nodes in the tree."""
        return 1 + sum(child.size() for child in self.inputs)

    @property
    def name(self) -> str:
        return type(self).__name__

    def label(self) -> str:
        """Short display label with the location superscript."""
        return f"{self.name}^{self.location.superscript}"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line plan rendering for ``explain``-style output."""
        line = "  " * indent + self.describe()
        parts = [line]
        for child in self.inputs:
            parts.append(child.pretty(indent + 1))
        return "\n".join(parts)

    def describe(self) -> str:
        return self.label()

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class Scan(Operator):
    """A base-relation scan.  Base relations always live in the DBMS."""

    table: str
    base_schema: Schema
    #: Order the stored relation is clustered in, if any.
    clustered_order: tuple[str, ...] = ()

    @property
    def location(self) -> Location:
        return Location.DBMS

    def _derive_schema(self) -> Schema:
        return self.base_schema

    def order(self) -> tuple[str, ...]:
        return self.clustered_order

    def with_inputs(self, *inputs: Operator) -> "Scan":
        if inputs:
            raise PlanError("Scan takes no inputs")
        return self

    def located(self, location: Location) -> Operator:
        if location is not Location.DBMS:
            raise PlanError("base relations reside in the DBMS")
        return self

    def signature(self) -> tuple:
        return ("Scan", self.table.lower())

    def describe(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class _Unary(Operator):
    """Shared plumbing for single-input operators."""

    input: Operator
    loc: Location = Location.DBMS

    @property
    def inputs(self) -> tuple[Operator, ...]:
        return (self.input,)

    @property
    def location(self) -> Location:
        return self.loc

    def with_inputs(self, *inputs: Operator) -> Operator:
        (child,) = inputs
        return replace(self, input=child)


@dataclass(frozen=True)
class _Binary(Operator):
    """Shared plumbing for two-input operators."""

    left: Operator
    right: Operator
    loc: Location = Location.DBMS

    @property
    def inputs(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    @property
    def location(self) -> Location:
        return self.loc

    def with_inputs(self, *inputs: Operator) -> Operator:
        left, right = inputs
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class Select(_Unary):
    """Selection σ_P."""

    predicate: Expression = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.predicate is None:
            raise PlanError("Select requires a predicate")

    def _derive_schema(self) -> Schema:
        schema = self.input.schema
        for attribute in self.predicate.attributes():
            if not schema.has(attribute):
                raise PlanError(f"selection references unknown attribute {attribute!r}")
        return schema

    def order(self) -> tuple[str, ...]:
        return self.input.order()

    def signature(self) -> tuple:
        return ("Select", self.predicate)

    def describe(self) -> str:
        return f"Select^{self.location.superscript}[{self.predicate.to_sql()}]"


@dataclass(frozen=True)
class Project(_Unary):
    """Projection π.  Each output is ``(name, expression)``.

    Plain column projection uses :meth:`of_columns`.  Duplicates are *not*
    eliminated (multiset semantics), matching the paper's algebra.
    """

    outputs: tuple[tuple[str, Expression], ...] = ()

    def __post_init__(self) -> None:
        if not self.outputs:
            raise PlanError("Project requires at least one output")

    @staticmethod
    def of_columns(input: Operator, names: Sequence[str], loc: Location = Location.DBMS) -> "Project":
        from repro.algebra.expressions import col

        return Project(input, loc, tuple((name, col(name)) for name in names))

    def _derive_schema(self) -> Schema:
        source = self.input.schema
        attributes = []
        for name, expression in self.outputs:
            attr_type = expression.result_type(source)
            width = None
            referenced = expression.attributes()
            if len(referenced) == 1:
                ref_name = next(iter(referenced))
                if source.has(ref_name):
                    width = source[ref_name].byte_width
            attributes.append(Attribute(name, attr_type, width))
        return Schema(attributes)

    def is_simple(self) -> bool:
        """True when every output is a bare column kept under its own name."""
        from repro.algebra.expressions import ColumnRef

        return all(
            isinstance(expression, ColumnRef) and expression.name.lower() == name.lower()
            for name, expression in self.outputs
        )

    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.outputs)

    def order(self) -> tuple[str, ...]:
        # Order survives projection for the prefix of the input order whose
        # columns pass through as bare references — under the *output* name,
        # since a renaming projection (e.g. the compensation E2 adds when it
        # commutes a join) moves the ordered values to a different column.
        from repro.algebra.expressions import ColumnRef

        passthrough: dict[str, str] = {}
        for name, expression in self.outputs:
            if isinstance(expression, ColumnRef):
                passthrough.setdefault(expression.name.lower(), name)
        surviving: list[str] = []
        for attribute in self.input.order():
            output_name = passthrough.get(attribute.lower())
            if output_name is None:
                break
            surviving.append(output_name)
        return tuple(surviving)

    def signature(self) -> tuple:
        return ("Project", self.outputs)

    def describe(self) -> str:
        rendered = ", ".join(
            name if isinstance(expr, type(expr)) and expr.to_sql() == name else f"{expr.to_sql()} AS {name}"
            for name, expr in self.outputs
        )
        return f"Project^{self.location.superscript}[{rendered}]"


@dataclass(frozen=True)
class Sort(_Unary):
    """Sort on an attribute list (ascending)."""

    keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.keys:
            raise PlanError("Sort requires at least one key")

    def _derive_schema(self) -> Schema:
        schema = self.input.schema
        for key in self.keys:
            if not schema.has(key):
                raise PlanError(f"sort key {key!r} not in input schema")
        return schema

    def order(self) -> tuple[str, ...]:
        return self.keys

    def signature(self) -> tuple:
        return ("Sort", tuple(key.lower() for key in self.keys))

    def describe(self) -> str:
        return f"Sort^{self.location.superscript}[{', '.join(self.keys)}]"


@dataclass(frozen=True)
class Product(_Binary):
    """Cartesian product ×."""

    def _derive_schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    def signature(self) -> tuple:
        return ("Product",)


@dataclass(frozen=True)
class Join(_Binary):
    """Equi-join ⋈ on ``left_attr = right_attr`` plus an optional residual."""

    left_attr: str = ""
    right_attr: str = ""
    residual: Expression | None = None

    def __post_init__(self) -> None:
        if not self.left_attr or not self.right_attr:
            raise PlanError("Join requires join attributes on both sides")

    def _derive_schema(self) -> Schema:
        if not self.left.schema.has(self.left_attr):
            raise PlanError(f"join attribute {self.left_attr!r} missing on the left")
        if not self.right.schema.has(self.right_attr):
            raise PlanError(f"join attribute {self.right_attr!r} missing on the right")
        return self.left.schema.concat(self.right.schema)

    def order(self) -> tuple[str, ...]:
        # Sort-merge implementations deliver rows grouped by the join key.
        return (self.left_attr,)

    def signature(self) -> tuple:
        return ("Join", self.left_attr.lower(), self.right_attr.lower(), self.residual)

    def describe(self) -> str:
        condition = f"{self.left_attr}={self.right_attr}"
        if self.residual is not None:
            condition += f" AND {self.residual.to_sql()}"
        return f"Join^{self.location.superscript}[{condition}]"


@dataclass(frozen=True)
class TemporalJoin(_Binary):
    """Temporal join ⋈^T: equi-join + period overlap, yielding the
    intersection period.

    Output schema: left attributes without the period, right attributes
    without the period (disambiguated), then ``T1``/``T2`` holding the
    intersection (the paper's ``GREATEST``/``LEAST`` projection, Figure 5).
    """

    left_attr: str = ""
    right_attr: str = ""
    period: tuple[str, str] = DEFAULT_PERIOD

    def __post_init__(self) -> None:
        if not self.left_attr or not self.right_attr:
            raise PlanError("TemporalJoin requires join attributes on both sides")

    def _nontemporal(self, schema: Schema) -> list[Attribute]:
        skip = {name.lower() for name in self.period}
        return [attribute for attribute in schema if attribute.name.lower() not in skip]

    def _derive_schema(self) -> Schema:
        t1, t2 = self.period
        for side, schema, attr in (
            ("left", self.left.schema, self.left_attr),
            ("right", self.right.schema, self.right_attr),
        ):
            if not schema.has(attr):
                raise PlanError(f"join attribute {attr!r} missing on the {side}")
            if not (schema.has(t1) and schema.has(t2)):
                raise PlanError(f"temporal join requires {t1}/{t2} on the {side} input")
        combined = Schema(self._nontemporal(self.left.schema)).concat(
            Schema(self._nontemporal(self.right.schema))
        )
        return Schema(
            list(combined)
            + [Attribute(t1, AttrType.DATE), Attribute(t2, AttrType.DATE)]
        )

    def order(self) -> tuple[str, ...]:
        return (self.left_attr,)

    def signature(self) -> tuple:
        return (
            "TemporalJoin",
            self.left_attr.lower(),
            self.right_attr.lower(),
            tuple(name.lower() for name in self.period),
        )

    def describe(self) -> str:
        return (
            f"TemporalJoin^{self.location.superscript}"
            f"[{self.left_attr}={self.right_attr}, overlap]"
        )


@dataclass(frozen=True)
class TemporalAggregate(_Unary):
    """Temporal aggregation ξ^T.

    Groups rows by ``group_by``, splits time into constant intervals per
    group, and evaluates the aggregates over the tuples valid in each
    interval.  Output: group attributes, ``T1``, ``T2``, one column per
    aggregate (Figure 3(c)).
    """

    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    period: tuple[str, str] = DEFAULT_PERIOD

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("TemporalAggregate requires at least one aggregate")

    def _derive_schema(self) -> Schema:
        source = self.input.schema
        t1, t2 = self.period
        if not (source.has(t1) and source.has(t2)):
            raise PlanError(f"temporal aggregation requires {t1}/{t2} in the input")
        attributes = [source[name] for name in self.group_by]
        attributes.append(Attribute(t1, AttrType.DATE))
        attributes.append(Attribute(t2, AttrType.DATE))
        for aggregate in self.aggregates:
            if aggregate.attribute is not None and not source.has(aggregate.attribute):
                raise PlanError(
                    f"aggregate argument {aggregate.attribute!r} not in input schema"
                )
            attributes.append(
                Attribute(aggregate.output_name, aggregate.output_type(source))
            )
        return Schema(attributes)

    def order(self) -> tuple[str, ...]:
        # TAGGR^M emits groups in grouping-attribute order, then by T1.
        return tuple(self.group_by) + (self.period[0],)

    def signature(self) -> tuple:
        return (
            "TemporalAggregate",
            tuple(name.lower() for name in self.group_by),
            self.aggregates,
            tuple(name.lower() for name in self.period),
        )

    def describe(self) -> str:
        aggs = ", ".join(spec.to_sql() for spec in self.aggregates)
        group = ", ".join(self.group_by) or "()"
        return f"TAggr^{self.location.superscript}[{group}; {aggs}]"


@dataclass(frozen=True)
class Dedup(_Unary):
    """Duplicate elimination (Section 7 extension operator)."""

    def _derive_schema(self) -> Schema:
        return self.input.schema

    def order(self) -> tuple[str, ...]:
        return self.input.order()

    def signature(self) -> tuple:
        return ("Dedup",)


@dataclass(frozen=True)
class Coalesce(_Unary):
    """Temporal coalescing (Section 7 extension operator).

    Merges value-equivalent tuples whose periods overlap or meet.
    """

    period: tuple[str, str] = DEFAULT_PERIOD

    def _derive_schema(self) -> Schema:
        schema = self.input.schema
        t1, t2 = self.period
        if not (schema.has(t1) and schema.has(t2)):
            raise PlanError(f"coalescing requires {t1}/{t2} in the input")
        return schema

    def order(self) -> tuple[str, ...]:
        # The single-pass algorithm emits each group at its first input
        # row, carrying that row's value attributes and T1; only the
        # extended endpoint T2 changes.  Every input order prefix up to
        # (excluding) T2 therefore survives coalescing.
        t2 = self.period[1].lower()
        prefix: list[str] = []
        for key in self.input.order():
            if key.lower() == t2:
                break
            prefix.append(key)
        return tuple(prefix)

    def signature(self) -> tuple:
        return ("Coalesce", tuple(name.lower() for name in self.period))


@dataclass(frozen=True)
class Difference(_Binary):
    """Multiset difference (Section 7 extension operator)."""

    def _derive_schema(self) -> Schema:
        if len(self.left.schema) != len(self.right.schema):
            raise PlanError("difference arguments must be union-compatible")
        return self.left.schema

    def signature(self) -> tuple:
        return ("Difference",)


@dataclass(frozen=True)
class TransferM(_Unary):
    """``T^M`` — move the input relation from the DBMS to the middleware."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "loc", Location.MIDDLEWARE)

    def _derive_schema(self) -> Schema:
        return self.input.schema

    def order(self) -> tuple[str, ...]:
        # A cursor fetch preserves the order the DBMS produced.
        return self.input.order()

    def signature(self) -> tuple:
        return ("TransferM",)

    def describe(self) -> str:
        return "T^M"


@dataclass(frozen=True)
class TransferD(_Unary):
    """``T^D`` — materialize the input middleware relation in the DBMS."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "loc", Location.DBMS)

    def _derive_schema(self) -> Schema:
        return self.input.schema

    def order(self) -> tuple[str, ...]:
        # A freshly loaded DBMS table has no guaranteed scan order.
        return ()

    def signature(self) -> tuple:
        return ("TransferD",)

    def describe(self) -> str:
        return "T^D"
