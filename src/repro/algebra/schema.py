"""Relation schemas.

A :class:`Schema` is an ordered sequence of named, typed attributes — the
paper's :math:`\\Omega_r`.  Rows are plain Python tuples positionally aligned
with the schema; the schema provides the name-to-position map.

Attribute names are case-preserving but matched case-insensitively, like SQL
identifiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class AttrType(enum.Enum):
    """Column types supported by MiniDB and the middleware."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    #: Day-granularity timestamps, stored as integer day numbers.
    DATE = "date"

    @property
    def python_type(self) -> type:
        if self in (AttrType.INT, AttrType.DATE):
            return int
        if self is AttrType.FLOAT:
            return float
        return str

    @property
    def is_numeric(self) -> bool:
        return self in (AttrType.INT, AttrType.FLOAT, AttrType.DATE)

    @property
    def default_width(self) -> int:
        """Bytes used for row-size accounting (Oracle-ish widths)."""
        if self in (AttrType.INT, AttrType.DATE):
            return 8
        if self is AttrType.FLOAT:
            return 8
        return 24


@dataclass(frozen=True)
class Attribute:
    """A named, typed column."""

    name: str
    type: AttrType = AttrType.INT
    #: Average byte width; defaults to the type's width (strings may override).
    width: int | None = None

    @property
    def byte_width(self) -> int:
        return self.width if self.width is not None else self.type.default_width

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.type, self.width)


class Schema:
    """An ordered, name-addressable collection of :class:`Attribute`.

    >>> s = Schema([Attribute("PosID"), Attribute("T1", AttrType.DATE)])
    >>> s.index_of("posid")
    0
    >>> len(s)
    2
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._index: dict[str, int] = {}
        for position, attribute in enumerate(self._attributes):
            key = attribute.name.lower()
            if key in self._index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            self._index[key] = position

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, item: int | str) -> Attribute:
        if isinstance(item, str):
            return self._attributes[self.index_of(item)]
        return self._attributes[item]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.type.value}" for a in self._attributes)
        return f"Schema({cols})"

    # -- lookups ------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def index_of(self, name: str) -> int:
        """Position of attribute *name* (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; have {self.names}") from None

    def type_of(self, name: str) -> AttrType:
        return self._attributes[self.index_of(name)].type

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    @property
    def row_width(self) -> int:
        """Average row size in bytes, used by ``size(r)`` in cost formulas."""
        return sum(a.byte_width for a in self._attributes) or 1

    # -- derivation ---------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection on *names* (order follows *names*)."""
        return Schema(self[name] for name in names)

    def concat(self, other: "Schema", *, disambiguate: bool = True) -> "Schema":
        """Schema of a product/join of two inputs.

        Name clashes are resolved by suffixing the right-hand attribute with
        ``_2`` (``_3`` if needed, and so on) when *disambiguate* is set;
        otherwise a clash raises :class:`SchemaError`.
        """
        attributes = list(self._attributes)
        taken = {a.name.lower() for a in attributes}
        for attribute in other:
            name = attribute.name
            if name.lower() in taken:
                if not disambiguate:
                    raise SchemaError(f"attribute {name!r} exists on both sides")
                counter = 2
                while f"{name}_{counter}".lower() in taken:
                    counter += 1
                name = f"{name}_{counter}"
            taken.add(name.lower())
            attributes.append(attribute.renamed(name))
        return Schema(attributes)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed per *mapping* (old -> new)."""
        lowered = {old.lower(): new for old, new in mapping.items()}
        return Schema(
            attribute.renamed(lowered.get(attribute.name.lower(), attribute.name))
            for attribute in self._attributes
        )
