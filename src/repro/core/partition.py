"""Compile-time partition planning for parallel execution.

Decides, per middleware pipeline, whether the compiled plan may run as an
exchange of *k* partitions (``TangoConfig.workers``) and how the rows
split.  The analysis is deliberately conservative — only unary middleware
pipelines over a single ``T^M`` region (no ``T^D`` inside, no joins)
partition, and only when an attribute exists that keeps both semantics and
delivered order intact:

* a ``TAGGR^M`` pins the partition attribute to its leading group-by
  attribute, so every group lands wholly in one partition;
* a ``SORT^M`` pins it to its leading key, so concatenating range
  partitions in cut-point order reproduces the global sort;
* filters, projections, dedup, and coalescing pass the requirement
  through untouched (they are order preserving and row-local — duplicate
  and value-equivalent rows agree on the partition attribute, so they
  never straddle a partition boundary).

Range cut points come from the Section 3.3 statistics (histogram
equal-count inversion) via :func:`repro.xxl.exchange.range_partition_spec`.
When anything is missing — statistics, a usable attribute, enough rows —
the answer is "stay serial", never a wrong plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators import (
    Coalesce,
    Dedup,
    Operator,
    Project,
    Select,
    Sort,
    TemporalAggregate,
    TransferD,
    TransferM,
)
from repro.xxl.exchange import (
    MIN_PARTITION_ROWS,
    PartitionSpec,
    range_partition_spec,
)


@dataclass
class ParallelContext:
    """Everything ``compile_plan`` needs to parallelize a pipeline."""

    #: Maximum partitions / producer threads (``TangoConfig.workers``).
    workers: int
    #: ``"range"`` (T^M fan-out over pooled connections) or ``"hash"``
    #: (middleware repartitioning of one serial transfer).
    strategy: str = "range"
    #: The Section 3.3 estimator supplying partition-point statistics.
    estimator: object | None = None
    #: Connection pool the per-partition ``TRANSFER^M`` cursors draw from.
    pool: object | None = None
    #: Estimated rows below which a partition is not worth its startup.
    min_partition_rows: int = field(default=MIN_PARTITION_ROWS)


def _contains_transfer_d(node: Operator) -> bool:
    if isinstance(node, TransferD):
        return True
    return any(_contains_transfer_d(child) for child in node.inputs)


def partitionable_pipeline(node: Operator) -> tuple[TransferM, str] | None:
    """``(transfer, attribute)`` when the middleware pipeline rooted at
    *node* may partition on *attribute*, else None."""
    attribute: str | None = None
    current = node
    while True:
        if isinstance(current, TransferM):
            if _contains_transfer_d(current.input):
                return None
            if attribute is None:
                delivered = current.order()
                if not delivered:
                    return None
                attribute = delivered[0]
            if not current.schema.has(attribute):
                return None
            return current, attribute
        if isinstance(current, (Select, Project, Dedup, Coalesce)):
            current = current.input
            continue
        if isinstance(current, Sort):
            leading = current.keys[0]
            if attribute is None:
                attribute = leading
            elif attribute.lower() != leading.lower():
                return None
            current = current.input
            continue
        if isinstance(current, TemporalAggregate):
            if not current.group_by:
                return None  # one global group cannot split
            leading = current.group_by[0]
            if attribute is None:
                attribute = leading
            elif attribute.lower() != leading.lower():
                return None
            current = current.input
            continue
        return None  # joins, differences, DBMS-located nodes: stay serial


def partition_spec_for(
    transfer: TransferM, attribute: str, context: ParallelContext
) -> PartitionSpec | None:
    """A :class:`PartitionSpec` for the region below *transfer*, or None
    when the statistics say partitioning will not pay off."""
    if context.estimator is None or context.workers < 2:
        return None
    try:
        stats = context.estimator.estimate(transfer.input)
    except Exception:  # noqa: BLE001 - missing stats means "stay serial"
        return None
    degree = min(
        context.workers,
        int(stats.cardinality // max(1, context.min_partition_rows)),
    )
    if degree < 2:
        return None
    if context.strategy == "hash":
        return PartitionSpec(attribute, "hash", degree)
    return range_partition_spec(
        attribute, stats, degree, min_rows=context.min_partition_rows
    )
