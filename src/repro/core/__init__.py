"""TANGO proper: the temporal middleware on top of the substrates.

Components per Figure 1:

* :mod:`repro.core.parser` — temporal SQL (``VALIDTIME``-prefixed) to the
  initial algebraic plan (all processing in the DBMS, one ``T^M`` on top);
* :mod:`repro.core.translator` — Translator-To-SQL: plan parts below ``T^M``
  to SQL text, including the constant-interval rewrite for ``TAGGR^D``;
* :mod:`repro.core.plans` — execution-ready plans: the Figure 5 algorithm
  sequence compiled from an optimized operator tree;
* :mod:`repro.core.engine` — the Execution Engine (Figure 2);
* :mod:`repro.core.tango` — the :class:`~repro.core.tango.Tango` facade a
  client application talks to.
"""

from repro.core.tango import Tango, TangoConfig, QueryResult
from repro.core.parser import parse_temporal_query
from repro.core.translator import SQLTranslator
from repro.core.plans import compile_plan, ExecutionPlan
from repro.core.engine import ExecutionEngine
from repro.core.feedback import (
    FeedbackAdapter,
    TransferObservation,
    observations_from_trace,
)

__all__ = [
    "Tango",
    "TangoConfig",
    "QueryResult",
    "parse_temporal_query",
    "SQLTranslator",
    "compile_plan",
    "ExecutionPlan",
    "ExecutionEngine",
    "FeedbackAdapter",
    "TransferObservation",
    "observations_from_trace",
]
