"""Translator-To-SQL (Figure 1).

Translates the parts of a chosen plan that are assigned to the DBMS — the
subtrees below each ``T^M`` that reach either the leaf level (base-relation
scans) or a ``T^D`` (a middleware-produced temp table) — into SQL text.

Every operator becomes one SELECT layer over derived tables, so arbitrary
DBMS-located trees translate compositionally.  Two operators get special
treatment:

* ``TemporalJoin@D`` emits the Figure 5 shape: a regular join with the
  overlap condition and ``GREATEST``/``LEAST`` period projections;
* ``TemporalAggregate@D`` (``TAGGR^D``) emits the classic constant-interval
  SQL — instants from a ``UNION`` of T1/T2, adjacent-instant pairing, and an
  overlap-counting join — the "50-line SQL query" of Section 3.4.

Interior sorts are dropped (a DBMS provides no order guarantees below the
top level — Section 4); only the top-most sort becomes the final
``ORDER BY``.
"""

from __future__ import annotations

from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    Dedup,
    Join,
    Location,
    Operator,
    Product,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
)
from repro.errors import PlanError


class SQLTranslator:
    """Stateless translator; temp-table names for ``T^D`` nodes are supplied
    per call (they are assigned when the execution plan is linearized)."""

    def translate(
        self,
        plan: Operator,
        temp_tables: dict[int, str] | None = None,
    ) -> str:
        """SQL for a DBMS-located plan subtree.

        *temp_tables* maps ``id(transfer_d_node)`` to the table each ``T^D``
        loaded.
        """
        if plan.location is not Location.DBMS:
            raise PlanError(
                f"cannot translate {plan.name} at {plan.location.value} to SQL"
            )
        context = _Context(temp_tables or {})
        order_by: tuple[str, ...] = ()
        body = plan
        if isinstance(plan, Sort):
            order_by = plan.keys
            body = plan.input
        sql = context.render(body)
        if order_by:
            sql += "\nORDER BY " + ", ".join(order_by)
        return sql

    def translate_partition(
        self,
        plan: Operator,
        temp_tables: dict[int, str] | None,
        predicate: str,
    ) -> str:
        """SQL for one partition of a fanned-out ``TRANSFER^M``.

        Wraps the subtree's SQL in one more SELECT layer restricted to
        *predicate* (a range condition on the partition attribute,
        rendered against alias ``TPART``), keeping the top-level
        ``ORDER BY`` outermost so every partition arrives in delivered
        order and concatenation in cut-point order reproduces the global
        order.
        """
        if plan.location is not Location.DBMS:
            raise PlanError(
                f"cannot translate {plan.name} at {plan.location.value} to SQL"
            )
        context = _Context(temp_tables or {})
        order_by: tuple[str, ...] = ()
        body = plan
        if isinstance(plan, Sort):
            order_by = plan.keys
            body = plan.input
        sql = (
            f"SELECT *\nFROM ({context.render(body)}) TPART\nWHERE {predicate}"
        )
        if order_by:
            sql += "\nORDER BY " + ", ".join(order_by)
        return sql


class _Context:
    def __init__(self, temp_tables: dict[int, str]):
        self._temp_tables = temp_tables
        self._alias_counter = 0

    def _alias(self) -> str:
        self._alias_counter += 1
        return f"Q{self._alias_counter}"

    def _from_item(self, node: Operator) -> str:
        """A FROM-clause item for *node*: a bare table or a derived table."""
        if isinstance(node, Scan):
            return f"{node.table} {self._alias()}"
        if isinstance(node, TransferD):
            try:
                return f"{self._temp_tables[id(node)]} {self._alias()}"
            except KeyError:
                raise PlanError(
                    "T^D node has no assigned temp table; compile the plan "
                    "through repro.core.plans.compile_plan"
                ) from None
        return f"({self.render(node)}) {self._alias()}"

    # -- per-operator rendering ---------------------------------------------------------

    def render(self, node: Operator) -> str:
        if isinstance(node, (Scan, TransferD)):
            item = self._from_item(node)
            alias = item.rsplit(" ", 1)[1]
            columns = ", ".join(
                f"{alias}.{a.name} AS {a.name}" for a in node.schema
            )
            return f"SELECT {columns}\nFROM {item}"
        if isinstance(node, Select):
            return self._render_select(node)
        if isinstance(node, Project):
            return self._render_project(node)
        if isinstance(node, Sort):
            # Interior sort: the DBMS gives no mid-plan order guarantee, so
            # the sort is translated away (multiset equivalence).
            return self.render(node.input)
        if isinstance(node, Dedup):
            inner = self._from_item(node.input)
            return f"SELECT DISTINCT *\nFROM {inner}"
        if isinstance(node, Product):
            return self._render_product(node)
        if isinstance(node, TemporalJoin):
            return self._render_temporal_join(node)
        if isinstance(node, Join):
            return self._render_join(node)
        if isinstance(node, TemporalAggregate):
            return self._render_taggr(node)
        raise PlanError(f"no SQL translation for {node.name} in the DBMS")

    def _render_select(self, node: Select) -> str:
        item = self._from_item(node.input)
        return (
            f"SELECT *\nFROM {item}\nWHERE {node.predicate.to_sql()}"
        )

    def _render_project(self, node: Project) -> str:
        item = self._from_item(node.input)
        outputs = ", ".join(
            _render_output(name, expression) for name, expression in node.outputs
        )
        return f"SELECT {outputs}\nFROM {item}"

    def _render_product(self, node: Product) -> str:
        left = self._from_item(node.left)
        right = self._from_item(node.right)
        left_alias = left.rsplit(" ", 1)[1]
        right_alias = right.rsplit(" ", 1)[1]
        outputs = _combined_outputs(node, left_alias, right_alias)
        return f"SELECT {outputs}\nFROM {left}, {right}"

    def _render_join(self, node: Join) -> str:
        left = self._from_item(node.left)
        right = self._from_item(node.right)
        left_alias = left.rsplit(" ", 1)[1]
        right_alias = right.rsplit(" ", 1)[1]
        outputs = _combined_outputs(node, left_alias, right_alias)
        condition = (
            f"{left_alias}.{node.left_attr} = {right_alias}.{node.right_attr}"
        )
        if node.residual is not None:
            condition += f" AND {_qualify(node, node.residual, left_alias, right_alias)}"
        return f"SELECT {outputs}\nFROM {left}, {right}\nWHERE {condition}"

    def _render_temporal_join(self, node: TemporalJoin) -> str:
        left = self._from_item(node.left)
        right = self._from_item(node.right)
        a = left.rsplit(" ", 1)[1]
        b = right.rsplit(" ", 1)[1]
        t1, t2 = node.period
        skip = {t1.lower(), t2.lower()}
        outputs: list[str] = []
        schema_names = iter(node.schema.names)
        for attribute in node.left.schema:
            if attribute.name.lower() in skip:
                continue
            outputs.append(f"{a}.{attribute.name} AS {next(schema_names)}")
        for attribute in node.right.schema:
            if attribute.name.lower() in skip:
                continue
            outputs.append(f"{b}.{attribute.name} AS {next(schema_names)}")
        outputs.append(f"GREATEST({a}.{t1}, {b}.{t1}) AS {t1}")
        outputs.append(f"LEAST({a}.{t2}, {b}.{t2}) AS {t2}")
        condition = (
            f"{a}.{node.left_attr} = {b}.{node.right_attr} "
            f"AND {a}.{t1} < {b}.{t2} AND {a}.{t2} > {b}.{t1}"
        )
        return (
            f"SELECT {', '.join(outputs)}\nFROM {left}, {right}\nWHERE {condition}"
        )

    def _render_taggr(self, node: TemporalAggregate) -> str:
        """The constant-interval SQL rewrite of temporal aggregation.

        Shape (for grouping attributes G and period T1/T2):

        1. ``instants``: all T1 and T2 values per G (``UNION`` dedups);
        2. ``intervals``: each instant paired with the next instant of the
           same group (``MIN`` over later instants);
        3. count/aggregate the argument tuples whose period covers each
           interval.

        Intervals covered by no tuple vanish via the inner join, so the
        result matches ``TAGGR^M`` exactly (Figure 3(c)).
        """
        source = self._from_item(node.input)
        t1, t2 = node.period
        group = list(node.group_by)
        group_cols = ", ".join(group) if group else ""

        def instants() -> str:
            prefix = f"{group_cols}, " if group else ""
            return (
                f"SELECT {prefix}{t1} AS TS FROM {source} "
                f"UNION SELECT {prefix}{t2} FROM {self._from_item(node.input)}"
            )

        i1 = self._alias()
        i2 = self._alias()
        join_groups = " AND ".join(
            f"{i1}.{g} = {i2}.{g}" for g in group
        )
        group_select = ", ".join(f"{i1}.{g} AS {g}" for g in group)
        interval_group_by = ", ".join([f"{i1}.{g}" for g in group] + [f"{i1}.TS"])
        intervals = (
            "SELECT "
            + (group_select + ", " if group else "")
            + f"{i1}.TS AS TS, MIN({i2}.TS) AS TE\n"
            + f"FROM ({instants()}) {i1}, ({instants()}) {i2}\n"
            + "WHERE "
            + (join_groups + " AND " if group else "")
            + f"{i1}.TS < {i2}.TS\n"
            + f"GROUP BY {interval_group_by}"
        )

        iv = self._alias()
        arg = self._from_item(node.input)
        p = arg.rsplit(" ", 1)[1]
        final_outputs = [f"{iv}.{g} AS {g}" for g in group]
        final_outputs.append(f"{iv}.TS AS {t1}")
        final_outputs.append(f"{iv}.TE AS {t2}")
        for spec in node.aggregates:
            if spec.func == "COUNT":
                final_outputs.append(f"COUNT(*) AS {spec.output_name}")
            else:
                final_outputs.append(
                    f"{spec.func}({p}.{spec.attribute}) AS {spec.output_name}"
                )
        match_groups = " AND ".join(f"{p}.{g} = {iv}.{g}" for g in group)
        final_group_by = ", ".join(
            [f"{iv}.{g}" for g in group] + [f"{iv}.TS", f"{iv}.TE"]
        )
        return (
            f"SELECT {', '.join(final_outputs)}\n"
            f"FROM ({intervals}) {iv}, {arg}"
            + "\nWHERE "
            + (match_groups + " AND " if group else "")
            + f"{p}.{t1} <= {iv}.TS AND {iv}.TE <= {p}.{t2}\n"
            + f"GROUP BY {final_group_by}"
        )


def _render_output(name: str, expression: Expression) -> str:
    rendered = expression.to_sql()
    if rendered.lower() == name.lower():
        return rendered
    return f"{rendered} AS {name}"


def _combined_outputs(node: Operator, left_alias: str, right_alias: str) -> str:
    """SELECT list renaming both sides to the operator's derived schema
    (which disambiguates duplicate names with ``_2`` suffixes)."""
    left_schema = node.inputs[0].schema
    outputs: list[str] = []
    names = node.schema.names
    for position, name in enumerate(names):
        if position < len(left_schema):
            source = f"{left_alias}.{left_schema[position].name}"
        else:
            right_attr = node.inputs[1].schema[position - len(left_schema)].name
            source = f"{right_alias}.{right_attr}"
        outputs.append(f"{source} AS {name}")
    return ", ".join(outputs)


def _qualify(
    node: Join, expression: Expression, left_alias: str, right_alias: str
) -> str:
    """Render a residual predicate with column references qualified.

    Residual attributes use the join's *output* names (right-side duplicates
    carry ``_2`` suffixes); they are mapped back to the underlying source
    column on the owning side.
    """
    from repro.algebra.expressions import ColumnRef
    from repro.algebra.rewrite import transform

    left_schema = node.left.schema
    right_schema = node.right.schema
    mapping: dict[str, str] = {}
    for position, name in enumerate(node.schema.names):
        if position < len(left_schema):
            source = f"{left_alias}.{left_schema[position].name}"
        else:
            source = f"{right_alias}.{right_schema[position - len(left_schema)].name}"
        mapping[name.lower()] = source

    def visit(expr: Expression) -> Expression | None:
        if isinstance(expr, ColumnRef):
            qualified = mapping.get(expr.name.lower())
            if qualified is None:
                raise PlanError(
                    f"residual references {expr.name!r}, not in the join output"
                )
            return ColumnRef(qualified)
        return None

    return transform(expression, visit).to_sql()
