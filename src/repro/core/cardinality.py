"""The persistent cardinality feedback store (the Section 7 loop, part 2).

:mod:`repro.core.feedback` closes the paper's performance-feedback loop for
transfer *cost factors*; this module closes it for *cardinalities* — the
dominant cause of bad plans.  Three pieces:

* :func:`qerror` — the standard plan-quality metric: the factor by which an
  estimate is off, ``max(est/act, act/est)``, symmetric and always ≥ 1.
* :func:`plan_fingerprint` — a *cardinality* fingerprint of an operator
  subtree: two subtrees that must produce the same number of rows map to
  the same fingerprint.  Location moves (``T^M``/``T^D``), sorts,
  projections, and top-level conjunct order all normalize away, so the
  selectivity learned while executing one physical shape transfers to
  every equivalent shape the optimizer may consider later.
* :class:`CardinalityFeedbackStore` — learned cardinalities keyed by
  fingerprint, EMA-smoothed over observations, JSON-persistable across
  middleware sessions.  Its ``epoch`` mirrors the statistics collector's:
  it is bumped only on *material* changes (a new fingerprint, or a shift
  beyond the tolerance), and the plan cache keys on it, so cached plans
  never outlive the estimates they were costed with while a converged
  store keeps every cache hit.

:func:`cardinality_observations` and :func:`trusted_nodes` harvest the
est-vs-actual pairs from a finished execution's span tree; the harvest
only trusts cursors that provably ran to exhaustion (join inputs may be
abandoned early by the merge, so their row counts are lower bounds, not
cardinalities).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

from repro.algebra.expressions import conjuncts
from repro.algebra.operators import (
    Difference,
    Join,
    Operator,
    Product,
    Project,
    Scan,
    Select,
    Sort,
    TemporalJoin,
    TransferD,
    TransferM,
)

#: Temp tables (TRANSFER^D materializations) are execution artifacts; their
#: subtrees never get a fingerprint — a learned cardinality keyed on a
#: throwaway table name could never be recalled.
TEMP_TABLE_PREFIX = "tango_tmp"


def qerror(estimated: float, actual: float) -> float:
    """The q-error of one estimate: ``max(est/act, act/est)``, floored at 1.

    Both sides are clamped to 1 row first, the usual convention so that
    empty results (where any ratio degenerates) compare sanely.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def plan_fingerprint(plan: Operator) -> str | None:
    """The cardinality fingerprint of *plan*, or None when unlearnable.

    Cardinality-preserving operators (``Sort``, ``Project``, both
    transfers) map to their input's fingerprint; a ``Select``'s top-level
    conjuncts are sorted on their SQL text, and join sides are ordered
    canonically — so predicate reordering, commuted joins, and every
    location assignment of the same logical subtree share one entry.
    Subtrees that scan a ``TANGO_TMP`` materialization return None.
    """
    if isinstance(plan, (Sort, Project, TransferM, TransferD)):
        return plan_fingerprint(plan.inputs[0])
    if isinstance(plan, Scan):
        table = plan.table.lower()
        if table.startswith(TEMP_TABLE_PREFIX):
            return None
        return f"scan:{table}"
    inputs = [plan_fingerprint(child) for child in plan.inputs]
    if any(child is None for child in inputs):
        return None
    if isinstance(plan, Select):
        terms = sorted(term.to_sql() for term in conjuncts(plan.predicate))
        return f"select[{' AND '.join(terms)}]({inputs[0]})"
    if isinstance(plan, (Join, TemporalJoin)):
        tag = type(plan).__name__.lower()
        if isinstance(plan, TemporalJoin):
            payload = ",".join(name.lower() for name in plan.period)
        else:
            payload = " AND ".join(
                sorted(term.to_sql() for term in conjuncts(plan.residual))
            )
        sides = sorted(
            zip((plan.left_attr.lower(), plan.right_attr.lower()), inputs)
        )
        body = ";".join(f"{attr}={child}" for attr, child in sides)
        return f"{tag}[{payload}]({body})"
    # Remaining operators (TAggr, Dedup, Coalesce, Difference, Product):
    # their memo signatures are pure string/tuple payloads, stable across
    # sessions.
    return f"{plan.signature()!r}({','.join(inputs)})"


@dataclass(frozen=True)
class LearnedCardinality:
    """One feedback-store entry: the running estimate and its support."""

    cardinality: float
    observations: int


class CardinalityFeedbackStore:
    """Learned cardinalities by fingerprint; thread-safe; persistable.

    ``smoothing`` is the EMA weight of each new observation (the first
    observation seeds the average); ``tolerance`` is the relative change
    below which an update is *immaterial* — the entry still moves, but
    :attr:`epoch` stays put so converged workloads keep their plan-cache
    hits.
    """

    def __init__(self, smoothing: float = 0.3, tolerance: float = 0.05):
        self.smoothing = smoothing
        self.tolerance = tolerance
        self._entries: dict[str, LearnedCardinality] = {}
        self._lock = threading.RLock()
        #: Bumped on every material change; the plan cache and the
        #: estimator's memo both key on it (see TangoConfig docs).
        self.epoch = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def learned_cardinality(self, fingerprint: str) -> float | None:
        """The current learned cardinality for *fingerprint*, if any."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.cardinality if entry is not None else None

    def observations(self, fingerprint: str) -> int:
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.observations if entry is not None else 0

    def observe(self, fingerprint: str, actual_rows: float) -> bool:
        """Record one observed cardinality; True when the change was
        material (a new entry, or a shift beyond the tolerance) — which is
        also exactly when :attr:`epoch` moved."""
        actual = max(0.0, float(actual_rows))
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._entries[fingerprint] = LearnedCardinality(actual, 1)
                self.epoch += 1
                return True
            updated = entry.cardinality + self.smoothing * (
                actual - entry.cardinality
            )
            material = qerror(updated, entry.cardinality) > 1.0 + self.tolerance
            self._entries[fingerprint] = LearnedCardinality(
                updated, entry.observations + 1
            )
            if material:
                self.epoch += 1
            return material

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self._entries.clear()
                self.epoch += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every learned cardinality whose fingerprint reads *table*.

        Called when a base table's contents change (``Tango.apply_updates``):
        selectivities learned against the old contents are stale, and an
        update-heavy workload must not keep planning against them.  The
        match is a conservative substring test on the ``scan:<table>``
        fragment — a table whose name prefixes another's may invalidate a
        few extra entries, never too few.  Returns how many entries were
        dropped; :attr:`epoch` moves iff any were.
        """
        needle = f"scan:{table.lower()}"
        with self._lock:
            stale = [
                fingerprint
                for fingerprint in self._entries
                if needle in fingerprint
            ]
            for fingerprint in stale:
                del self._entries[fingerprint]
            if stale:
                self.epoch += 1
            return len(stale)

    # -- persistence ------------------------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "version": 1,
                "entries": {
                    fingerprint: {
                        "cardinality": entry.cardinality,
                        "observations": entry.observations,
                    }
                    for fingerprint, entry in self._entries.items()
                },
            }

    def save(self, path: str) -> None:
        """Write the store to *path* atomically (write-then-rename)."""
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        scratch = f"{path}.tmp.{os.getpid()}"
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(scratch, path)

    def load(self, path: str) -> int:
        """Merge entries from *path*; returns how many were adopted.

        Loaded entries overwrite in-memory ones (the file is a snapshot of
        a longer history).  Any adoption is a material change: the epoch
        moves once so cached plans re-optimize against the learned world.
        """
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entries = payload.get("entries", {})
        with self._lock:
            for fingerprint, fields in entries.items():
                self._entries[fingerprint] = LearnedCardinality(
                    float(fields["cardinality"]),
                    int(fields.get("observations", 1)),
                )
            if entries:
                self.epoch += 1
        return len(entries)


# -- harvesting actuals out of a finished execution ------------------------------------

#: Blocking operators: their algorithm drains the input during ``init``/
#: first pull, so the subtree below ran to exhaustion no matter what
#: happened above.
_BLOCKING = (Sort, TransferD)
#: Operators that may abandon an input before exhausting it (the merge
#: stops when the other side runs dry): observed row counts below them are
#: lower bounds, not cardinalities.
_PARTIAL = (Join, TemporalJoin, Product, Difference)


def trusted_nodes(root: Operator, restore_blocking: bool = True) -> set[int]:
    """ids of the nodes of *root* whose observed row counts equal their
    true cardinality in a completed execution (see module docs).

    With *restore_blocking* (default), a blocking operator re-establishes
    trust below an abandoned join side — it drains its input the moment it
    is pulled at all.  A caller that sees *zero* rows under such a node
    cannot distinguish "drained an empty input" from "never pulled", and
    should re-check against ``restore_blocking=False`` before learning.
    """
    trust: dict[int, bool] = {}

    def visit(node: Operator, trusted: bool) -> None:
        previous = trust.get(id(node))
        trust[id(node)] = trusted if previous is None else (trusted and previous)
        for child in node.inputs:
            if restore_blocking and isinstance(node, _BLOCKING):
                visit(child, True)
            elif isinstance(node, _PARTIAL):
                visit(child, False)
            else:
                visit(child, trusted)

    visit(root, True)
    return {ident for ident, trusted in trust.items() if trusted}


def cardinality_observations(
    trace, registry: dict[int, Operator]
) -> list[tuple[Operator, int]]:
    """(plan node, actual rows) pairs from one finished execution trace.

    Spans are joined to plan nodes through the compile-time cursor
    *registry*.  Partitioned executions register several cursors per node
    (pooled range fetches, pipeline clones); their counts sum to the
    node's total.  ``RepartitionOutput`` spans are skipped — they re-count
    rows the serial transfer cursor under the same node already counted.
    """
    totals: dict[int, list] = {}

    def visit(span) -> None:
        if (
            span.kind in ("cursor", "transfer")
            and span.attributes.get("cursor") != "RepartitionOutput"
        ):
            node = registry.get(span.attributes.get("cursor_id"))
            if node is not None:
                rows = span.attributes.get("tuples")
                if rows is None:
                    rows = span.attributes.get("rows", 0)
                slot = totals.setdefault(id(node), [node, 0])
                slot[1] += int(rows)
        for child in span.children:
            visit(child)

    visit(trace)
    return [(node, rows) for node, rows in totals.values()]
