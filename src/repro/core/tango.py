"""The :class:`Tango` facade — the temporal middleware a client talks to.

Wires the Figure 1 architecture together:

    parser → optimizer (rules + statistics + cost estimation)
           → Translator-To-SQL → Execution Engine → DBMS (JDBC)

Typical use::

    db = MiniDB()
    ... create and populate tables ...
    with Tango(db, config=TangoConfig(tracing=True)) as tango:
        tango.refresh_statistics()
        result = tango.query(
            "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
            "GROUP BY PosID ORDER BY PosID"
        )
        for row in result.rows: ...
        print(result.trace.render())      # the query's span tree

Regular (non-``VALIDTIME``) SQL is passed straight through to the DBMS —
TANGO "captures the functionality of previously proposed stratum
approaches" while adding shared query processing for temporal constructs.

The public query surface is *submit-first*: :meth:`Tango.submit` returns
a :class:`~repro.service.QueryHandle` with ``status()``, ``result(timeout)``
and ``cancel()``, and :meth:`Tango.query` is sugar for
``submit(sql).result()``.  A plain ``Tango`` executes submissions inline
on the caller's thread (the handle comes back already terminal); setting
:attr:`TangoConfig.service` routes them through an owned
:class:`~repro.service.QueryService` — N concurrent workers, weighted
per-tenant fair-share scheduling, and health-driven admission control.

Behavioral knobs live in the frozen :class:`TangoConfig`; the pre-frozen
keyword arguments (``use_histograms``, ``prefetch``, ``adaptive``,
``tracing``) were removed and now raise a :class:`TypeError` naming the
config field.  Every instance carries a :class:`~repro.obs.metrics.
MetricsRegistry` and a :class:`~repro.obs.tracing.Tracer`; with
``tracing=True`` each temporal query produces a span tree (parse →
optimize → translate → execute, down to per-cursor cardinalities and
transfer timings) attached to the returned :class:`QueryResult`.  Tracing
adds no per-row work; :meth:`Tango.explain_analyze` additionally wraps
every cursor to time individual ``next()`` calls.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.algebra.operators import Operator
from repro.algebra.properties import guaranteed_order
from repro.algebra.schema import Schema
from repro.core.cardinality import (
    CardinalityFeedbackStore,
    cardinality_observations,
    plan_fingerprint,
    qerror,
    trusted_nodes,
)
from repro.core.engine import ExecutionEngine
from repro.core.feedback import FeedbackAdapter
from repro.core.reoptimize import (
    MAX_REOPTIMIZATIONS,
    ReoptimizationDecision,
    ReoptimizationSignal,
    splice_completed,
    temp_scan,
)
from repro.core.parser import is_temporal_query, parse_temporal_query
from repro.core.plan_cache import PlanCache, fingerprint
from repro.core.plans import compile_plan
from repro.core.translator import SQLTranslator
from repro.dbms.database import MiniDB
from repro.errors import DatabaseError, RetryExhaustedError
from repro.dbms.costmodel import CostMeter
from repro.dbms.jdbc import Connection, ConnectionPool
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy, RetryState
from repro.service import QueryHandle, ServiceConfig
from repro.obs.explain import ExplainAnalyzeReport, build_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.optimizer.calibration import Calibrator
from repro.optimizer.costs import CostFactors, PlanCoster
from repro.optimizer.physical import validate_plan
from repro.optimizer.search import OptimizationResult, Optimizer
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.collector import StatisticsCollector
from repro.stats.selectivity import PredicateEstimator


@dataclass(frozen=True)
class TangoConfig:
    """Construction-time configuration of a :class:`Tango` instance.

    Frozen: the middleware never mutates its configuration mid-flight.
    Derive variants with :func:`dataclasses.replace`.
    """

    #: Use equi-width histograms for predicate selectivity estimation.
    use_histograms: bool = True
    #: JDBC row-prefetch for TRANSFER^M fetches (Section 3.2).
    prefetch: int = 50
    #: Feed observed transfer timings back into the cost factors
    #: (the Section 7 adaptive loop).
    adaptive: bool = False
    #: Record a span tree for every temporal query (parse → optimize →
    #: translate → execute, with per-cursor cardinalities and transfer
    #: timings; per-``next()`` wall times are the EXPLAIN ANALYZE path).
    tracing: bool = False
    #: Rows per ``next_batch`` through the whole execution pipeline
    #: (TRANSFER^M fetchmany size, TRANSFER^D executemany chunk, engine
    #: drain).  1 degenerates to the paper's row-at-a-time protocol.
    batch_size: int = 256
    #: Plans kept in the statistics-epoch plan cache (LRU); 0 disables
    #: caching.
    plan_cache_size: int = 64
    #: How transient DBMS failures inside the transfer operators are
    #: retried (capped exponential backoff, per-query budget).
    retry: RetryPolicy = RetryPolicy()
    #: Wall-time bound per query execution, checked at batch boundaries;
    #: a violation raises :class:`~repro.errors.QueryTimeoutError` carrying
    #: the partial trace.  None = no deadline.
    deadline_seconds: float | None = None
    #: When a middleware-partitioned plan fails beyond its retry budget,
    #: re-execute the Section 3.1 initial plan (all processing in the
    #: DBMS) instead of surfacing the error.
    fallback: bool = True
    #: Maximum partitions (and producer threads) a plan may fan out to.
    #: 1 is the paper-faithful serial engine — plans, traces, and results
    #: are byte-for-byte what they were without the exchange layer.
    workers: int = 1
    #: How partitionable pipelines split: ``"range"`` fans the shipped
    #: ``TRANSFER^M`` SELECT out into per-range predicates pulled over
    #: pooled connections; ``"hash"`` keeps one serial transfer and deals
    #: rows to the partitions in the middleware.
    partition_strategy: str = "range"
    #: Simulated wire latency per DBMS round trip (seconds).  0.0 models a
    #: co-located DBMS; a positive value models the paper's remote-DBMS
    #: middleware setting, where concurrent partition fetches genuinely
    #: overlap (used by the parallel benchmark).
    network_latency_seconds: float = 0.0
    #: When set, :meth:`Tango.submit` routes through an owned
    #: :class:`~repro.service.QueryService` (concurrent workers, weighted
    #: fair-share scheduling, health-driven admission control) instead of
    #: executing inline on the caller's thread.
    service: ServiceConfig | None = None
    #: Columnar execution backend for the middleware operators: ``"off"``
    #: (row-at-a-time, paper faithful), ``"python"`` (struct-of-arrays
    #: batches, C-speed ``bisect``/``compress`` vectorization), or
    #: ``"numpy"`` (ndarray columns where types allow; degrades to
    #: ``"python"`` when numpy is absent).  Results and error behavior are
    #: identical in every mode — unsupported expressions and mixed-type
    #: batches fall back to exact row semantics per batch.
    columnar: str = "off"
    #: Learn per-subtree cardinalities from execution actuals into the
    #: :class:`~repro.core.cardinality.CardinalityFeedbackStore`, and let
    #: the estimator prefer a learned cardinality over its derivation —
    #: repeated workloads converge to near-true estimates (Section 7's
    #: feedback promise, applied to cardinalities).
    learn_cardinalities: bool = False
    #: JSON file the feedback store is loaded from at startup and saved to
    #: on close — learned cardinalities survive middleware restarts.  None
    #: keeps the store in-memory only.
    feedback_path: str | None = None
    #: Mid-query re-optimization trigger: when the q-error observed at a
    #: ``TRANSFER^D`` materialization point exceeds this factor, the
    #: remainder of the plan is re-optimized with the now-known
    #: cardinalities and spliced onto the completed work (see
    #: :mod:`repro.core.reoptimize`).  0.0 (default) disables; 2.0 is a
    #: reasonable production setting (re-plan when off by more than 2x).
    reoptimize_threshold: float = 0.0


#: Constructor kwargs that moved into TangoConfig when it froze (PR 1) and
#: whose deprecation shim has since been retired.
_RETIRED_KWARGS = ("use_histograms", "prefetch", "adaptive", "tracing")


def _reject_retired_kwargs(config, retired: dict) -> TangoConfig:
    """The retired-kwargs door: a clear TypeError instead of a silent shim.

    Each message names the TangoConfig field the caller should set, so the
    fix is mechanical: ``Tango(db, use_histograms=False)`` becomes
    ``Tango(db, config=TangoConfig(use_histograms=False))``.
    """
    if isinstance(config, bool):
        # Oldest calling convention: Tango(db, use_histograms_positionally).
        raise TypeError(
            "Tango() no longer accepts a positional use_histograms flag; "
            "use Tango(db, config=TangoConfig(use_histograms=...))"
        )
    for name in sorted(retired):
        if name in _RETIRED_KWARGS:
            raise TypeError(
                f"Tango() no longer accepts {name!r}; use "
                f"Tango(db, config=TangoConfig({name}=...))"
            )
    if retired:
        name = sorted(retired)[0]
        raise TypeError(
            f"Tango() got an unexpected keyword argument {name!r}"
        )
    return config if config is not None else TangoConfig()


@dataclass
class QueryResult:
    """What a TANGO query returns to the client."""

    schema: Schema
    rows: list[tuple]
    #: Total wall time including middleware optimization (Section 5.1).
    elapsed_seconds: float
    #: The executed plan (None for straight DBMS passthrough).
    plan: Operator | None = None
    #: Estimated cost of the chosen plan, microseconds.
    estimated_cost: float | None = None
    #: Memo complexity of the optimizer run.
    class_count: int | None = None
    element_count: int | None = None
    #: Engine-only execution wall time (excludes parse/optimize/translate).
    execution_seconds: float | None = None
    #: True when this answer came off the fallback path (the optimizer's
    #: plan failed beyond its retry budget and the initial all-DBMS plan
    #: re-ran).  Correct rows, degraded service — the health monitor
    #: counts these against the backend.
    degraded: bool = False
    #: The query's span tree when tracing was on (the full lifecycle for
    #: Tango.query; the execution subtree for Tango.execute_plan).
    trace: Span | None = field(default=None, repr=False)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dict(self) -> dict:
        """Structured form for programmatic consumers (JSON-ready)."""
        return {
            "columns": list(self.schema.names),
            "rows": [list(row) for row in self.rows],
            "elapsed_seconds": self.elapsed_seconds,
            "execution_seconds": self.execution_seconds,
            "estimated_cost": self.estimated_cost,
            "class_count": self.class_count,
            "element_count": self.element_count,
            "degraded": self.degraded,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }


class Tango:
    """Temporal Adaptive Next-Generation query Optimizer and processor."""

    def __init__(
        self,
        db: MiniDB,
        config: TangoConfig | None = None,
        *,
        factors: CostFactors | None = None,
        middleware_meter: CostMeter | None = None,
        fault_injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        pool: ConnectionPool | None = None,
        plan_cache: PlanCache | None = None,
        feedback_store: CardinalityFeedbackStore | None = None,
        **retired,
    ):
        self.config = _reject_retired_kwargs(config, retired)
        self.db = db
        #: Shared when supplied (service workers aggregate into one
        #: registry); otherwise private to this instance.
        self.metrics = metrics or MetricsRegistry()
        self.tracer = Tracer(enabled=self.config.tracing)
        #: Chaos harness, when supplied: every DBMS touchpoint of this
        #: instance's connection first passes through the injector.
        self.fault_injector = fault_injector
        if fault_injector is not None and fault_injector.metrics is None:
            fault_injector.metrics = self.metrics
        #: The primary connection is leased from *pool* when one is given
        #: (returned on close, not closed) — the service's workers all
        #: draw on one shared pool — and privately owned otherwise.
        self._owns_pool = pool is None
        self._pool: ConnectionPool | None = pool
        if pool is not None:
            self.connection = pool.acquire()
        else:
            self.connection = Connection(
                db,
                prefetch=self.config.prefetch,
                metrics=self.metrics,
                injector=fault_injector,
                latency_seconds=self.config.network_latency_seconds,
            )
        #: Meter charged by middleware algorithms (separate from the DBMS's).
        self.middleware_meter = middleware_meter or CostMeter()
        self.collector = StatisticsCollector(self.connection)
        self.predicate_estimator = PredicateEstimator(
            use_histograms=self.config.use_histograms
        )
        #: Learned cardinalities by predicate fingerprint (the Section 7
        #: loop applied to cardinalities).  Shared when supplied — the
        #: service's workers learn into one store; loaded from
        #: ``config.feedback_path`` when set (and saved back on close).
        self._owns_feedback_store = feedback_store is None
        self.feedback_store = feedback_store or CardinalityFeedbackStore()
        if feedback_store is None and self.config.feedback_path:
            try:
                self.feedback_store.load(self.config.feedback_path)
            except FileNotFoundError:
                pass  # first session: nothing learned yet
        self.estimator = CardinalityEstimator(
            self.collector,
            self.predicate_estimator,
            metrics=self.metrics,
            feedback=self.feedback_store,
        )
        self.factors = factors or CostFactors()
        self.translator = SQLTranslator()
        self.engine = ExecutionEngine()
        self.feedback = FeedbackAdapter()
        #: Optimized plans keyed by (query fingerprint, statistics epoch,
        #: config); cleared whenever the cost factors move.  Shared when
        #: supplied: the service's workers pool their optimizations.
        self.plan_cache = plan_cache or PlanCache(self.config.plan_cache_size)
        self._optimizer: Optimizer | None = None
        self._service = None  # lazily-built QueryService (config.service)
        self._views = None  # lazily-built ViewManager (repro.views)
        self._closed = False

    # -- configuration ----------------------------------------------------------------

    @property
    def adaptive(self) -> bool:
        """Section 7 feedback loop on/off (see :class:`TangoConfig`)."""
        return self.config.adaptive

    @property
    def optimizer(self) -> Optimizer:
        if self._optimizer is None:
            self._optimizer = Optimizer(
                self.estimator,
                self.factors,
                tracer=self.tracer,
                parallel_degree=self.config.workers,
            )
        return self._optimizer

    @property
    def pool(self) -> ConnectionPool:
        """The connection pool partition fan-out draws from (lazy)."""
        if self._pool is None:
            self._pool = ConnectionPool(
                self.db,
                size=max(1, self.config.workers),
                prefetch=self.config.prefetch,
                metrics=self.metrics,
                injector=self.fault_injector,
                latency_seconds=self.config.network_latency_seconds,
            )
        return self._pool

    def _parallel_context(self):
        """A :class:`~repro.core.partition.ParallelContext` when this
        instance runs parallel plans; None (strictly serial compile paths)
        at ``workers=1``."""
        if self.config.workers <= 1:
            return None
        from repro.core.partition import ParallelContext

        return ParallelContext(
            workers=self.config.workers,
            strategy=self.config.partition_strategy,
            estimator=self.estimator,
            pool=self.pool,
        )

    def refresh_statistics(
        self, tables: list[str] | None = None, analyze: bool = True
    ) -> None:
        """Re-ANALYZE base relations and drop cached statistics.

        The Statistics Collector re-reads the catalog lazily afterwards.
        With ``analyze=False`` only the caches and the statistics epoch
        move — for callers that changed data by a tracked delta
        (``pending_delta``) and defer the histogram rebuild.
        """
        if analyze:
            for table in tables if tables is not None else self.db.list_tables():
                self.db.analyze(table)
        self.collector.refresh()
        # Cardinality caches key on plan identity; new stats need a fresh one.
        self.estimator = CardinalityEstimator(
            self.collector,
            self.predicate_estimator,
            metrics=self.metrics,
            feedback=self.feedback_store,
        )
        self._optimizer = None

    def calibrate(
        self, sizes: tuple[int, ...] = (500, 2000), repeats: int = 3
    ) -> CostFactors:
        """Fit cost factors on this machine (the Cost Estimator component).

        Probes run on a pristine connection without the fault injector:
        calibration is an offline measurement phase, and injected faults
        (or their retries) would otherwise be fitted into the cost factors
        as if they were real DBMS costs.
        """
        calibration_connection = Connection(self.db, prefetch=self.config.prefetch)
        self.factors = Calibrator(calibration_connection, sizes, repeats).calibrate(
            self.factors
        )
        self._optimizer = None
        # New factors re-price every plan: cached choices may be stale.
        self.plan_cache.clear()
        return self.factors

    # -- materialized views and the update path ---------------------------------------

    @property
    def views(self):
        """The materialized-view registry (lazy; see :mod:`repro.views`)."""
        if self._views is None:
            from repro.views import ViewManager

            self._views = ViewManager(self)
        return self._views

    def create_view(self, name: str, query):
        """Materialize *query* (temporal SQL text or an initial plan) as
        the TANGO-managed table *name*; returns the registered view."""
        self._check_open()
        return self.views.create(name, query)

    def refresh_view(self, name: str, strategy: str | None = None, explain: bool = False):
        """Bring view *name* up to date; the refresh strategy is chosen by
        cost unless *strategy* forces ``"incremental"``/``"full"``."""
        self._check_open()
        return self.views.refresh(name, strategy=strategy, explain=explain)

    def drop_view(self, name: str) -> None:
        self._check_open()
        self.views.drop(name)

    def list_views(self) -> list[str]:
        return self.views.names() if self._views is not None else []

    def apply_updates(self, table: str, inserts=(), deletes=()) -> dict:
        """Apply one update batch (the UIS churn path) to a base table.

        Deletes are removed first (multiset-exact; a missing row aborts the
        whole batch), then inserts are appended.  The batch flows into every
        dependent view's pending delta log, the table is re-ANALYZEd (moving
        the statistics epoch, so the plan cache drops dependent plans), and
        learned cardinalities that read the table are invalidated (moving
        the feedback epoch).  Returns the applied counts.
        """
        self._check_open()
        target = self.db.table(table)  # unknown table → CatalogError
        insert_rows = [tuple(row) for row in inserts]
        delete_rows = [tuple(row) for row in deletes]
        with self.tracer.span(
            "apply_updates",
            kind="update",
            table=target.name,
            inserts=len(insert_rows),
            deletes=len(delete_rows),
        ) as span:
            removed = self.db.delete_rows(target.name, delete_rows)
            if insert_rows:
                self.db.insert_rows(target.name, insert_rows)
            if self._views is not None:
                self.views.record_update(target.name, insert_rows, removed)
            self.refresh_statistics([target.name])
            invalidated = self.feedback_store.invalidate_table(target.name)
            span.set(feedback_invalidated=invalidated)
        self.metrics.counter("update_batches").inc()
        self.metrics.counter("update_rows").inc(len(insert_rows) + len(removed))
        return {
            "table": target.name,
            "inserted": len(insert_rows),
            "deleted": len(removed),
            "feedback_invalidated": invalidated,
        }

    # -- lifecycle --------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseError("this Tango instance is closed")

    def close(self) -> None:
        """Release the DBMS connection and flush metrics; idempotent.

        The owned :class:`~repro.service.QueryService` (if any) drains
        first, so queued queries finish before the connections go away.
        A pool-leased primary connection is returned to its pool, not
        closed; a borrowed pool is left open for its owner.  The final
        metrics snapshot remains available as :attr:`final_metrics` (and
        ``self.metrics`` stays readable).
        """
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.close()
        if (
            self.config.feedback_path
            and self._owns_feedback_store
            and len(self.feedback_store)
        ):
            try:
                self.feedback_store.save(self.config.feedback_path)
            except OSError:
                self.metrics.counter("feedback_store_save_errors").inc()
        self.final_metrics = self.metrics.flush()
        if self._owns_pool:
            if self._pool is not None:
                self._pool.close()
            self.connection.close()
        else:
            assert self._pool is not None
            self._pool.release(self.connection)

    def __enter__(self) -> "Tango":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the query path ------------------------------------------------------------------

    def parse(self, sql: str) -> Operator:
        """Temporal SQL → initial plan (all processing in the DBMS)."""
        return parse_temporal_query(sql, self.db)

    def optimize(self, query: str | Operator) -> OptimizationResult:
        """Run the two-phase optimizer on a query or an initial plan.

        Repeated queries are answered from the plan cache: the key couples
        the normalized query fingerprint to the current statistics epoch,
        the feedback store's epoch, and this instance's configuration, so
        a cache hit skips parsing and the optimizer entirely while a
        statistics refresh, a material cardinality-feedback update, or a
        config difference forces a fresh optimization — cached plans never
        outlive the estimates they were costed with.
        """
        key = (
            fingerprint(query),
            self.collector.epoch,
            self.feedback_store.epoch,
            self.config,
        )
        cached = self.plan_cache.get(key)
        if cached is not None:
            self.metrics.counter("plan_cache_hits").inc()
            return cached
        self.metrics.counter("plan_cache_misses").inc()
        if isinstance(query, str):
            with self.tracer.span("parse", kind="phase"):
                plan = self.parse(query)
        else:
            plan = query
        self.metrics.counter("optimizer_runs").inc()
        result = self.optimizer.optimize(plan)
        validate_plan(result.plan)
        self.metrics.histogram("memo_classes").observe(result.class_count)
        self.metrics.histogram("memo_elements").observe(result.element_count)
        self.plan_cache.put(key, result)
        return result

    def _retry_state(self) -> RetryState:
        """A fresh per-execution retry budget under the configured policy."""
        return RetryState(self.config.retry, metrics=self.metrics)

    def execute_plan(
        self,
        plan: Operator,
        retry: RetryState | None = None,
        parallel: bool = True,
        abort=None,
    ) -> QueryResult:
        """Execute a complete (validated) plan tree.

        *retry* is the per-query retry budget; callers executing one plan
        directly can omit it (a fresh budget is created).  *parallel* may
        be set to False to force serial compilation even when
        ``config.workers > 1`` (the fallback path does, for maximum
        failure resistance).  *abort* is the engine's cooperative
        cancellation probe (see :meth:`ExecutionEngine.execute`).
        Transient DBMS failures inside the transfer operators are retried
        under ``config.retry``; ``config.deadline_seconds`` bounds the
        execution's wall time.  With ``config.reoptimize_threshold`` set,
        the executed plan may be re-optimized mid-query at ``TRANSFER^D``
        materialization points (see :mod:`repro.core.reoptimize`).
        """
        self._check_open()
        outcome, executed = self._execute_optimized(
            plan, retry=retry, parallel=parallel, abort=abort
        )
        return QueryResult(
            schema=outcome.schema,
            rows=outcome.rows,
            elapsed_seconds=outcome.elapsed_seconds,
            execution_seconds=outcome.elapsed_seconds,
            plan=executed,
            trace=outcome.trace if self.tracer.enabled else None,
        )

    def _execute_optimized(
        self,
        plan: Operator,
        *,
        retry: RetryState | None = None,
        parallel: bool = True,
        abort=None,
        instrument: bool = False,
        registry: dict[int, Operator] | None = None,
    ):
        """Compile and run *plan*, re-planning at materialization points.

        The loop body is one engine execution; a
        :class:`~repro.core.reoptimize.ReoptimizationSignal` re-enters the
        optimizer for the remainder (completed ``TRANSFER^D`` subtrees
        spliced to temp-table scans) and goes around, at most
        ``MAX_REOPTIMIZATIONS`` times.  Temp tables kept alive across a
        splice are dropped here, unconditionally, whatever else happens —
        the engine's no-leak guarantee extends across re-optimizations.
        Returns ``(outcome, executed_plan)``; *registry*, when given,
        accumulates every round's cursor→node mapping (EXPLAIN ANALYZE).
        """
        validate_plan(plan)
        retry = retry if retry is not None else self._retry_state()
        current = plan
        rounds = 0
        kept: list = []  # completed TransferDCursors surviving splices
        try:
            while True:
                round_registry: dict[int, Operator] = {}
                with self.tracer.span("translate", kind="phase") as span:
                    execution_plan = compile_plan(
                        current,
                        self.connection,
                        self.middleware_meter,
                        self.translator,
                        registry=round_registry,
                        batch_size=self.config.batch_size,
                        retry=retry,
                        parallel=self._parallel_context() if parallel else None,
                        columnar=self.config.columnar,
                    )
                    span.set(steps=len(execution_plan.steps))
                if registry is not None:
                    registry.update(round_registry)
                probe = None
                if (
                    self.config.reoptimize_threshold > 0
                    and rounds < MAX_REOPTIMIZATIONS
                ):
                    probe = self._materialization_probe(round_registry)
                try:
                    outcome = self.engine.execute(
                        execution_plan,
                        tracer=Tracer() if instrument else self.tracer,
                        instrument=instrument,
                        metrics=self.metrics,
                        deadline_seconds=self.config.deadline_seconds,
                        abort=abort,
                        on_materialize=probe,
                    )
                except ReoptimizationSignal as signal:
                    rounds += 1
                    kept.extend(signal.completed)
                    current = self._reoptimize_remainder(
                        current, signal, round_registry
                    )
                    continue
                self._record_execution(
                    outcome, plan=current, registry=round_registry
                )
                if rounds and outcome.trace is not None:
                    outcome.trace.set(reoptimizations=rounds)
                return outcome, current
        finally:
            self._drop_kept(kept)

    def _drop_kept(self, kept: list) -> None:
        """Drop temp tables kept alive across splices; every drop is
        attempted, and the first failure surfaces only when no other
        error is already propagating (mirrors the engine's teardown)."""
        first_error: BaseException | None = None
        for cursor in kept:
            try:
                cursor.drop()
            except BaseException as error:  # noqa: BLE001 - must keep going
                if first_error is None:
                    first_error = error
        if first_error is not None and sys.exc_info()[0] is None:
            raise first_error

    def _materialization_probe(self, registry: dict[int, Operator]):
        """The engine's ``on_materialize`` callback for one round.

        Lays the loaded row count against the estimate for the transfer's
        subtree; always feeds the q-error histogram (and the feedback
        store, when learning), and answers with a decision — triggering
        re-optimization — when the q-error exceeds the threshold.
        """

        def probe(cursor):
            node = registry.get(id(cursor))
            if node is None:
                return None
            estimated = float(self.estimator.estimate(node).cardinality)
            actual = float(cursor.rows_loaded)
            error = qerror(estimated, actual)
            self.metrics.histogram("qerror").observe(error)
            if self.config.learn_cardinalities:
                fp = plan_fingerprint(node)
                if fp is not None and self.feedback_store.observe(fp, actual):
                    self.metrics.counter("cardinality_feedback_updates").inc()
            if error <= self.config.reoptimize_threshold:
                return None
            return ReoptimizationDecision(
                node=node, estimated=estimated, actual=actual, qerror=error
            )

        return probe

    def _reoptimize_remainder(
        self,
        plan: Operator,
        signal: ReoptimizationSignal,
        registry: dict[int, Operator],
    ) -> Operator:
        """Splice completed materializations out of *plan* and re-enter
        the optimizer for the remainder, under the original order
        contract.  The collector auto-ANALYZEs the temp tables, so the
        re-entered search runs on exact cardinalities for everything
        already computed."""
        self.metrics.counter("reoptimizations").inc()
        decision = signal.decision
        replacements: dict[int, Operator] = {}
        for cursor in signal.completed:
            node = registry.get(id(cursor))
            if node is not None:
                replacements[id(node)] = temp_scan(node, cursor.table_name)
        with self.tracer.span(
            "reoptimize",
            kind="reoptimize",
            qerror=decision.qerror,
            estimated=decision.estimated,
            actual=decision.actual,
            at=decision.node.describe(),
        ) as span:
            remainder = splice_completed(plan, replacements)
            result = self.optimizer.optimize(
                remainder, required_order=tuple(guaranteed_order(plan))
            )
            validate_plan(result.plan)
            span.set(cost=result.cost)
        return result.plan

    def submit(
        self,
        query: str | Operator,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> QueryHandle:
        """Submit a query; returns its :class:`~repro.service.QueryHandle`.

        With :attr:`TangoConfig.service` set, the query is admitted into
        this instance's owned :class:`~repro.service.QueryService` —
        subject to the tenant's fair share and to admission control — and
        the handle comes back live (``queued``/``running``).  Without it,
        the query executes inline on the calling thread and the handle
        comes back already terminal; ``tenant`` and ``priority`` are then
        only labels.  Either way, ``handle.result(timeout)`` is the
        outcome and ``handle.cancel()`` the escape hatch.
        """
        self._check_open()
        if self.config.service is not None:
            return self._query_service().submit(
                query, tenant=tenant, priority=priority
            )
        handle = QueryHandle(query, tenant=tenant, priority=priority)
        handle.mark_running()
        try:
            handle.complete(self.run(query, abort=handle.abort_reason))
        except BaseException as error:  # noqa: BLE001 - the handle carries it
            handle.fail(error)
        return handle

    def query(self, sql: str) -> QueryResult:
        """Sugar for ``submit(sql).result()`` — parse, optimize, execute.

        Blocks for the outcome and re-raises the query's own error, which
        makes it exactly the pre-service synchronous API.
        """
        return self.submit(sql).result()

    def _query_service(self):
        """The owned QueryService, built on first submit (config.service)."""
        if self._service is None:
            from repro.service import QueryService

            self._service = QueryService(
                self.db,
                self.config.service,
                tango_config=self.config,
                fault_injector=self.fault_injector,
                metrics=self.metrics,
            )
        return self._service

    @property
    def service(self):
        """The owned :class:`~repro.service.QueryService`, or None."""
        return self._service

    def run(self, query: str | Operator, abort=None) -> QueryResult:
        """The full TANGO path, synchronously: parse, optimize, execute.

        Accepts temporal SQL or an already-parsed initial plan (the
        service's workers hand either through).  Non-temporal statements
        go straight to the DBMS (stratum passthrough).  When the
        optimizer's partitioned plan fails beyond its retry budget
        (``config.fallback``), the engine has already torn it down (temp
        tables dropped) and the query is re-executed on the Section 3.1
        initial plan — all processing in the DBMS, one ``TRANSFER^M`` on
        top — so a flaky connection costs latency, never a wrong answer
        or an application-visible error; the result is flagged
        ``degraded`` so the health monitor hears about it.  *abort* is
        the cooperative-cancellation probe, checked at batch boundaries.
        """
        self._check_open()
        self.metrics.counter("queries_total").inc()
        if isinstance(query, str) and not is_temporal_query(query):
            self.metrics.counter("queries_passthrough").inc()
            return self._passthrough(query)
        self.metrics.counter("queries_temporal").inc()
        begin = time.perf_counter()
        sql = query if isinstance(query, str) else None
        with self.tracer.span("query", kind="query", sql=sql) as query_span:
            optimization = self.optimize(query)
            try:
                result = self.execute_plan(optimization.plan, abort=abort)
            except RetryExhaustedError as error:
                if not self.config.fallback:
                    raise
                result = self._fallback(query, error, abort=abort)
        # Middleware optimization time is part of the query time (Section
        # 5.1); execution_seconds keeps the engine-only share.
        result.elapsed_seconds = time.perf_counter() - begin
        result.estimated_cost = optimization.cost
        result.class_count = optimization.class_count
        result.element_count = optimization.element_count
        if self.tracer.enabled:
            query_span.set(rows=len(result.rows))
            result.trace = query_span
        self.metrics.histogram("query_seconds").observe(result.elapsed_seconds)
        return result

    def _fallback(
        self, query: str | Operator, error: RetryExhaustedError, abort=None
    ) -> QueryResult:
        """Re-execute *query* on its initial plan (Figure 4(a): everything
        in the DBMS), after the partitioned plan failed beyond its budget.

        The all-DBMS shape is the most failure-resistant plan available:
        it needs no ``TRANSFER^D`` round trips and ships the result in a
        single ``TRANSFER^M``, with a fresh retry budget of its own.  The
        fallback always compiles serially — a parallel fan-out would
        multiply the very connections that just proved flaky.  For a plan
        submitted directly (no SQL to re-parse), the submitted initial
        plan itself is the fallback shape.
        """
        self.metrics.counter("fallbacks").inc()
        with self.tracer.span(
            "fallback", kind="fallback", error=str(error), retries=error.retries
        ):
            initial = self.parse(query) if isinstance(query, str) else query
            result = self.execute_plan(initial, parallel=False, abort=abort)
        result.degraded = True
        return result

    def explain(self, sql: str) -> str:
        """The chosen plan and its cost breakdown, without executing."""
        optimization = self.optimize(sql)
        coster = PlanCoster(
            self.estimator, self.factors, parallel_degree=self.config.workers
        )
        lines = [optimization.explain(), "", "cost breakdown (us):"]
        for label, cost in coster.breakdown(optimization.plan):
            lines.append(f"  {cost:12.1f}  {label}")
        return "\n".join(lines)

    def explain_analyze(self, query: str | Operator) -> ExplainAnalyzeReport:
        """Optimize, execute instrumented, and lay actuals against estimates.

        Returns an :class:`~repro.obs.explain.ExplainAnalyzeReport` — one
        row per executed algorithm with estimated and actual cardinality
        and cost; ``str()`` renders the table.  Instrumentation is always
        on here, regardless of :attr:`TangoConfig.tracing`.
        """
        self.metrics.counter("queries_total").inc()
        self.metrics.counter("queries_analyzed").inc()
        optimization = self.optimize(query)
        registry: dict[int, Operator] = {}
        outcome, executed = self._execute_optimized(
            optimization.plan, instrument=True, registry=registry
        )
        coster = PlanCoster(
            self.estimator, self.factors, parallel_degree=self.config.workers
        )
        return build_report(
            outcome.trace,
            registry,
            self.estimator,
            coster,
            estimated_total_us=optimization.cost,
            result_rows=len(outcome.rows),
            reoptimize_threshold=self.config.reoptimize_threshold,
            reoptimized=executed is not optimization.plan,
        )

    def _record_execution(self, outcome, plan=None, registry=None) -> None:
        """Metrics + adaptive feedback for one engine execution."""
        self.metrics.histogram("execution_seconds").observe(outcome.elapsed_seconds)
        for observation in outcome.observations:
            prefix = "transfer_up" if observation.direction == "up" else "transfer_down"
            self.metrics.counter(f"{prefix}_tuples").inc(observation.tuples)
            self.metrics.counter(f"{prefix}_bytes").inc(observation.bytes)
        if self.config.adaptive and outcome.observations:
            updated = self.feedback.apply(self.factors, outcome.observations)
            if updated is not self.factors:
                self.factors = updated
                self._optimizer = None  # next query sees the new factors
                # Cached plans were chosen under the old factors.
                self.plan_cache.clear()
                self.metrics.counter("feedback_updates").inc()
        if (
            self.config.learn_cardinalities
            and plan is not None
            and registry
            and outcome.trace is not None
        ):
            self._learn_cardinalities(outcome.trace, plan, registry)

    def _learn_cardinalities(self, trace, plan, registry) -> None:
        """Feed the feedback store from one *completed* execution.

        Only cursors that provably ran to exhaustion are believed (join
        inputs may be abandoned early — their counts are lower bounds);
        zero-row observations under a blocking restore are additionally
        re-checked, since "never pulled" and "drained empty" both read 0.
        """
        trusted = trusted_nodes(plan)
        strict = trusted_nodes(plan, restore_blocking=False)
        updates = 0
        for node, actual in cardinality_observations(trace, registry):
            if id(node) not in trusted:
                continue
            if actual == 0 and id(node) not in strict:
                continue
            fp = plan_fingerprint(node)
            if fp is None:
                continue
            estimated = float(self.estimator.estimate(node).cardinality)
            self.metrics.histogram("qerror").observe(qerror(estimated, actual))
            if self.feedback_store.observe(fp, actual):
                updates += 1
        if updates:
            self.metrics.counter("cardinality_feedback_updates").inc(updates)

    def _passthrough(self, sql: str) -> QueryResult:
        begin = time.perf_counter()
        outcome = self.db.execute(sql)
        elapsed = time.perf_counter() - begin
        self.metrics.histogram("query_seconds").observe(elapsed)
        if isinstance(outcome, int):
            return QueryResult(Schema([]), [], elapsed, execution_seconds=elapsed)
        rows = outcome.fetchall()
        return QueryResult(outcome.schema, rows, elapsed, execution_seconds=elapsed)

    # -- convenience ----------------------------------------------------------------------

    def plan_cost(self, plan: Operator) -> float:
        """Estimated cost of an arbitrary plan under current statistics."""
        return PlanCoster(
            self.estimator, self.factors, parallel_degree=self.config.workers
        ).cost(plan)
