"""The :class:`Tango` facade — the temporal middleware a client talks to.

Wires the Figure 1 architecture together:

    parser → optimizer (rules + statistics + cost estimation)
           → Translator-To-SQL → Execution Engine → DBMS (JDBC)

Typical use::

    db = MiniDB()
    ... create and populate tables ...
    tango = Tango(db)
    tango.refresh_statistics()
    result = tango.query(
        "VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION "
        "GROUP BY PosID ORDER BY PosID"
    )
    for row in result.rows: ...

Regular (non-``VALIDTIME``) SQL is passed straight through to the DBMS —
TANGO "captures the functionality of previously proposed stratum
approaches" while adding shared query processing for temporal constructs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.operators import Operator
from repro.algebra.schema import Schema
from repro.core.engine import ExecutionEngine
from repro.core.feedback import FeedbackAdapter
from repro.core.parser import is_temporal_query, parse_temporal_query
from repro.core.plans import compile_plan
from repro.core.translator import SQLTranslator
from repro.dbms.database import MiniDB
from repro.dbms.costmodel import CostMeter
from repro.dbms.jdbc import Connection
from repro.optimizer.calibration import Calibrator
from repro.optimizer.costs import CostFactors, PlanCoster
from repro.optimizer.physical import validate_plan
from repro.optimizer.search import OptimizationResult, Optimizer
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.collector import StatisticsCollector
from repro.stats.selectivity import PredicateEstimator


@dataclass
class QueryResult:
    """What a TANGO query returns to the client."""

    schema: Schema
    rows: list[tuple]
    elapsed_seconds: float
    #: The executed plan (None for straight DBMS passthrough).
    plan: Operator | None = None
    #: Estimated cost of the chosen plan, microseconds.
    estimated_cost: float | None = None
    #: Memo complexity of the optimizer run.
    class_count: int | None = None
    element_count: int | None = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class Tango:
    """Temporal Adaptive Next-Generation query Optimizer and processor."""

    def __init__(
        self,
        db: MiniDB,
        use_histograms: bool = True,
        factors: CostFactors | None = None,
        prefetch: int = 50,
        middleware_meter: CostMeter | None = None,
        adaptive: bool = False,
    ):
        self.db = db
        self.connection = Connection(db, prefetch=prefetch)
        #: Meter charged by middleware algorithms (separate from the DBMS's).
        self.middleware_meter = middleware_meter or CostMeter()
        self.collector = StatisticsCollector(self.connection)
        self.predicate_estimator = PredicateEstimator(use_histograms=use_histograms)
        self.estimator = CardinalityEstimator(self.collector, self.predicate_estimator)
        self.factors = factors or CostFactors()
        self.translator = SQLTranslator()
        self.engine = ExecutionEngine()
        #: When set, transfer timings observed during execution update the
        #: cost factors (the Section 7 feedback loop; see repro.core.feedback).
        self.adaptive = adaptive
        self.feedback = FeedbackAdapter()
        self._optimizer: Optimizer | None = None

    # -- configuration ----------------------------------------------------------------

    @property
    def optimizer(self) -> Optimizer:
        if self._optimizer is None:
            self._optimizer = Optimizer(self.estimator, self.factors)
        return self._optimizer

    def refresh_statistics(self, tables: list[str] | None = None) -> None:
        """Re-ANALYZE base relations and drop cached statistics.

        The Statistics Collector re-reads the catalog lazily afterwards.
        """
        for table in tables if tables is not None else self.db.list_tables():
            self.db.analyze(table)
        self.collector.refresh()
        # Cardinality caches key on plan identity; new stats need a fresh one.
        self.estimator = CardinalityEstimator(self.collector, self.predicate_estimator)
        self._optimizer = None

    def calibrate(
        self, sizes: tuple[int, ...] = (500, 2000), repeats: int = 3
    ) -> CostFactors:
        """Fit cost factors on this machine (the Cost Estimator component)."""
        self.factors = Calibrator(self.connection, sizes, repeats).calibrate(
            self.factors
        )
        self._optimizer = None
        return self.factors

    # -- the query path ------------------------------------------------------------------

    def parse(self, sql: str) -> Operator:
        """Temporal SQL → initial plan (all processing in the DBMS)."""
        return parse_temporal_query(sql, self.db)

    def optimize(self, query: str | Operator) -> OptimizationResult:
        """Run the two-phase optimizer on a query or an initial plan."""
        plan = self.parse(query) if isinstance(query, str) else query
        result = self.optimizer.optimize(plan)
        validate_plan(result.plan)
        return result

    def execute_plan(self, plan: Operator) -> QueryResult:
        """Execute a complete (validated) plan tree."""
        validate_plan(plan)
        execution_plan = compile_plan(
            plan, self.connection, self.middleware_meter, self.translator
        )
        outcome = self.engine.execute(execution_plan)
        if self.adaptive and outcome.observations:
            updated = self.feedback.apply(self.factors, outcome.observations)
            if updated is not self.factors:
                self.factors = updated
                self._optimizer = None  # next query sees the new factors
        return QueryResult(
            schema=outcome.schema,
            rows=outcome.rows,
            elapsed_seconds=outcome.elapsed_seconds,
            plan=plan,
        )

    def query(self, sql: str) -> QueryResult:
        """The full TANGO path: parse, optimize, execute.

        Non-temporal statements go straight to the DBMS (stratum
        passthrough).
        """
        if not is_temporal_query(sql):
            return self._passthrough(sql)
        begin = time.perf_counter()
        optimization = self.optimize(sql)
        result = self.execute_plan(optimization.plan)
        # Middleware optimization time is part of the query time (Section 5.1).
        result.elapsed_seconds = time.perf_counter() - begin
        result.estimated_cost = optimization.cost
        result.class_count = optimization.class_count
        result.element_count = optimization.element_count
        return result

    def explain(self, sql: str) -> str:
        """The chosen plan and its cost breakdown, without executing."""
        optimization = self.optimize(sql)
        coster = PlanCoster(self.estimator, self.factors)
        lines = [optimization.explain(), "", "cost breakdown (us):"]
        for label, cost in coster.breakdown(optimization.plan):
            lines.append(f"  {cost:12.1f}  {label}")
        return "\n".join(lines)

    def _passthrough(self, sql: str) -> QueryResult:
        begin = time.perf_counter()
        outcome = self.db.execute(sql)
        elapsed = time.perf_counter() - begin
        if isinstance(outcome, int):
            return QueryResult(Schema([]), [], elapsed)
        rows = outcome.fetchall()
        return QueryResult(outcome.schema, rows, elapsed)

    # -- convenience ----------------------------------------------------------------------

    def plan_cost(self, plan: Operator) -> float:
        """Estimated cost of an arbitrary plan under current statistics."""
        return PlanCoster(self.estimator, self.factors).cost(plan)
