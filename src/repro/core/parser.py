"""Temporal SQL: ``VALIDTIME``-prefixed queries to initial plans.

The dialect follows the sequenced valid-time semantics of ATSQL-style
languages: prefixing a query with ``VALIDTIME`` makes every operation
temporal —

* ``GROUP BY`` + aggregates become **temporal aggregation** (ξ^T);
* joins become **temporal joins** (equi-join + period overlap, result
  period = intersection);
* the period attributes ``T1``/``T2`` are carried implicitly through the
  query and appended to the output when not selected explicitly.

The produced *initial plan* follows Figure 4(a): every operation is
assigned to the DBMS; selections are pushed onto the scans (standard
practice — the optimizer can move them later); a single ``T^M`` on top
delivers the result to the middleware.
"""

from __future__ import annotations

import re

from repro.algebra.expressions import ColumnRef, Comparison, Expression, conjoin, conjuncts
from repro.algebra.operators import (
    AggregateSpec,
    Location,
    Operator,
    Project,
    Scan,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferM,
)
from repro.algebra.rewrite import collect, transform
from repro.dbms.sql.ast import AggregateCall, SelectStmt, TableRef
from repro.dbms.sql.parser import parse_statement
from repro.errors import PlanError, SQLSyntaxError

_VALIDTIME_RE = re.compile(r"^\s*VALIDTIME\b", re.IGNORECASE)
_COALESCED_RE = re.compile(r"^\s*COALESCED\b", re.IGNORECASE)

#: Default names of the implicit period attributes.
PERIOD = ("T1", "T2")


def is_temporal_query(sql: str) -> bool:
    """True when *sql* carries the ``VALIDTIME`` prefix."""
    return _VALIDTIME_RE.match(sql) is not None


def parse_temporal_query(sql: str, catalog) -> Operator:
    """Parse a ``VALIDTIME SELECT ...`` into its initial plan.

    *catalog* is duck-typed: anything with ``schema_of(table)`` (and
    optionally ``clustered_order_of(table)``) works — a
    :class:`~repro.dbms.database.MiniDB` does.
    """
    match = _VALIDTIME_RE.match(sql)
    if match is None:
        raise SQLSyntaxError("temporal queries must start with VALIDTIME")
    rest = sql[match.end():]
    coalesced = _COALESCED_RE.match(rest)
    if coalesced is not None:
        rest = rest[coalesced.end():]
    statement = parse_statement(rest)
    if not isinstance(statement, SelectStmt):
        raise SQLSyntaxError("VALIDTIME applies to SELECT statements")
    if statement.unions:
        raise SQLSyntaxError("UNION is not supported in temporal queries")
    return _Builder(statement, catalog, coalesce=coalesced is not None).build()


class _Binding:
    """One FROM item: its alias and the current-plan name of each column."""

    def __init__(self, alias: str, mapping: dict[str, str]):
        self.alias = alias
        self.mapping = mapping  # original lower-cased name -> plan schema name


class _Builder:
    def __init__(self, statement: SelectStmt, catalog, coalesce: bool = False):
        self._stmt = statement
        self._catalog = catalog
        self._coalesce = coalesce
        self._bindings: list[_Binding] = []

    def build(self) -> Operator:
        plan = self._build_joins()
        plan = self._apply_aggregation_and_projection(plan)
        if self._coalesce:
            # VALIDTIME COALESCED: merge value-equivalent result tuples with
            # overlapping or adjacent periods.  The initial plan places the
            # coalescing in the DBMS like everything else; rule X1 moves it
            # to the middleware (there is no SQL rewrite for it).
            from repro.algebra.operators import Coalesce

            plan = Coalesce(plan, Location.DBMS)
        plan = self._apply_order(plan)
        return TransferM(plan)

    # -- FROM and WHERE ------------------------------------------------------------

    def _build_joins(self) -> Operator:
        where_terms = list(conjuncts(self._stmt.where))
        sources: list[tuple[_Binding, Operator]] = []
        for item in self._stmt.from_items:
            if not isinstance(item, TableRef):
                raise SQLSyntaxError(
                    "temporal queries support base tables in FROM only"
                )
            schema = self._catalog.schema_of(item.table)
            clustered: tuple[str, ...] = ()
            getter = getattr(self._catalog, "clustered_order_of", None)
            if getter is not None:
                clustered = tuple(getter(item.table))
            plan: Operator = Scan(item.table, schema, clustered)
            binding = _Binding(
                item.binding,
                {a.name.lower(): a.name for a in plan.schema},
            )
            sources.append((binding, plan))

        # Push single-table conjuncts onto their scans.
        remaining: list[Expression] = []
        for term in where_terms:
            owners = self._owners(term, [binding for binding, _ in sources])
            if owners is not None and len(owners) == 1:
                index = next(
                    i for i, (binding, _) in enumerate(sources)
                    if binding.alias == next(iter(owners))
                )
                binding, plan = sources[index]
                resolved = self._resolve(term, [binding])
                sources[index] = (binding, Select(plan, Location.DBMS, resolved))
            else:
                remaining.append(term)

        # Left-deep temporal joins in FROM order.
        binding, plan = sources[0]
        self._bindings = [binding]
        for next_binding, next_plan in sources[1:]:
            equi = self._find_equi(remaining, self._bindings, next_binding)
            if equi is None:
                raise PlanError(
                    "temporal queries require an equi-join condition between "
                    f"{[b.alias for b in self._bindings]} and {next_binding.alias}"
                )
            term, left_name, right_name = equi
            remaining.remove(term)
            join = TemporalJoin(
                plan, next_plan, Location.DBMS, left_name, right_name, PERIOD
            )
            self._remap_after_join(join, next_binding)
            plan = join

        leftover = [
            self._resolve(term, self._bindings) for term in remaining
        ]
        predicate = conjoin(leftover)
        if predicate is not None:
            plan = Select(plan, Location.DBMS, predicate)
        return plan

    def _remap_after_join(self, join: TemporalJoin, right_binding: _Binding) -> None:
        """Update column mappings to the join's (disambiguated) output."""
        names = join.schema.names
        skip = {p.lower() for p in PERIOD}
        # Rebuild mappings positionally: left non-temporal names come first,
        # in schema order, then the right side's, then T1/T2.
        left_bindings = self._bindings
        flat: list[tuple[_Binding, str]] = []
        for binding in left_bindings:
            for original, current in binding.mapping.items():
                if original not in skip:
                    flat.append((binding, original))
        for original in right_binding.mapping:
            if original not in skip:
                flat.append((right_binding, original))
        for (binding, original), name in zip(flat, names):
            binding.mapping[original] = name
        for binding in left_bindings + [right_binding]:
            binding.mapping[PERIOD[0].lower()] = PERIOD[0]
            binding.mapping[PERIOD[1].lower()] = PERIOD[1]
        self._bindings = left_bindings + [right_binding]

    def _owners(
        self, term: Expression, bindings: list[_Binding]
    ) -> set[str] | None:
        owners: set[str] = set()
        for reference in collect(term, ColumnRef):
            owner = self._owner_of(reference.name, bindings)
            if owner is None:
                return None
            owners.add(owner)
        return owners

    def _owner_of(self, name: str, bindings: list[_Binding]) -> str | None:
        if "." in name:
            qualifier, column = name.split(".", 1)
            for binding in bindings:
                if binding.alias == qualifier.upper():
                    if column.lower() in binding.mapping:
                        return binding.alias
            return None
        matches = [
            binding for binding in bindings if name.lower() in binding.mapping
        ]
        if len(matches) == 1:
            return matches[0].alias
        if not matches:
            return None
        raise SQLSyntaxError(f"column {name!r} is ambiguous")

    def _resolve(self, expression: Expression, bindings: list[_Binding]) -> Expression:
        def visit(node: Expression) -> Expression | None:
            if isinstance(node, ColumnRef):
                return ColumnRef(self._resolve_name(node.name, bindings))
            return None

        return transform(expression, visit)

    def _resolve_name(self, name: str, bindings: list[_Binding]) -> str:
        if "." in name:
            qualifier, column = name.split(".", 1)
            for binding in bindings:
                if binding.alias == qualifier.upper():
                    try:
                        return binding.mapping[column.lower()]
                    except KeyError:
                        raise SQLSyntaxError(
                            f"{qualifier} has no column {column!r}"
                        ) from None
            raise SQLSyntaxError(f"unknown table alias {qualifier!r}")
        matches = [
            binding.mapping[name.lower()]
            for binding in bindings
            if name.lower() in binding.mapping
        ]
        unique = set(matches)
        if len(unique) == 1:
            return matches[0]
        if not matches:
            raise SQLSyntaxError(f"unknown column {name!r}")
        raise SQLSyntaxError(f"column {name!r} is ambiguous")

    def _find_equi(
        self,
        terms: list[Expression],
        left_bindings: list[_Binding],
        right_binding: _Binding,
    ) -> tuple[Expression, str, str] | None:
        for term in terms:
            if not isinstance(term, Comparison) or term.op != "=":
                continue
            if not (
                isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                continue
            left_owner = self._owner_of(term.left.name, left_bindings)
            right_owner = self._owner_of(term.right.name, [right_binding])
            if left_owner is not None and right_owner is not None:
                return (
                    term,
                    self._resolve_name(term.left.name, left_bindings),
                    self._resolve_name(term.right.name, [right_binding]),
                )
            left_owner = self._owner_of(term.right.name, left_bindings)
            right_owner = self._owner_of(term.left.name, [right_binding])
            if left_owner is not None and right_owner is not None:
                return (
                    term,
                    self._resolve_name(term.right.name, left_bindings),
                    self._resolve_name(term.left.name, [right_binding]),
                )
        return None

    # -- aggregation, projection, ordering -----------------------------------------------

    def _apply_aggregation_and_projection(self, plan: Operator) -> Operator:
        stmt = self._stmt
        aggregate_items = [
            item
            for item in stmt.items
            if item.star is None and collect(item.expression, AggregateCall)
        ]
        if stmt.group_by or aggregate_items:
            return self._apply_aggregation(plan)
        # Plain (possibly joined) temporal selection/projection.
        if all(item.star == "*" for item in stmt.items):
            return plan
        outputs: list[tuple[str, Expression]] = []
        for position, item in enumerate(stmt.items, start=1):
            if item.star is not None:
                for binding in self._bindings:
                    if item.star not in ("*", binding.alias):
                        continue
                    for original, current in binding.mapping.items():
                        outputs.append((current, ColumnRef(current)))
                continue
            expression = self._resolve(item.expression, self._bindings)
            name = item.alias or (
                expression.name.split(".")[-1]
                if isinstance(expression, ColumnRef)
                else f"COL_{position}"
            )
            outputs.append((name, expression))
        for period_attr in PERIOD:
            if not any(name.lower() == period_attr.lower() for name, _ in outputs):
                outputs.append((period_attr, ColumnRef(period_attr)))
        return Project(plan, Location.DBMS, tuple(outputs))

    def _apply_aggregation(self, plan: Operator) -> Operator:
        stmt = self._stmt
        group_names: list[str] = []
        for term in stmt.group_by:
            if not isinstance(term, ColumnRef):
                raise SQLSyntaxError(
                    "temporal GROUP BY supports column references only"
                )
            group_names.append(self._resolve_name(term.name, self._bindings))
        specs: list[AggregateSpec] = []
        for item in stmt.items:
            if item.star is not None:
                raise SQLSyntaxError("* is not allowed with temporal GROUP BY")
            calls = collect(item.expression, AggregateCall)
            if not calls:
                resolved = self._resolve(item.expression, self._bindings)
                if (
                    not isinstance(resolved, ColumnRef)
                    or resolved.name not in group_names
                ):
                    raise SQLSyntaxError(
                        f"select item {item.expression.to_sql()!r} must be a "
                        "grouping column or an aggregate"
                    )
                continue
            if len(calls) != 1 or calls[0] is not item.expression:
                raise SQLSyntaxError(
                    "temporal aggregates cannot be nested in expressions"
                )
            call = calls[0]
            argument = None
            if call.argument is not None:
                resolved = self._resolve(call.argument, self._bindings)
                if not isinstance(resolved, ColumnRef):
                    raise SQLSyntaxError(
                        "temporal aggregate arguments must be columns"
                    )
                argument = resolved.name
            specs.append(AggregateSpec(call.func, argument, item.alias))
        if not specs:
            raise SQLSyntaxError("temporal GROUP BY requires at least one aggregate")
        return TemporalAggregate(
            plan, Location.DBMS, tuple(group_names), tuple(specs), PERIOD
        )

    def _apply_order(self, plan: Operator) -> Operator:
        if not self._stmt.order_by:
            return plan
        keys: list[str] = []
        for item in self._stmt.order_by:
            if not isinstance(item.expression, ColumnRef):
                raise SQLSyntaxError("temporal ORDER BY supports columns only")
            if not item.ascending:
                raise SQLSyntaxError("temporal ORDER BY supports ASC only")
            name = item.expression.name
            if plan.schema.has(name.split(".")[-1]):
                keys.append(plan.schema[name.split(".")[-1]].name)
            else:
                keys.append(self._resolve_name(name, self._bindings))
        return Sort(plan, Location.DBMS, tuple(keys))
