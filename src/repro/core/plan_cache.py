"""A statistics-epoch plan cache for the Tango middleware.

"Query Optimization in the Wild" observes that industrial systems avoid
re-optimizing repeated queries by caching plans; middleware is the natural
place to do it (QueryBooster intercepts at exactly this layer), and TANGO's
Queries 1–4 workload is repetitive by construction.  The cache maps

    (normalized query fingerprint, statistics epoch, TangoConfig)

to a finished :class:`~repro.optimizer.search.OptimizationResult`.  The
epoch component makes staleness structural rather than procedural: when the
Statistics Collector observes new statistics it bumps its epoch, every old
key stops matching, and the LRU discipline ages the dead entries out — no
scan-and-invalidate pass.  Cost-factor changes (recalibration, the Section 7
adaptive feedback loop) clear the cache outright, since they re-price every
plan without touching statistics.

Plans are safe to share across executions: compilation
(:func:`repro.core.plans.compile_plan`) builds fresh cursors — and fresh
``TANGO_TMP`` names — per run, and never mutates the operator tree.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable


def fingerprint(query: object) -> str:
    """A normalized cache identity for a query.

    SQL text is case-folded and whitespace-collapsed *outside* single-quoted
    string literals, so ``SELECT …`` and ``select   …`` share a plan while
    ``WHERE Name = 'Alice'`` and ``… = 'alice'`` do not.  Operator trees
    fingerprint by their structural rendering.
    """
    if isinstance(query, str):
        parts = query.strip().rstrip(";").split("'")
        normalized = [
            " ".join(part.split()).lower() if index % 2 == 0 else part
            for index, part in enumerate(parts)
        ]
        return "'".join(normalized)
    pretty = getattr(query, "pretty", None)
    if callable(pretty):
        return pretty()
    return repr(query)


class PlanCache:
    """A bounded LRU map from plan-cache keys to optimization results.

    ``max_size <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — the ``plan_cache_size=0`` escape hatch.

    Thread-safe: the query service shares one cache across its worker
    Tangos (any tenant's optimization is every tenant's hit), and
    concurrent ``move_to_end``/``popitem`` on an OrderedDict corrupt it
    without the lock.
    """

    def __init__(self, max_size: int = 64):
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable):
        """The cached value for *key* (refreshing its recency), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: object) -> None:
        if self.max_size <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (cost factors changed; nothing re-keys)."""
        with self._lock:
            self._entries.clear()

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
