"""Mid-query re-optimization at materialization points.

A ``TRANSFER^D`` is a natural re-optimization point: when its ``init``
returns, a prefix of the plan has been fully materialized into a DBMS
temp table, the *true* cardinality of that prefix is known (the cursor
counted every loaded row), and nothing downstream has started.  The
engine probes a callback right there; when the observed q-error exceeds
``TangoConfig.reoptimize_threshold`` the probe answers with a
:class:`ReoptimizationDecision` and the engine raises
:class:`ReoptimizationSignal` — keeping the completed temp tables alive
through its otherwise-unconditional teardown.

:func:`splice_completed` then rewrites the running plan for the
*remainder*: each completed ``TRANSFER^D`` subtree is replaced by a plain
:class:`~repro.algebra.operators.Scan` of its temp table (the collector
auto-ANALYZEs it, so the re-entered optimizer sees exact statistics), and
the optimizer re-runs under the original plan's order contract.  The
splice-point invariants are documented in DESIGN.md §9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import Operator, Scan

#: Re-optimization rounds per query execution.  Each round pays one
#: optimizer run; past the cap the engine simply finishes the current
#: plan (estimates below completed materializations are exact by then, so
#: later rounds have sharply diminishing returns).
MAX_REOPTIMIZATIONS = 3


@dataclass(frozen=True)
class ReoptimizationDecision:
    """Why a materialization-point probe chose to re-optimize."""

    node: Operator
    estimated: float
    actual: float
    qerror: float


class ReoptimizationSignal(Exception):
    """Raised by the engine to unwind a run that will be re-planned.

    Control flow, not failure: deliberately *not* a
    :class:`~repro.errors.ReproError`, so no resilience layer (retry,
    fallback, health accounting) ever mistakes it for a DBMS error.
    Carries the probe's decision and the completed ``TRANSFER^D`` cursors
    whose temp tables survived teardown; the caller owns dropping them.
    """

    def __init__(self, decision: ReoptimizationDecision, completed: tuple):
        super().__init__(
            f"re-optimizing: observed {decision.actual:.0f} rows vs "
            f"{decision.estimated:.0f} estimated "
            f"(q-error {decision.qerror:.1f}) at {decision.node.describe()!r}"
        )
        self.decision = decision
        #: The completed TransferDCursor instances, in init order.
        self.completed = completed


def splice_completed(
    plan: Operator, replacements: dict[int, Scan]
) -> Operator:
    """The remainder plan: *plan* with each completed ``TRANSFER^D`` node
    (keyed by identity) replaced by the scan of its materialized table."""
    def rebuild(node: Operator) -> Operator:
        substitute = replacements.get(id(node))
        if substitute is not None:
            return substitute
        if not node.inputs:
            return node
        rebuilt = tuple(rebuild(child) for child in node.inputs)
        if all(new is old for new, old in zip(rebuilt, node.inputs)):
            return node
        return node.with_inputs(*rebuilt)

    return rebuild(plan)


def temp_scan(node: Operator, table_name: str) -> Scan:
    """The splice substitute for a completed ``TRANSFER^D`` *node*.

    The scan claims no clustered order — exactly what ``TransferD.order()``
    promised (a freshly loaded table guarantees none), so the re-entered
    optimizer re-derives any sorts it needs.
    """
    return Scan(table_name, node.schema, clustered_order=())
