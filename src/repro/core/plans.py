"""Execution-ready plans: the Figure 5 algorithm sequence.

:func:`compile_plan` turns an optimized (and validated) operator tree into
an :class:`ExecutionPlan` — an ordered list of middleware algorithms where

* each maximal DBMS region below a ``T^M`` becomes one ``TRANSFER^M``
  (an SQL cursor, text produced by the Translator-To-SQL);
* each ``T^D`` becomes a ``TRANSFER^D`` step that must be initialized
  *before* any ``TRANSFER^M`` whose SQL references its temp table (the
  dashed "algorithm sequence" arrows of Figure 5);
* middleware operators become their XXL cursors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators import (
    Coalesce,
    Dedup,
    Difference,
    Join,
    Location,
    Operator,
    Project,
    Select,
    Sort,
    TemporalAggregate,
    TemporalJoin,
    TransferD,
    TransferM,
)
from repro.core.translator import SQLTranslator
from repro.dbms.costmodel import CostMeter
from repro.errors import PlanError
from repro.obs.instrument import ALGORITHM_NAMES as _ALGORITHM_NAMES
from repro.xxl import (
    CoalesceCursor,
    Cursor,
    DedupCursor,
    DifferenceCursor,
    ExchangeCursor,
    FilterCursor,
    MergeJoinCursor,
    ProjectCursor,
    RepartitionCursor,
    SortCursor,
    SQLCursor,
    TemporalAggregateCursor,
    TemporalJoinCursor,
    TransferDCursor,
)
from repro.xxl.columnar import resolve_backend
from repro.xxl.exchange import RepartitionOutput
from repro.xxl.sources import PooledSQLCursor
from repro.xxl.transfer import DEFAULT_LOAD_CHUNK, unique_temp_name


@dataclass
class ExecutionPlan:
    """An ordered sequence of algorithm cursors; the last one is the output."""

    steps: list[Cursor] = field(default_factory=list)
    transfers_down: list[TransferDCursor] = field(default_factory=list)

    @property
    def output(self) -> Cursor:
        if not self.steps:
            raise PlanError("empty execution plan")
        return self.steps[-1]

    def describe(self) -> str:
        """Figure 5-style rendering: one line per algorithm, middleware
        pipelines indented under the step that drains them."""
        lines: list[str] = []
        for step in self.steps:
            lines.extend(_describe_cursor(step, 0))
        return "\n".join(lines)

    def cleanup(self) -> None:
        """Drop every temp table this plan loaded."""
        for transfer in self.transfers_down:
            transfer.drop()


def _describe_cursor(cursor: Cursor, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(cursor, ExchangeCursor):
        reassembly = (
            "merge on " + ", ".join(cursor.merge_keys)
            if cursor.merge_keys
            else "concat"
        )
        lines = [
            f"{pad}EXCHANGE  Partitions: {cursor.partitions}"
            f"  Workers: {cursor.workers}  Reassembly: {reassembly}"
        ]
        for index, child in enumerate(cursor.pipeline_roots):
            lines.append(f"{pad}  [partition {index}]")
            lines.extend(_describe_cursor(child, indent + 2))
        return lines
    if isinstance(cursor, RepartitionOutput):
        owner = cursor._owner
        lines = [
            f"{pad}REPARTITION  Strategy: hash({owner._spec.attribute})"
            f"  Partition: {cursor.partition_index}"
        ]
        if cursor.partition_index == 0:
            # The shared serial input is printed once, under partition 0.
            lines.extend(_describe_cursor(owner._input, indent + 1))
        return lines
    if isinstance(cursor, SQLCursor):
        sql = " ".join(cursor.sql.split())
        if len(sql) > 100:
            sql = sql[:97] + "..."
        return [f"{pad}TRANSFER^M  Query: {sql}"]
    if isinstance(cursor, TransferDCursor):
        lines = [f"{pad}TRANSFER^D  TableName: {cursor.table_name}"]
        lines.extend(_describe_cursor(cursor._input, indent + 1))
        return lines
    name = _ALGORITHM_NAMES.get(type(cursor).__name__, type(cursor).__name__)
    detail = ""
    if isinstance(cursor, TemporalAggregateCursor):
        group = ", ".join(cursor.group_by)
        aggs = ", ".join(spec.to_sql() for spec in cursor.aggregates)
        detail = f"  GroupBy: {group}  Aggregate: {aggs}"
    elif isinstance(cursor, SortCursor):
        detail = f"  Keys: {', '.join(cursor.keys)}"
    elif isinstance(cursor, (MergeJoinCursor, TemporalJoinCursor)):
        detail = f"  On: {cursor.left_attr}={cursor.right_attr}"
    elif isinstance(cursor, FilterCursor):
        detail = f"  Predicate: {cursor.predicate.to_sql()}"
    lines = [f"{pad}{name}{detail}"]
    for attribute in ("_input", "_left", "_right"):
        child = getattr(cursor, attribute, None)
        if isinstance(child, Cursor):
            lines.extend(_describe_cursor(child, indent + 1))
    return lines


def compile_plan(
    plan: Operator,
    connection,
    meter: CostMeter | None = None,
    translator: SQLTranslator | None = None,
    registry: dict[int, Operator] | None = None,
    batch_size: int | None = None,
    retry=None,
    parallel=None,
    columnar: str | None = None,
) -> ExecutionPlan:
    """Compile an optimized operator tree into an :class:`ExecutionPlan`.

    *plan* must be middleware-rooted (every complete TANGO plan ends with
    the result in the middleware).  When *registry* is given, each created
    cursor is recorded there as ``id(cursor) -> plan node`` (a ``T^M``'s
    SQL cursor maps to the ``TransferM`` node covering its DBMS region) —
    the join key EXPLAIN ANALYZE uses to lay actuals against estimates.
    *batch_size* (``TangoConfig.batch_size``) is stamped onto every created
    cursor so the whole pipeline — including ``TRANSFER^D`` load chunking —
    moves rows in batches of that size.  *retry* (a
    :class:`~repro.resilience.retry.RetryState`, the per-query retry
    budget) is handed to every transfer cursor so DBMS calls are retried
    under the configured policy.  *parallel* (a
    :class:`~repro.core.partition.ParallelContext`, present only when
    ``TangoConfig.workers > 1``) lets the compiler fan partitionable
    pipelines out across an exchange; without it the compiled plan is
    byte-for-byte the serial one.
    """
    if plan.location is not Location.MIDDLEWARE:
        raise PlanError(
            "execution plans must deliver their result to the middleware; "
            "wrap the tree in a T^M"
        )
    compiler = _Compiler(
        connection,
        meter,
        translator or SQLTranslator(),
        registry,
        batch_size,
        retry,
        parallel,
        columnar,
    )
    root = compiler.build_root(plan)
    execution_plan = ExecutionPlan(
        steps=compiler.steps + [root],
        transfers_down=compiler.transfers_down,
    )
    return execution_plan


class _Compiler:
    def __init__(
        self,
        connection,
        meter: CostMeter | None,
        translator: SQLTranslator,
        registry: dict[int, Operator] | None = None,
        batch_size: int | None = None,
        retry=None,
        parallel=None,
        columnar: str | None = None,
    ):
        self._connection = connection
        self._meter = meter
        self._translator = translator
        self._registry = registry
        self._batch_size = max(1, batch_size) if batch_size is not None else None
        self._retry = retry
        self._parallel = parallel
        # "numpy" degrades to "python" here when numpy is absent, so one
        # config runs anywhere.
        self._columnar = resolve_backend(columnar)
        #: Steps that must be initialized before the output cursor, in order.
        self.steps: list[Cursor] = []
        self.transfers_down: list[TransferDCursor] = []
        #: id(TransferD node) -> temp table name, for the translator.
        self._temp_names: dict[int, str] = {}

    def _register(self, cursor: Cursor, node: Operator) -> Cursor:
        if self._batch_size is not None:
            cursor.batch_size = self._batch_size
        if self._columnar != "off":
            cursor.columnar = self._columnar
        if self._registry is not None:
            self._registry[id(cursor)] = node
        return cursor

    def build_root(self, node: Operator) -> Cursor:
        """Cursor for the plan root — the one place parallelism applies.

        With a :class:`~repro.core.partition.ParallelContext` attached, a
        partitionable pipeline compiles into an exchange over per-partition
        pipelines; anything else (or any analysis/statistics bail-out)
        falls through to the plain serial :meth:`build`.
        """
        if self._parallel is not None:
            exchange = self._try_parallel(node)
            if exchange is not None:
                return exchange
        return self.build(node)

    def _try_parallel(self, root: Operator) -> Cursor | None:
        from repro.core.partition import (
            partitionable_pipeline,
            partition_spec_for,
        )

        found = partitionable_pipeline(root)
        if found is None:
            return None
        transfer, attribute = found
        spec = partition_spec_for(transfer, attribute, self._parallel)
        if spec is None or spec.degree < 2:
            return None
        merge_keys: tuple[str, ...] = ()
        if spec.strategy == "range":
            # TRANSFER^M fan-out: one SQL per partition range, each pulled
            # over its own pooled connection.  Cut-point order makes plain
            # concatenation reproduce the delivered sort order.
            if self._parallel.pool is None:
                return None
            self._prepare_transfers_down(transfer.input)
            leaves: list[Cursor] = [
                self._register(
                    PooledSQLCursor(self._parallel.pool, sql, retry=self._retry),
                    transfer,
                )
                for sql in self._partition_sqls(transfer, spec)
            ]
        else:
            # Hash strategy: one serial transfer, dealt to the partitions
            # in the middleware; reassembly needs the k-way merge on the
            # delivered order (partition-index tie-break keeps it
            # deterministic).
            merge_keys = tuple(root.order())
            if not merge_keys:
                return None
            serial = self._register(self._build_transfer_m(transfer), transfer)
            splitter = RepartitionCursor(serial, spec)
            leaves = list(splitter.outputs)
            for leaf in leaves:
                self._register(leaf, transfer)
        pipelines = [
            self._build_partition_pipeline(root, transfer, leaf) for leaf in leaves
        ]
        exchange = ExchangeCursor(
            pipelines, self._parallel.workers, merge_keys=merge_keys
        )
        return self._register(exchange, root)

    def _build_partition_pipeline(
        self, node: Operator, transfer: TransferM, leaf: Cursor
    ) -> Cursor:
        """Clone the unary middleware chain above *transfer* onto *leaf*."""
        if node is transfer:
            return leaf
        return self._make_unary(
            node, self._build_partition_pipeline(node.input, transfer, leaf)
        )

    def build(self, node: Operator) -> Cursor:
        """Cursor for a middleware-located operator."""
        if isinstance(node, TransferM):
            return self._register(self._build_transfer_m(node), node)
        if isinstance(
            node, (Select, Project, Sort, TemporalAggregate, Dedup, Coalesce)
        ):
            return self._make_unary(node, self.build(node.input))
        if isinstance(node, TemporalJoin):
            cursor: Cursor = TemporalJoinCursor(
                self.build(node.left),
                self.build(node.right),
                node.left_attr,
                node.right_attr,
                node.period,
                self._meter,
            )
        elif isinstance(node, Join):
            cursor = MergeJoinCursor(
                self.build(node.left),
                self.build(node.right),
                node.left_attr,
                node.right_attr,
                node.residual,
                self._meter,
            )
        elif isinstance(node, Difference):
            cursor = DifferenceCursor(
                self.build(node.left), self.build(node.right), self._meter
            )
        else:
            raise PlanError(
                f"{node.name} at {node.location.value} cannot start a middleware "
                "pipeline (expected a T^M boundary below it)"
            )
        return self._register(cursor, node)

    def _make_unary(self, node: Operator, input_cursor: Cursor) -> Cursor:
        """Cursor for one unary middleware operator over *input_cursor*."""
        if isinstance(node, Select):
            cursor: Cursor = FilterCursor(input_cursor, node.predicate, self._meter)
        elif isinstance(node, Project):
            cursor = ProjectCursor(input_cursor, node.outputs, self._meter)
        elif isinstance(node, Sort):
            cursor = SortCursor(input_cursor, node.keys, self._meter)
        elif isinstance(node, TemporalAggregate):
            cursor = TemporalAggregateCursor(
                input_cursor,
                node.group_by,
                node.aggregates,
                node.period,
                self._meter,
            )
        elif isinstance(node, Dedup):
            cursor = DedupCursor(input_cursor, meter=self._meter)
        elif isinstance(node, Coalesce):
            cursor = CoalesceCursor(input_cursor, node.period, self._meter)
        else:  # pragma: no cover - callers dispatch on the same types
            raise PlanError(f"{node.name} is not a unary middleware operator")
        return self._register(cursor, node)

    def _build_transfer_m(self, node: TransferM) -> SQLCursor:
        """One TRANSFER^M step covering the DBMS region below *node*.

        Any ``T^D`` nodes inside the region are compiled first (their
        middleware pipelines become earlier steps), and their temp-table
        names are substituted into the SQL.
        """
        self._prepare_transfers_down(node.input)
        sql = self._translator.translate(node.input, self._temp_names)
        return SQLCursor(self._connection, sql, retry=self._retry)

    def _partition_sqls(self, transfer: TransferM, spec) -> list[str]:
        """Per-partition SQL for a fanned-out ``TRANSFER^M``."""
        return [
            self._translator.translate_partition(
                transfer.input, self._temp_names, predicate
            )
            for predicate in spec.predicates_sql("TPART")
        ]

    def _prepare_transfers_down(self, node: Operator) -> None:
        if isinstance(node, TransferD):
            if id(node) not in self._temp_names:
                table_name = unique_temp_name()
                self._temp_names[id(node)] = table_name
                inner = self.build(node.input)
                from repro.algebra.properties import guaranteed_order

                transfer = TransferDCursor(
                    inner,
                    self._connection,
                    table_name,
                    order=tuple(guaranteed_order(node.input)),
                    chunk_size=self._batch_size
                    if self._batch_size is not None
                    else DEFAULT_LOAD_CHUNK,
                    retry=self._retry,
                    # Overlap executemany of chunk k with production of
                    # chunk k+1 whenever the session opted into parallelism.
                    pipelined=self._parallel is not None,
                )
                self._register(transfer, node)
                self.steps.append(transfer)
                self.transfers_down.append(transfer)
            return
        for child in node.inputs:
            self._prepare_transfers_down(child)
