"""The Execution Engine (Figure 2).

``ExecuteQuery`` verbatim: create result sets for all algorithms in the
plan, call ``init()`` on each in sequence, then drain the last one —
pipelined execution where earlier ``TRANSFER^D`` steps have materialized
their temp tables by the time later ``TRANSFER^M`` SQL references them.
The drain is *batched*: the output cursor is pulled through
``next_batch(batch_size)`` so the engine pays one dispatch per batch, not
per row (row-at-a-time degenerates out of ``batch_size=1``).

Cleanup is unconditional: whatever a step raises — during ``init``, the
drain, or ``close`` — every step is closed and every ``TRANSFER^D`` temp
table is dropped before the error propagates, so a mid-query failure never
leaves ``TANGO_TMP*`` tables behind in the DBMS.

Executions can carry a *deadline* and an *abort probe*: both are checked
at batch boundaries (before each step ``init`` and each drain pull).  A
deadline violation raises :class:`~repro.errors.QueryTimeoutError`; an
abort probe returning a reason raises
:class:`~repro.errors.QueryCancelledError` — this is how a cancelled
:class:`~repro.service.QueryHandle` stops a query that is already
running.  Either way the partial execution trace rides on the error,
after the same unconditional teardown.

Every execution is materialized as a span tree (:mod:`repro.obs`): one
child span per plan step, nested spans per cursor carrying cardinalities,
transfer spans carrying the tuple/byte/second attributes the Section 7
feedback loop consumes.  That costs nothing per row — the cursors track
those numbers anyway.  With ``instrument=True`` the plan's cursors are
additionally wrapped in
:class:`~repro.obs.instrument.InstrumentedCursor` so the spans also record
per-cursor ``next()``/``next_batch()`` counts and wall time; that is the
EXPLAIN ANALYZE path, and (as in any database) the per-call timing is not
free.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.algebra.schema import Schema
from repro.core.feedback import TransferObservation, observations_from_trace
from repro.core.plans import ExecutionPlan
from repro.core.reoptimize import ReoptimizationSignal
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.xxl.transfer import TransferDCursor
from repro.obs.instrument import (
    CHILD_ATTRIBUTES,
    execution_trace,
    instrument_plan,
    unwrap,
)
from repro.xxl.exchange import ExchangeCursor
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.xxl.cursor import DEFAULT_BATCH_SIZE


@dataclass
class ExecutionOutcome:
    """Rows plus bookkeeping from one plan execution."""

    schema: Schema
    rows: list[tuple]
    elapsed_seconds: float
    steps: int
    #: Per-transfer timings (the Section 7 performance-feedback signal),
    #: derived from the trace's transfer spans.
    observations: list[TransferObservation] = field(default_factory=list)
    #: The execution's span tree (always present; per-cursor wall time and
    #: next() counts appear when the engine ran with ``instrument=True``).
    trace: Span | None = None
    #: Output batches the engine drained (rows/batches ≈ mean batch fill).
    batches: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def _iter_cursors(roots):
    """Every distinct algorithm cursor reachable from *roots* — child links
    and exchange partition pipelines included — unwrapped."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        cursor = unwrap(stack.pop())
        if id(cursor) in seen:
            continue
        seen.add(id(cursor))
        yield cursor
        if isinstance(cursor, ExchangeCursor):
            stack.extend(cursor.pipeline_roots)
        for attribute in CHILD_ATTRIBUTES:
            child = getattr(cursor, attribute, None)
            if child is not None and hasattr(child, "has_next"):
                stack.append(child)


class ExecutionEngine:
    """Runs execution-ready plans."""

    def __init__(self, cleanup_temp_tables: bool = True):
        self.cleanup_temp_tables = cleanup_temp_tables

    def execute(
        self,
        plan: ExecutionPlan,
        tracer: Tracer | None = None,
        instrument: bool = False,
        batch_size: int | None = None,
        metrics: MetricsRegistry | None = None,
        deadline_seconds: float | None = None,
        abort=None,
        on_materialize=None,
    ) -> ExecutionOutcome:
        """Figure 2's ExecuteQuery: init every result set, drain the last.

        *batch_size* is the rows-per-``next_batch`` of the drain loop; when
        omitted, the output cursor's own (plan-compiled) batch size is
        used.  *metrics*, when given, receives the ``batches_produced``
        counter and the ``rows_per_batch`` histogram.  *deadline_seconds*
        bounds the execution's wall time, checked at batch boundaries (step
        inits and every drain pull); a violation raises
        :class:`~repro.errors.QueryTimeoutError` carrying the partial span
        tree — after the usual unconditional teardown, so a timed-out query
        leaks no temp tables either.  *abort*, when given, is a
        zero-argument callable probed at the same boundaries; returning a
        non-None reason string raises
        :class:`~repro.errors.QueryCancelledError` (same teardown, same
        partial trace) — this is how a :class:`~repro.service.QueryHandle`
        cancels a query that is already running.

        *on_materialize*, when given, is the mid-query re-optimization
        probe (see :mod:`repro.core.reoptimize`): called right after each
        ``TRANSFER^D`` step's ``init`` with the raw cursor — its temp
        table is fully loaded, nothing downstream has started.  A non-None
        return is a :class:`~repro.core.reoptimize.ReoptimizationDecision`
        and makes the engine unwind with
        :class:`~repro.core.reoptimize.ReoptimizationSignal`; the usual
        teardown runs, except the *completed* transfers' temp tables stay
        alive (the re-planning caller owns dropping them).
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        if instrument:
            instrument_plan(plan)
        begin = time.perf_counter()
        deadline = (
            begin + deadline_seconds if deadline_seconds is not None else None
        )

        def partial_trace(**attributes) -> Span:
            partial = execution_trace(plan, time.perf_counter() - begin)
            partial.set(rows=len(rows), batches=batches, **attributes)
            tracer.attach(partial)
            return partial

        def check_interrupts() -> None:
            if deadline is not None and time.perf_counter() >= deadline:
                if metrics is not None:
                    metrics.counter("deadline_exceeded").inc()
                raise QueryTimeoutError(
                    f"query exceeded its deadline of {deadline_seconds}s",
                    partial_trace=partial_trace(deadline_exceeded=True),
                )
            reason = abort() if abort is not None else None
            if reason is not None:
                if metrics is not None:
                    metrics.counter("queries_cancelled").inc()
                raise QueryCancelledError(
                    str(reason), partial_trace=partial_trace(cancelled=True)
                )

        rows: list[tuple] = []
        batches = 0
        completed: list[TransferDCursor] = []
        keep: frozenset[str] = frozenset()
        try:
            for step in plan.steps:
                check_interrupts()
                step.init()
                raw = unwrap(step)
                if isinstance(raw, TransferDCursor):
                    completed.append(raw)
                    if on_materialize is not None:
                        decision = on_materialize(raw)
                        if decision is not None:
                            keep = frozenset(
                                cursor.table_name for cursor in completed
                            )
                            raise ReoptimizationSignal(
                                decision, tuple(completed)
                            )
            output = plan.output
            size = max(
                1,
                batch_size
                if batch_size is not None
                else getattr(output, "batch_size", DEFAULT_BATCH_SIZE),
            )
            fill = metrics.histogram("rows_per_batch") if metrics is not None else None
            while True:
                check_interrupts()
                batch = output.next_batch(size)
                if not batch:
                    break
                batches += 1
                if fill is not None:
                    fill.observe(len(batch))
                rows.extend(batch)
            schema = output.schema
        finally:
            self._teardown(plan, keep=keep)
        elapsed = time.perf_counter() - begin
        if metrics is not None:
            metrics.counter("batches_produced").inc(batches)
            # Exchange bookkeeping (parallel_efficiency is computed at
            # cursor close, i.e. during the teardown just above).
            columnar_batches = 0
            columnar_fallbacks = 0
            for raw in _iter_cursors(plan.steps):
                columnar_batches += getattr(raw, "cbatches_produced", 0)
                columnar_fallbacks += getattr(raw, "columnar_fallbacks", 0)
                if isinstance(raw, ExchangeCursor):
                    metrics.counter("exchange_partitions").inc(raw.partitions)
                    if raw.queue_full_stalls:
                        metrics.counter("queue_full_stalls").inc(
                            raw.queue_full_stalls
                        )
                    metrics.histogram("parallel_efficiency").observe(
                        raw.parallel_efficiency
                    )
            if columnar_batches:
                metrics.counter("columnar_batches").inc(columnar_batches)
            if columnar_fallbacks:
                metrics.counter("columnar_fallbacks").inc(columnar_fallbacks)
        trace = execution_trace(plan, elapsed)
        trace.set(rows=len(rows), batches=batches)
        tracer.attach(trace)
        return ExecutionOutcome(
            schema=schema,
            rows=rows,
            elapsed_seconds=elapsed,
            steps=len(plan.steps),
            observations=observations_from_trace(trace),
            trace=trace,
            batches=batches,
        )

    def _teardown(
        self, plan: ExecutionPlan, keep: frozenset[str] = frozenset()
    ) -> None:
        """Close every step and drop every temp table, letting no failure
        in one step's cleanup skip another's; the first cleanup error
        surfaces only after everything was attempted (and never shadows an
        execution error already propagating).  Tables named in *keep*
        survive — they feed the re-optimized remainder plan, whose
        executor owns dropping them."""
        first_error: BaseException | None = None
        for step in plan.steps:
            try:
                step.close()
            except BaseException as error:  # noqa: BLE001 - must keep going
                if first_error is None:
                    first_error = error
        if self.cleanup_temp_tables:
            for transfer in plan.transfers_down:
                if transfer.table_name in keep:
                    continue
                try:
                    transfer.drop()
                except BaseException as error:  # noqa: BLE001
                    if first_error is None:
                        first_error = error
        if first_error is not None and sys.exc_info()[0] is None:
            raise first_error
