"""The Execution Engine (Figure 2).

``ExecuteQuery`` verbatim: create result sets for all algorithms in the
plan, call ``init()`` on each in sequence, then drain the last one —
pipelined execution where earlier ``TRANSFER^D`` steps have materialized
their temp tables by the time later ``TRANSFER^M`` SQL references them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.schema import Schema
from repro.core.feedback import TransferObservation
from repro.core.plans import ExecutionPlan


@dataclass
class ExecutionOutcome:
    """Rows plus bookkeeping from one plan execution."""

    schema: Schema
    rows: list[tuple]
    elapsed_seconds: float
    steps: int
    #: Per-transfer timings (the Section 7 performance-feedback signal).
    observations: list[TransferObservation] = field(default_factory=list)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class ExecutionEngine:
    """Runs execution-ready plans."""

    def __init__(self, cleanup_temp_tables: bool = True):
        self.cleanup_temp_tables = cleanup_temp_tables

    def execute(self, plan: ExecutionPlan) -> ExecutionOutcome:
        """Figure 2's ExecuteQuery: init every result set, drain the last."""
        begin = time.perf_counter()
        try:
            for step in plan.steps:
                step.init()
            output = plan.output
            rows = [output.next() for _ in iter(output.has_next, False)]
            schema = output.schema
            observations = _collect_observations(plan)
        finally:
            for step in plan.steps:
                step.close()
            if self.cleanup_temp_tables:
                plan.cleanup()
        elapsed = time.perf_counter() - begin
        return ExecutionOutcome(
            schema=schema,
            rows=rows,
            elapsed_seconds=elapsed,
            steps=len(plan.steps),
            observations=observations,
        )


def _collect_observations(plan: ExecutionPlan) -> list:
    """Harvest transfer timings from every cursor in the executed plan."""
    from repro.xxl.sources import SQLCursor
    from repro.xxl.transfer import TransferDCursor

    observations = []
    seen: set[int] = set()

    def visit(cursor) -> None:
        if id(cursor) in seen:
            return
        seen.add(id(cursor))
        if isinstance(cursor, SQLCursor):
            observations.append(
                TransferObservation(
                    direction="up",
                    tuples=cursor.rows_produced,
                    bytes=cursor.rows_produced * cursor.schema.row_width,
                    seconds=cursor.fetch_seconds,
                )
            )
        elif isinstance(cursor, TransferDCursor):
            observations.append(
                TransferObservation(
                    direction="down",
                    tuples=cursor.rows_loaded,
                    bytes=cursor.rows_loaded * cursor.schema.row_width,
                    seconds=cursor.load_seconds,
                )
            )
        for attribute in ("_input", "_left", "_right"):
            child = getattr(cursor, attribute, None)
            if child is not None and hasattr(child, "has_next"):
                visit(child)

    for step in plan.steps:
        visit(step)
    return observations
