"""The Execution Engine (Figure 2).

``ExecuteQuery`` verbatim: create result sets for all algorithms in the
plan, call ``init()`` on each in sequence, then drain the last one —
pipelined execution where earlier ``TRANSFER^D`` steps have materialized
their temp tables by the time later ``TRANSFER^M`` SQL references them.

Every execution is materialized as a span tree (:mod:`repro.obs`): one
child span per plan step, nested spans per cursor carrying cardinalities,
transfer spans carrying the tuple/byte/second attributes the Section 7
feedback loop consumes.  That costs nothing per row — the cursors track
those numbers anyway.  With ``instrument=True`` the plan's cursors are
additionally wrapped in
:class:`~repro.obs.instrument.InstrumentedCursor` so the spans also record
per-cursor ``next()`` counts and wall time; that is the EXPLAIN ANALYZE
path, and (as in any database) the per-call timing is not free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.schema import Schema
from repro.core.feedback import TransferObservation, observations_from_trace
from repro.core.plans import ExecutionPlan
from repro.obs.instrument import execution_trace, instrument_plan
from repro.obs.tracing import NULL_TRACER, Span, Tracer


@dataclass
class ExecutionOutcome:
    """Rows plus bookkeeping from one plan execution."""

    schema: Schema
    rows: list[tuple]
    elapsed_seconds: float
    steps: int
    #: Per-transfer timings (the Section 7 performance-feedback signal),
    #: derived from the trace's transfer spans.
    observations: list[TransferObservation] = field(default_factory=list)
    #: The execution's span tree (always present; per-cursor wall time and
    #: next() counts appear when the engine ran with ``instrument=True``).
    trace: Span | None = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class ExecutionEngine:
    """Runs execution-ready plans."""

    def __init__(self, cleanup_temp_tables: bool = True):
        self.cleanup_temp_tables = cleanup_temp_tables

    def execute(
        self,
        plan: ExecutionPlan,
        tracer: Tracer | None = None,
        instrument: bool = False,
    ) -> ExecutionOutcome:
        """Figure 2's ExecuteQuery: init every result set, drain the last."""
        tracer = tracer if tracer is not None else NULL_TRACER
        if instrument:
            instrument_plan(plan)
        begin = time.perf_counter()
        try:
            for step in plan.steps:
                step.init()
            output = plan.output
            rows = [output.next() for _ in iter(output.has_next, False)]
            schema = output.schema
        finally:
            for step in plan.steps:
                step.close()
            if self.cleanup_temp_tables:
                plan.cleanup()
        elapsed = time.perf_counter() - begin
        trace = execution_trace(plan, elapsed)
        trace.set(rows=len(rows))
        tracer.attach(trace)
        return ExecutionOutcome(
            schema=schema,
            rows=rows,
            elapsed_seconds=elapsed,
            steps=len(plan.steps),
            observations=observations_from_trace(trace),
            trace=trace,
        )
