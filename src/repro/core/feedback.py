"""Performance feedback: adapt cost factors from observed executions.

Section 7 of the paper: "DBMS query processing statistics, such as the
running times of query parts, may be used to update the cost factors used
in the middleware's cost formulas."  The abstract promises the same: "the
middleware uses performance feedback from the DBMS to adapt its
partitioning of subsequent queries".

The transfer algorithms are the measurable query parts — each
``TRANSFER^M`` cursor knows how many tuples it fetched and how long the
fetch took, and each ``TRANSFER^D`` knows its load size and time.  (The
paper calls dividing the remaining time between the DBMS's internal
algorithms "an interesting challenge" and leaves it open; so do we.)

Observations ride the observability layer: the Execution Engine materializes
every run as a span tree (:mod:`repro.obs`), and
:func:`observations_from_trace` projects that tree's transfer spans into
:class:`TransferObservation` values.  :class:`FeedbackAdapter` folds those
observations into the per-tuple transfer factors with an exponential moving
average, so a middleware running against a suddenly slower (or faster) DBMS
connection re-apportions subsequent queries without a recalibration pass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.obs.tracing import Span
from repro.optimizer.costs import CostFactors


@dataclass(frozen=True)
class TransferObservation:
    """One observed transfer: direction, tuples moved, bytes moved, and
    the wall-clock seconds it took."""

    direction: str  # "up" (TRANSFER^M) or "down" (TRANSFER^D)
    tuples: int
    bytes: int
    seconds: float

    @property
    def per_tuple_us(self) -> float:
        if self.tuples <= 0:
            return 0.0
        return self.seconds * 1e6 / self.tuples


def observations_from_trace(trace: Span) -> list[TransferObservation]:
    """Project a span tree's transfer spans into observations.

    Every ``kind="transfer"`` span carries ``direction``, ``tuples``,
    ``bytes``, and ``seconds`` attributes (the transfer algorithms time
    themselves, so the signal exists even when full tracing is off).
    """
    observations: list[TransferObservation] = []
    for span in trace.iter():
        if span.kind != "transfer":
            continue
        attributes = span.attributes
        observations.append(
            TransferObservation(
                direction=attributes["direction"],
                tuples=int(attributes.get("tuples", 0)),
                bytes=int(attributes.get("bytes", 0)),
                seconds=float(attributes.get("seconds", 0.0)),
            )
        )
    return observations


class FeedbackAdapter:
    """Maintains cost factors under an exponential moving average.

    ``smoothing`` is the weight of each new observation (0 < α ≤ 1);
    observations of fewer than ``min_tuples`` tuples are ignored — their
    per-tuple quotient is dominated by fixed round-trip overhead.
    """

    def __init__(self, smoothing: float = 0.3, min_tuples: int = 20):
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self.min_tuples = min_tuples
        self.observations_applied = 0

    def apply(
        self, factors: CostFactors, observations: list[TransferObservation]
    ) -> CostFactors:
        """Return *factors* updated with *observations*.

        Only the per-tuple transfer shares move (the per-byte shares come
        from the calibration's controlled narrow/wide fit; a single live
        query cannot separate the two terms).
        """
        p_tmr = factors.p_tmr
        p_tdr = factors.p_tdr
        for observation in observations:
            if observation.tuples < self.min_tuples:
                continue
            if observation.direction not in ("up", "down"):
                # An unknown direction updates no factor; counting it as
                # applied would misreport the loop's activity.
                continue
            if observation.seconds <= 0:
                # Clock glitches (and synthetic observations) can report
                # non-positive timings; folding them in would drag the EMA
                # toward zero and make transfers look free.
                continue
            observed = max(
                0.0,
                observation.per_tuple_us
                - _per_byte_share(factors, observation),
            )
            if observation.direction == "up":
                p_tmr = (1 - self.smoothing) * p_tmr + self.smoothing * observed
            else:
                p_tdr = (1 - self.smoothing) * p_tdr + self.smoothing * observed
            self.observations_applied += 1
        if p_tmr == factors.p_tmr and p_tdr == factors.p_tdr:
            return factors
        return replace(factors, p_tmr=p_tmr, p_tdr=p_tdr)


def _per_byte_share(factors: CostFactors, observation: TransferObservation) -> float:
    """The microseconds per tuple already explained by the per-byte term."""
    if observation.tuples <= 0:
        return 0.0
    width = observation.bytes / observation.tuples
    if observation.direction == "up":
        return factors.p_tm * width
    return factors.p_td * width
