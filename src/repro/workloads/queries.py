"""The paper's four benchmark queries (Section 5.2).

For each query this module provides

* the temporal SQL text (where expressible — Query 4 is a regular join);
* the *initial plan* the parser would hand the optimizer (all processing in
  the DBMS, one ``T^M`` on top — Figure 4(a));
* the enumerated candidate plans of Figures 7 and 9 as
  :class:`PlanSpec` values — hand-built exactly as the paper describes, so
  the benchmark harness can measure each one and compare against the
  optimizer's pick.

Plans 2 and 3 of Query 4 set the DBMS join method with optimizer hints
(``USE_NL`` / ``USE_MERGE``), as the paper did with Oracle; those are raw
SQL specs rather than algebra trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.builder import scan
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.operators import Location, Operator
from repro.algebra.schema import AttrType
from repro.temporal.timestamps import day_of

MW = Location.MIDDLEWARE
DB = Location.DBMS


@dataclass(frozen=True)
class PlanSpec:
    """One enumerated candidate plan."""

    name: str
    description: str
    plan: Operator | None = None
    sql: str | None = None


def _overlap_predicate(start_day: int, end_day: int):
    """``T1 < end AND T2 > start`` — Overlaps(start, end) in SQL form."""
    return Comparison("<", col("T1"), lit(end_day, AttrType.DATE)) & Comparison(
        ">", col("T2"), lit(start_day, AttrType.DATE)
    )


# ---------------------------------------------------------------------------------
# Query 1: temporal aggregation (Figure 7 / Figure 8)
# ---------------------------------------------------------------------------------


def query1_sql(table: str = "POSITION") -> str:
    return (
        f"VALIDTIME SELECT PosID, COUNT(PosID) FROM {table} "
        "GROUP BY PosID ORDER BY PosID"
    )


def query1_initial_plan(db, table: str = "POSITION") -> Operator:
    return (
        scan(db, table)
        .project("PosID", "T1", "T2")
        .taggr(group_by=["PosID"], count="PosID")
        .sort("PosID")
        .to_middleware()
        .build()
    )


def query1_plans(db, table: str = "POSITION") -> list[PlanSpec]:
    base = scan(db, table).project("PosID", "T1", "T2")
    plan1 = (
        base.sort("PosID", "T1")
        .to_middleware()
        .taggr(group_by=["PosID"], count="PosID")
        .build()
    )
    plan2 = (
        base.to_middleware()
        .sort("PosID", "T1")
        .taggr(group_by=["PosID"], count="PosID")
        .build()
    )
    plan3 = (
        base.taggr(group_by=["PosID"], count="PosID")
        .sort("PosID")
        .to_middleware()
        .build()
    )
    return [
        PlanSpec("Q1-P1", "sort in DBMS, TAGGR^M in middleware", plan1),
        PlanSpec("Q1-P2", "sort and TAGGR^M in middleware", plan2),
        PlanSpec("Q1-P3", "everything in the DBMS (TAGGR^D)", plan3),
    ]


# ---------------------------------------------------------------------------------
# Query 2: selection + temporal aggregation + temporal join (Figure 9 / Figure 10)
# ---------------------------------------------------------------------------------

Q2_PERIOD_START = "1983-01-01"
Q2_PAY_RATE = 10.0

# Query 2 nests an aggregation inside a join, which the VALIDTIME dialect
# does not express directly; its entry point is query2_initial_plan (the
# algebraic form the paper's parser would produce).
_Q2_OUTPUT = ("PosID", "EmpName", "T1", "T2", "COUNTofPosID")


def _q2_sides(db, end_date: str, table: str, select_aggregation_argument: bool):
    """The two argument expressions of Query 2.

    Aggregation side: POSITION restricted to the query period (optional —
    Plan 5 skips it); join side: POSITION restricted to the period *and*
    ``PayRate > 10``.
    """
    start = day_of(Q2_PERIOD_START)
    end = day_of(end_date)
    overlap = _overlap_predicate(start, end)
    aggregation_arg = scan(db, table).project("PosID", "T1", "T2")
    if select_aggregation_argument:
        aggregation_arg = aggregation_arg.select(overlap)
    pay = Comparison(">", col("PayRate"), lit(Q2_PAY_RATE))
    join_arg = (
        scan(db, table)
        .project("PosID", "EmpName", "PayRate", "T1", "T2")
        .select(overlap & pay)
        .project("PosID", "EmpName", "T1", "T2")
    )
    return aggregation_arg, join_arg


def _q2_finalize(builder, end_date: str):
    """Sequenced-window semantics: restrict the join output to the query
    period and clip result periods to it.

    This is what makes the inner selection on the aggregation argument "not
    needed for correctness" (the paper's Plan 5): every result row is
    reduced to its intersection with the window, so counting outside the
    window cannot change the answer.
    """
    from repro.algebra.expressions import FuncCall

    start = day_of(Q2_PERIOD_START)
    end = day_of(end_date)
    clip = (
        ("PosID", col("PosID")),
        ("EmpName", col("EmpName")),
        ("T1", FuncCall("GREATEST", [col("T1"), lit(start, AttrType.DATE)])),
        ("T2", FuncCall("LEAST", [col("T2"), lit(end, AttrType.DATE)])),
        ("COUNTofPosID", col("COUNTofPosID")),
    )
    return builder.select(_overlap_predicate(start, end)).project_exprs(clip)


def query2_initial_plan(db, end_date: str, table: str = "POSITION") -> Operator:
    aggregation_arg, join_arg = _q2_sides(db, end_date, table, True)
    joined = aggregation_arg.taggr(group_by=["PosID"], count="PosID").temporal_join(
        join_arg, "PosID", "PosID"
    )
    return _q2_finalize(joined, end_date).sort("PosID").to_middleware().build()


def query2_plans(db, end_date: str, table: str = "POSITION") -> list[PlanSpec]:
    def aggregated_mw(sort_loc: Location, select_arg: bool, filter_mw: bool):
        """Aggregation side evaluated in the middleware (TAGGR^M)."""
        aggregation_arg, _ = _q2_sides(db, end_date, table, select_arg and not filter_mw)
        if filter_mw:
            start = day_of(Q2_PERIOD_START)
            end = day_of(end_date)
            builder = aggregation_arg.to_middleware().select(_overlap_predicate(start, end))
            builder = builder.sort("PosID", "T1")
        elif sort_loc is DB:
            builder = aggregation_arg.sort("PosID", "T1").to_middleware()
        else:
            builder = aggregation_arg.to_middleware().sort("PosID", "T1")
        return builder.taggr(group_by=["PosID"], count="PosID")

    def join_side(sort_loc: Location, filter_mw: bool):
        _, join_arg = _q2_sides(db, end_date, table, True)
        if filter_mw:
            start = day_of(Q2_PERIOD_START)
            end = day_of(end_date)
            pay = Comparison(">", col("PayRate"), lit(Q2_PAY_RATE))
            raw = scan(db, table).project("PosID", "EmpName", "PayRate", "T1", "T2")
            builder = (
                raw.to_middleware()
                .select(_overlap_predicate(start, end) & pay)
                .project("PosID", "EmpName", "T1", "T2")
                .sort("PosID")
            )
        elif sort_loc is DB:
            builder = join_arg.sort("PosID").to_middleware()
        else:
            builder = join_arg.to_middleware().sort("PosID")
        return builder

    def finish_in_dbms(aggregated):
        """T^D the aggregation, temporal-join + sort in the DBMS."""
        _, join_arg = _q2_sides(db, end_date, table, True)
        joined = aggregated.to_dbms().temporal_join(join_arg, "PosID", "PosID")
        return (
            _q2_finalize(joined, end_date).sort("PosID").to_middleware().build()
        )

    def finish_in_mw(aggregated, join_builder):
        joined = aggregated.temporal_join(join_builder, "PosID", "PosID")
        return _q2_finalize(joined, end_date).build()

    plan1 = finish_in_dbms(aggregated_mw(DB, True, False))
    plan2 = finish_in_mw(aggregated_mw(DB, True, False), join_side(DB, False))
    plan3 = finish_in_mw(aggregated_mw(MW, True, False), join_side(MW, False))
    plan4 = finish_in_mw(aggregated_mw(MW, True, True), join_side(MW, True))
    plan5 = finish_in_dbms(aggregated_mw(DB, False, False))

    aggregation_arg, join_arg = _q2_sides(db, end_date, table, True)
    joined6 = aggregation_arg.taggr(group_by=["PosID"], count="PosID").temporal_join(
        join_arg, "PosID", "PosID"
    )
    plan6 = _q2_finalize(joined6, end_date).sort("PosID").to_middleware().build()
    return [
        PlanSpec("Q2-P1", "TAGGR^M; temporal join and sort in DBMS", plan1),
        PlanSpec("Q2-P2", "TAGGR^M + TJOIN^M; argument sorts in DBMS", plan2),
        PlanSpec("Q2-P3", "TAGGR^M + TJOIN^M + SORT^M", plan3),
        PlanSpec("Q2-P4", "selection, sort, TAGGR^M, TJOIN^M all in middleware", plan4),
        PlanSpec("Q2-P5", "like P1 but no selection on the aggregation argument", plan5),
        PlanSpec("Q2-P6", "everything in the DBMS (TAGGR^D + TJOIN^D)", plan6),
    ]


# ---------------------------------------------------------------------------------
# Query 3: temporal self-join (Figure 11(a))
# ---------------------------------------------------------------------------------


def query3_initial_plan(db, start_bound: str, table: str = "POSITION") -> Operator:
    return query3_plans(db, start_bound, table)[0].plan  # Plan 1 is the initial shape


def query3_plans(db, start_bound: str, table: str = "POSITION") -> list[PlanSpec]:
    bound = day_of(start_bound)
    starts_before = Comparison("<", col("T1"), lit(bound, AttrType.DATE))
    distinct_pair = Comparison("<", col("EmpID"), col("EmpID_2"))

    def side():
        return (
            scan(db, table)
            .project("PosID", "EmpID", "EmpName", "T1", "T2")
            .select(starts_before)
        )

    plan1 = (
        side()
        .temporal_join(side(), "PosID", "PosID")
        .select(distinct_pair)
        .project("PosID", "EmpName", "EmpName_2", "T1", "T2")
        .sort("PosID")
        .to_middleware()
        .build()
    )
    plan2 = (
        side()
        .sort("PosID")
        .to_middleware()
        .temporal_join(side().sort("PosID").to_middleware(), "PosID", "PosID")
        .select(distinct_pair)
        .project("PosID", "EmpName", "EmpName_2", "T1", "T2")
        .build()
    )
    return [
        PlanSpec("Q3-P1", "everything in the DBMS", plan1),
        PlanSpec("Q3-P2", "temporal join in the middleware", plan2),
    ]


# ---------------------------------------------------------------------------------
# Query 4: regular join (Figure 11(b))
# ---------------------------------------------------------------------------------


def query4_initial_plan(db, position_table: str = "POSITION") -> Operator:
    return (
        scan(db, position_table)
        .project("PosID", "EmpID")
        .join(
            scan(db, "EMPLOYEE").project("EmpID", "EmpName", "Address"),
            "EmpID",
            "EmpID",
        )
        .project("PosID", "EmpName", "Address")
        .to_middleware()
        .build()
    )


def query4_plans(db, position_table: str = "POSITION") -> list[PlanSpec]:
    plan1 = (
        scan(db, position_table)
        .project("PosID", "EmpID")
        .to_middleware()
        .sort("EmpID")
        .join(
            scan(db, "EMPLOYEE")
            .project("EmpID", "EmpName", "Address")
            .to_middleware()
            .sort("EmpID"),
            "EmpID",
            "EmpID",
        )
        .project("PosID", "EmpName", "Address")
        .build()
    )
    nl_sql = (
        "SELECT /*+ USE_NL */ P.PosID, E.EmpName, E.Address "
        f"FROM {position_table} P, EMPLOYEE E WHERE P.EmpID = E.EmpID"
    )
    sm_sql = (
        "SELECT /*+ USE_MERGE */ P.PosID, E.EmpName, E.Address "
        f"FROM {position_table} P, EMPLOYEE E WHERE P.EmpID = E.EmpID"
    )
    return [
        PlanSpec("Q4-P1", "sort-merge join in the middleware", plan1),
        PlanSpec("Q4-P2", "nested-loop join in the DBMS (hint)", sql=nl_sql),
        PlanSpec("Q4-P3", "sort-merge join in the DBMS (hint)", sql=sm_sql),
    ]
