"""Workloads: the synthetic UIS dataset and the paper's four queries.

* :mod:`repro.workloads.generator` — parameterized temporal-relation
  generation (used for calibration-style micro workloads and property
  tests);
* :mod:`repro.workloads.uis` — the University Information System dataset
  with the distributional properties the paper states (Section 5.1);
* :mod:`repro.workloads.queries` — Query 1-4 as temporal SQL plus the
  enumerated plans of Figures 7 and 9.
"""

from repro.workloads.generator import TemporalRelationSpec, generate_rows
from repro.workloads.uis import UISDataset, load_uis
from repro.workloads import queries

__all__ = [
    "TemporalRelationSpec",
    "generate_rows",
    "UISDataset",
    "load_uis",
    "queries",
]
