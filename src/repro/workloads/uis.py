"""The synthetic University Information System (UIS) dataset.

The paper evaluates TANGO on the UIS dataset (TIMECENTER CD-1), which we
cannot redistribute; this module synthesizes relations matching every
distributional fact the paper states (Section 5.1 and the Query 3
discussion):

* ``EMPLOYEE``: 49,972 tuples × 31 attributes, ≈13.8 MB (≈276 B/tuple);
* ``POSITION``: 83,857 tuples × 8 attributes, ≈6.7 MB (≈80 B/tuple);
* most POSITION data is concentrated after 1992, with ≈65 % of the
  time-period starts at 1995 or later;
* the PosID values are non-uniformly distributed (the paper's Query 3 notes
  the uniform-distribution join estimate errs on this data);
* eight POSITION size variants: 8,000 … 74,000 tuples drawn from the full
  relation.

A ``scale`` factor shrinks all cardinalities proportionally, because a pure
Python DBMS is orders of magnitude slower per tuple than Oracle on 2001
hardware; the *shape* of every experiment is scale-invariant (EXPERIMENTS.md
records the scale used for each run).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.dbms.database import MiniDB
from repro.temporal.timestamps import year_start

#: Paper cardinalities.
EMPLOYEE_CARDINALITY = 49_972
POSITION_CARDINALITY = 83_857
#: The eight POSITION size variants of Section 5.1.
POSITION_VARIANTS = (8_000, 17_000, 27_000, 36_000, 46_000, 55_000, 64_000, 74_000)

_FIRST = ("Tom", "Jane", "Ann", "Bob", "Eve", "Joe", "Kim", "Leo", "Mia", "Ned")
_LAST = ("Smith", "Lee", "Kwan", "Moss", "Hart", "Cole", "Pratt", "Shaw")
_TITLES = ("Lecturer", "Professor", "Clerk", "Analyst", "Dean", "Advisor")

POSITION_SCHEMA = Schema(
    [
        Attribute("PosID", AttrType.INT),
        Attribute("EmpID", AttrType.INT),
        Attribute("EmpName", AttrType.STR, 16),
        Attribute("PayRate", AttrType.FLOAT),
        Attribute("DeptNo", AttrType.INT),
        Attribute("JobTitle", AttrType.STR, 12),
        Attribute("T1", AttrType.DATE),
        Attribute("T2", AttrType.DATE),
    ]
)


def employee_schema() -> Schema:
    """31 attributes ≈276 bytes: ids, name, address, and filler columns."""
    attributes = [
        Attribute("EmpID", AttrType.INT),
        Attribute("EmpName", AttrType.STR, 16),
        Attribute("Address", AttrType.STR, 32),
        Attribute("City", AttrType.STR, 12),
        Attribute("Phone", AttrType.STR, 12),
        Attribute("DeptNo", AttrType.INT),
        Attribute("Salary", AttrType.FLOAT),
    ]
    for index in range(31 - len(attributes)):
        attributes.append(Attribute(f"Attr{index + 1}", AttrType.INT))
    return Schema(attributes)


EMPLOYEE_SCHEMA = employee_schema()


def _emp_name(rng: random.Random, emp_id: int) -> str:
    return f"{rng.choice(_FIRST)} {rng.choice(_LAST)}{emp_id % 97}"


def _position_start(rng: random.Random) -> int:
    """A period start matching the paper's skew: ≈10 % before 1992,
    ≈25 % in 1992-1994, ≈65 % at 1995 or later."""
    draw = rng.random()
    if draw < 0.10:
        return rng.randint(year_start(1982), year_start(1992) - 1)
    if draw < 0.35:
        return rng.randint(year_start(1992), year_start(1995) - 1)
    return rng.randint(year_start(1995), year_start(1998) - 1)


def position_rows(
    count: int = POSITION_CARDINALITY,
    seed: int = 20010521,
    employee_count: int | None = None,
) -> list[tuple]:
    """Synthesize POSITION rows (job assignments over time).

    PosIDs follow a skewed (80/20-ish) distribution: a minority of positions
    account for most assignments, defeating the uniform-distribution join
    estimate exactly as the paper's Query 3 reports.
    """
    rng = random.Random(seed)
    employees = employee_count if employee_count is not None else max(10, count * 3 // 5)
    distinct_positions = max(5, count // 8)
    hot_positions = max(1, distinct_positions // 10)
    rows: list[tuple] = []
    for _ in range(count):
        if rng.random() < 0.5:
            pos_id = rng.randrange(hot_positions)
        else:
            pos_id = rng.randrange(distinct_positions)
        emp_id = rng.randrange(employees)
        start = _position_start(rng)
        duration = rng.randint(30, 1200)
        end = min(start + duration, year_start(2000))
        if end <= start:
            end = start + 1
        rows.append(
            (
                pos_id,
                emp_id,
                _emp_name(rng, emp_id),
                round(rng.uniform(4.0, 40.0), 2),
                rng.randrange(60),
                rng.choice(_TITLES),
                start,
                end,
            )
        )
    return rows


def employee_rows(count: int = EMPLOYEE_CARDINALITY, seed: int = 19990101) -> list[tuple]:
    """Synthesize EMPLOYEE rows; ``EmpID`` is the 0-based dense key the
    POSITION generator draws from."""
    rng = random.Random(seed)
    rows: list[tuple] = []
    filler_count = len(EMPLOYEE_SCHEMA) - 7
    for emp_id in range(count):
        rows.append(
            (
                emp_id,
                _emp_name(rng, emp_id),
                f"{rng.randrange(9999)} College Ave Apt {rng.randrange(99)}",
                rng.choice(("Tucson", "Aalborg", "Tempe", "Mesa")),
                f"520-{rng.randrange(1000):03d}-{rng.randrange(10000):04d}",
                rng.randrange(60),
                round(rng.uniform(18_000, 140_000), 2),
            )
            + tuple(rng.randrange(1000) for _ in range(filler_count))
        )
    return rows


@dataclass
class UISDataset:
    """Handle to a loaded UIS instance."""

    db: MiniDB
    scale: float
    position_cardinality: int
    employee_cardinality: int
    variant_names: dict[int, str] = field(default_factory=dict)

    def variant_table(self, nominal_size: int) -> str:
        """Table name of the POSITION variant for a paper-nominal size."""
        return self.variant_names[nominal_size]


def load_uis(
    db: MiniDB,
    scale: float = 0.05,
    with_variants: bool = True,
    with_employee: bool = True,
    analyze: bool = True,
    seed: int = 20010521,
) -> UISDataset:
    """Create and populate the UIS tables in *db*.

    ``scale`` multiplies the paper's cardinalities.  Variants named
    ``POSITION_8000`` … ``POSITION_74000`` keep the paper's nominal sizes in
    their names regardless of scale (they contain ``scale × nominal`` rows,
    drawn as prefixes of the full relation, as in the paper).
    """
    position_count = max(20, int(POSITION_CARDINALITY * scale))
    employee_count = max(20, int(EMPLOYEE_CARDINALITY * scale))

    dataset = UISDataset(db, scale, position_count, employee_count)
    full_position = position_rows(position_count, seed, employee_count)

    db.create_table("POSITION", POSITION_SCHEMA)
    db.table("POSITION").bulk_load(full_position)

    if with_employee:
        db.create_table("EMPLOYEE", EMPLOYEE_SCHEMA)
        db.table("EMPLOYEE").bulk_load(employee_rows(employee_count, seed + 1))
        # The UIS deployment indexes the employee key, which is what makes
        # Oracle's nested-loop join the winner in the paper's Query 4.
        db.create_index("EMPLOYEE_EMPID_IX", "EMPLOYEE", "EmpID", clustered=True)

    if with_variants:
        for nominal in POSITION_VARIANTS:
            name = f"POSITION_{nominal}"
            count = max(10, int(nominal * scale))
            db.create_table(name, POSITION_SCHEMA)
            db.table(name).bulk_load(full_position[:count])
            dataset.variant_names[nominal] = name

    if analyze:
        for table in db.list_tables():
            db.analyze(table)
    return dataset
