"""Parameterized generation of synthetic temporal relations.

Used for Section 3.3's worked selectivity example (uniform 7-day periods
over 1995-2000), for calibration workloads, and as a building block for
property-based tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.temporal.timestamps import day_of


@dataclass(frozen=True)
class TemporalRelationSpec:
    """Parameters of a synthetic temporal relation.

    Defaults reproduce the relation of the Section 3.3 worked example:
    100,000 tuples, every period exactly 7 days, starts uniform over
    [1995-01-01, 2000-01-01 - duration].
    """

    cardinality: int = 100_000
    key_cardinality: int = 1000
    window_start: str = "1995-01-01"
    window_end: str = "2000-01-01"
    min_duration: int = 7
    max_duration: int = 7
    seed: int = 42
    extra_value_range: int = 1000

    @property
    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("K", AttrType.INT),
                Attribute("V", AttrType.INT),
                Attribute("T1", AttrType.DATE),
                Attribute("T2", AttrType.DATE),
            ]
        )


def generate_rows(spec: TemporalRelationSpec) -> list[tuple]:
    """Rows ``(K, V, T1, T2)`` for *spec* (deterministic per seed)."""
    rng = random.Random(spec.seed)
    window_start = day_of(spec.window_start)
    window_end = day_of(spec.window_end)
    rows: list[tuple] = []
    for _ in range(spec.cardinality):
        duration = rng.randint(spec.min_duration, spec.max_duration)
        latest_start = max(window_start, window_end - duration)
        start = rng.randint(window_start, latest_start)
        rows.append(
            (
                rng.randrange(spec.key_cardinality),
                rng.randrange(spec.extra_value_range),
                start,
                start + duration,
            )
        )
    return rows
