"""Parameterized generation of synthetic temporal relations.

Used for Section 3.3's worked selectivity example (uniform 7-day periods
over 1995-2000), for calibration workloads, as a building block for
property-based tests, and — via the randomized UIS-shaped specs at the
bottom — as the relation source of the :mod:`repro.fuzz` differential
fuzzer.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.algebra.schema import Attribute, AttrType, Schema
from repro.temporal.timestamps import day_of


@dataclass(frozen=True)
class TemporalRelationSpec:
    """Parameters of a synthetic temporal relation.

    Defaults reproduce the relation of the Section 3.3 worked example:
    100,000 tuples, every period exactly 7 days, starts uniform over
    [1995-01-01, 2000-01-01 - duration].
    """

    cardinality: int = 100_000
    key_cardinality: int = 1000
    window_start: str = "1995-01-01"
    window_end: str = "2000-01-01"
    min_duration: int = 7
    max_duration: int = 7
    seed: int = 42
    extra_value_range: int = 1000

    @property
    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("K", AttrType.INT),
                Attribute("V", AttrType.INT),
                Attribute("T1", AttrType.DATE),
                Attribute("T2", AttrType.DATE),
            ]
        )


def generate_rows(spec: TemporalRelationSpec) -> list[tuple]:
    """Rows ``(K, V, T1, T2)`` for *spec* (deterministic per seed)."""
    rng = random.Random(spec.seed)
    window_start = day_of(spec.window_start)
    window_end = day_of(spec.window_end)
    rows: list[tuple] = []
    for _ in range(spec.cardinality):
        duration = rng.randint(spec.min_duration, spec.max_duration)
        latest_start = max(window_start, window_end - duration)
        start = rng.randint(window_start, latest_start)
        rows.append(
            (
                rng.randrange(spec.key_cardinality),
                rng.randrange(spec.extra_value_range),
                start,
                start + duration,
            )
        )
    return rows


# -- randomized UIS-shaped relations (the fuzzer's schema space) -----------------------

#: Word pool for STR columns; small so equality predicates actually select.
_WORDS = ("alpha", "beta", "gamma", "delta", "omega", "sigma")


@dataclass(frozen=True)
class ColumnSpec:
    """One non-period column of a randomized temporal relation."""

    name: str
    type: AttrType
    #: Distinct values drawn for the column (keys small, values larger).
    distinct: int = 8


@dataclass(frozen=True)
class RandomRelationSpec:
    """A randomized UIS-shaped temporal relation: a few key/value columns
    followed by a closed-open ``T1``/``T2`` validity period.

    "UIS-shaped" means the shape of the paper's POSITION relation: integer
    keys with skewed distributions, a couple of payload columns of mixed
    types, and day-granularity periods inside a bounded window.
    """

    name: str
    columns: tuple[ColumnSpec, ...]
    cardinality: int
    window_start: int
    window_end: int
    min_duration: int = 1
    max_duration: int = 60
    #: Probability mass concentrated on the first ``distinct // 4`` values
    #: of each INT column (the paper's hot-key skew; 0 = uniform).
    skew: float = 0.5
    seed: int = 0

    @property
    def schema(self) -> Schema:
        attributes = [Attribute(c.name, c.type) for c in self.columns]
        attributes.append(Attribute("T1", AttrType.DATE))
        attributes.append(Attribute("T2", AttrType.DATE))
        return Schema(attributes)


def random_relation_spec(
    rng: random.Random,
    name: str,
    max_rows: int = 40,
    max_extra_columns: int = 2,
) -> RandomRelationSpec:
    """Draw a random UIS-shaped relation spec from *rng*.

    Every relation has at least one INT key column (join fodder), up to
    *max_extra_columns* payload columns of random type, and a period.
    """
    columns = [ColumnSpec("K0", AttrType.INT, distinct=rng.choice((3, 5, 8)))]
    for index in range(rng.randint(0, max_extra_columns)):
        attr_type = rng.choice((AttrType.INT, AttrType.FLOAT, AttrType.STR))
        distinct = rng.choice((2, 4, 6)) if attr_type is AttrType.STR else 10
        columns.append(ColumnSpec(f"V{index}", attr_type, distinct=distinct))
    window_start = day_of("1995-01-01") + rng.randint(0, 365)
    window_span = rng.choice((30, 120, 365))
    return RandomRelationSpec(
        name=name,
        columns=tuple(columns),
        cardinality=rng.randint(3, max_rows),
        window_start=window_start,
        window_end=window_start + window_span,
        min_duration=1,
        max_duration=max(2, window_span // 3),
        skew=rng.choice((0.0, 0.5, 0.8)),
        seed=rng.randrange(2**31),
    )


def _random_value(rng: random.Random, column: ColumnSpec, skew: float) -> object:
    if column.type is AttrType.STR:
        return _WORDS[rng.randrange(min(column.distinct, len(_WORDS)))]
    if column.type is AttrType.FLOAT:
        return round(rng.uniform(0.0, column.distinct), 2)
    hot = max(1, column.distinct // 4)
    if skew > 0 and rng.random() < skew:
        return rng.randrange(hot)
    return rng.randrange(column.distinct)


def generate_relation_rows(spec: RandomRelationSpec) -> list[tuple]:
    """Rows for a :class:`RandomRelationSpec` (deterministic per seed).

    Periods satisfy the temporal-relation invariant ``T1 < T2`` and lie
    inside the spec's window.
    """
    rng = random.Random(spec.seed)
    rows: list[tuple] = []
    for _ in range(spec.cardinality):
        duration = rng.randint(spec.min_duration, spec.max_duration)
        latest_start = max(spec.window_start, spec.window_end - duration)
        start = rng.randint(spec.window_start, latest_start)
        values = tuple(
            _random_value(rng, column, spec.skew) for column in spec.columns
        )
        rows.append(values + (start, start + duration))
    return rows


# -- seeded update streams (the churn dimension of UIS workloads) ----------------------


@dataclass(frozen=True)
class UpdateBatch:
    """One step of an update stream: rows to insert and rows to delete.

    Deletes always reference rows live in the relation at the time the
    batch is applied (the generator tracks the live multiset), so a batch
    sequence replays cleanly through ``Tango.apply_updates``.
    """

    inserts: tuple[tuple, ...]
    deletes: tuple[tuple, ...]

    @property
    def rows(self) -> int:
        return len(self.inserts) + len(self.deletes)


@dataclass(frozen=True)
class UpdateStreamSpec:
    """Parameters of a seeded update stream over one relation.

    ``churn`` is the fraction of the relation's *current* cardinality
    touched per batch (inserts plus deletes); ``insert_fraction`` splits
    that churn between inserts and deletes.  The UIS shape of the new rows
    (key skew, period window) comes from the relation spec itself.
    """

    batches: int = 4
    churn: float = 0.1
    insert_fraction: float = 0.5
    seed: int = 0


def generate_update_stream(
    relation: RandomRelationSpec, stream: UpdateStreamSpec
) -> list[UpdateBatch]:
    """Deterministic update batches for *relation* (per stream seed).

    The generator simulates the live multiset: it starts from the
    relation's generated rows, samples each batch's deletes from the rows
    still live, draws fresh UIS-shaped inserts, and applies the batch
    before generating the next — so replaying the batches in order against
    the freshly-loaded relation is always valid.
    """
    rng = random.Random(f"repro.workloads.updates:{stream.seed}:{relation.name}")
    live = list(generate_relation_rows(relation))
    batches: list[UpdateBatch] = []
    for _ in range(stream.batches):
        touched = max(1, round(stream.churn * max(1, len(live))))
        insert_count = round(touched * stream.insert_fraction)
        delete_count = min(touched - insert_count, len(live))
        deletes = rng.sample(live, delete_count) if delete_count else []
        inserts: list[tuple] = []
        for _ in range(insert_count):
            duration = rng.randint(relation.min_duration, relation.max_duration)
            latest_start = max(
                relation.window_start, relation.window_end - duration
            )
            start = rng.randint(relation.window_start, latest_start)
            values = tuple(
                _random_value(rng, column, relation.skew)
                for column in relation.columns
            )
            inserts.append(values + (start, start + duration))
        removal = Counter(deletes)
        survivors: list[tuple] = []
        for row in live:
            if removal.get(row, 0) > 0:
                removal[row] -= 1
            else:
                survivors.append(row)
        live = survivors + inserts
        batches.append(UpdateBatch(tuple(inserts), tuple(deletes)))
    return batches
