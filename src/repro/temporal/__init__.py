"""Temporal substrate: day-granularity timestamps and closed-open periods.

The paper models time as days (Figure 3 uses small integers; Section 3.3 uses
calendar dates).  This package provides the conversion between ISO dates and
integer day numbers and the closed-open period arithmetic used by every
temporal operator.
"""

from repro.temporal.timestamps import (
    DAY_ORIGIN,
    day_of,
    date_of,
    days_between,
)
from repro.temporal.period import (
    Period,
    overlaps,
    intersect,
    constant_intervals,
)

__all__ = [
    "DAY_ORIGIN",
    "day_of",
    "date_of",
    "days_between",
    "Period",
    "overlaps",
    "intersect",
    "constant_intervals",
]
