"""Day-granularity calendar arithmetic.

All temporal operators work on integer *day numbers*.  A day number counts
days since :data:`DAY_ORIGIN` (1830-01-01), a date safely before anything in
the UIS dataset, so every timestamp in the experiments is a positive integer.

Only the proleptic Gregorian calendar of :mod:`datetime` is used; no time
zones, no sub-day granularity — matching the paper, which measures validity
periods in days.
"""

from __future__ import annotations

import datetime
import functools

#: Calendar origin for day numbers (day number 0).
DAY_ORIGIN = datetime.date(1830, 1, 1)

#: Largest representable day number ("until changed" / open-ended periods).
FOREVER = 3_000_000


@functools.lru_cache(maxsize=65536)
def day_of(date: str | datetime.date) -> int:
    """Return the day number of an ISO date string or :class:`datetime.date`.

    >>> day_of("1830-01-02")
    1
    >>> day_of("1997-02-01") - day_of("1997-01-31")
    1
    """
    if isinstance(date, str):
        date = datetime.date.fromisoformat(date)
    return (date - DAY_ORIGIN).days


def date_of(day: int) -> datetime.date:
    """Return the calendar date of a day number (inverse of :func:`day_of`)."""
    return DAY_ORIGIN + datetime.timedelta(days=int(day))


def iso_of(day: int) -> str:
    """Return the ISO string of a day number.

    >>> iso_of(day_of("1995-06-15"))
    '1995-06-15'
    """
    return date_of(day).isoformat()


def days_between(start: str | datetime.date, end: str | datetime.date) -> int:
    """Number of days from *start* (inclusive) to *end* (exclusive)."""
    return day_of(end) - day_of(start)


def year_start(year: int) -> int:
    """Day number of January 1 of *year* — handy for the paper's sweeps.

    >>> year_start(1830)
    0
    """
    return day_of(datetime.date(year, 1, 1))
