"""Closed-open time periods ``[start, end)`` and their algebra.

The paper (Section 2.2) adopts the closed-open representation: a tuple with
``T1 = 2, T2 = 20`` is valid on days 2 through 19.  All helpers here follow
that convention; a period is *empty* when ``start >= end``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class Period:
    """A closed-open period ``[start, end)`` over integer day numbers."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"period end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> int:
        """Number of days covered."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True when the period covers no day."""
        return self.start >= self.end

    def contains(self, instant: int) -> bool:
        """True when *instant* lies in ``[start, end)`` (a timeslice test)."""
        return self.start <= instant < self.end

    def overlaps(self, other: "Period") -> bool:
        """True when the two periods share at least one day.

        This is the paper's SQL condition ``A.T1 < B.T2 AND A.T2 > B.T1``.
        """
        return self.start < other.end and self.end > other.start

    def intersect(self, other: "Period") -> "Period | None":
        """The common sub-period, or ``None`` when the periods are disjoint.

        The bounds are the paper's ``GREATEST(A.T1, B.T1)`` and
        ``LEAST(A.T2, B.T2)``.
        """
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Period(start, end)

    def meets(self, other: "Period") -> bool:
        """True when this period ends exactly where *other* starts."""
        return self.end == other.start

    def merge(self, other: "Period") -> "Period":
        """Union of two overlapping or adjacent periods.

        Raises :class:`ValueError` if the union would not be a single period.
        """
        if not (self.overlaps(other) or self.meets(other) or other.meets(self)):
            raise ValueError(f"{self} and {other} are neither adjacent nor overlapping")
        return Period(min(self.start, other.start), max(self.end, other.end))


def overlaps(start1: int, end1: int, start2: int, end2: int) -> bool:
    """Overlap test on raw bounds — the hot-path form used by operators."""
    return start1 < end2 and end1 > start2


def intersect(start1: int, end1: int, start2: int, end2: int) -> tuple[int, int] | None:
    """Intersection on raw bounds; ``None`` when disjoint."""
    start = start1 if start1 > start2 else start2
    end = end1 if end1 < end2 else end2
    if start >= end:
        return None
    return start, end


def constant_intervals(periods: Iterable[tuple[int, int]]) -> Iterator[tuple[int, int]]:
    """Yield the maximal *constant intervals* induced by a set of periods.

    A constant interval is a maximal period during which the set of covering
    input periods does not change.  Temporal aggregation produces one result
    tuple per non-empty constant interval (Figure 3(c)).  Intervals covered by
    zero input periods are skipped.

    >>> list(constant_intervals([(2, 20), (5, 25)]))
    [(2, 5), (5, 20), (20, 25)]
    """
    events: list[int] = []
    starts: list[int] = []
    ends: list[int] = []
    for start, end in periods:
        if start < end:
            starts.append(start)
            ends.append(end)
            events.append(start)
            events.append(end)
    if not events:
        return
    instants = sorted(set(events))
    starts.sort()
    ends.sort()
    si = ei = 0
    active = 0
    for left, right in zip(instants, instants[1:]):
        while si < len(starts) and starts[si] <= left:
            active += 1
            si += 1
        while ei < len(ends) and ends[ei] <= left:
            active -= 1
            ei += 1
        if active > 0:
            yield left, right


def coalesce_periods(periods: Sequence[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent periods into maximal disjoint periods.

    This is value-equivalent coalescing restricted to the timestamps
    themselves; :mod:`repro.xxl.coalesce` applies it per group of
    value-equivalent tuples.

    >>> coalesce_periods([(1, 5), (4, 8), (10, 12)])
    [(1, 8), (10, 12)]
    """
    nonempty = sorted(p for p in periods if p[0] < p[1])
    merged: list[tuple[int, int]] = []
    for start, end in nonempty:
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
