"""Cursor-level instrumentation of execution-ready plans.

:class:`InstrumentedCursor` wraps any XXL cursor and records ``next()``
calls, rows produced, and wall time spent inside the cursor (children
included), without the ~12 algorithm cursor classes needing any edits.
:func:`instrument_plan` rewrites an :class:`~repro.core.plans.ExecutionPlan`
in place so every cursor in every step tree is wrapped.

:func:`execution_trace` turns a finished plan — instrumented or not — into
a :class:`~repro.obs.tracing.Span` tree: one child span per plan step, one
nested span per cursor.  Transfer cursors always carry their tuple/byte/
second attributes (``TRANSFER^M`` and ``TRANSFER^D`` time themselves), so
the adaptive-feedback signal exists even when full tracing is off; the
per-cursor wall time and ``next()`` counts appear only when the plan was
instrumented.
"""

from __future__ import annotations

import time

from repro.obs.tracing import Span
from repro.xxl.cursor import Cursor
from repro.xxl.exchange import ExchangeCursor
from repro.xxl.sources import SQLCursor
from repro.xxl.transfer import TransferDCursor

#: Figure 5 display names per cursor class (shared with plan rendering).
ALGORITHM_NAMES = {
    "SQLCursor": "TRANSFER^M",
    "PooledSQLCursor": "TRANSFER^M",
    "TransferDCursor": "TRANSFER^D",
    "ExchangeCursor": "EXCHANGE",
    "RepartitionOutput": "REPARTITION",
    "FilterCursor": "FILTER^M",
    "ProjectCursor": "PROJECT^M",
    "SortCursor": "SORT^M",
    "MergeJoinCursor": "JOIN^M",
    "TemporalJoinCursor": "TJOIN^M",
    "TemporalAggregateCursor": "TAGGR^M",
    "DedupCursor": "DEDUP^M",
    "CoalesceCursor": "COAL^M",
    "DifferenceCursor": "DIFF^M",
    "RelationCursor": "RELATION^M",
}

#: The attribute names cursors use for their child cursors.
CHILD_ATTRIBUTES = ("_input", "_left", "_right")


def algorithm_name(cursor) -> str:
    """The Figure 5 algorithm label of a (possibly wrapped) cursor."""
    raw = unwrap(cursor)
    class_name = type(raw).__name__
    return ALGORITHM_NAMES.get(class_name, class_name)


def unwrap(cursor):
    """The underlying algorithm cursor behind any instrumentation."""
    while isinstance(cursor, InstrumentedCursor):
        cursor = cursor.wrapped
    return cursor


class InstrumentedCursor:
    """A transparent cursor proxy that measures the cursor it wraps.

    Implements the full cursor protocol — batched face included — by
    delegation; records the number of ``next()`` and ``next_batch()``
    calls and the wall-clock seconds spent inside ``init``, ``has_next``,
    ``next``, and ``next_batch`` (which includes time spent in wrapped
    children — span rendering subtracts child time to get self time).
    """

    __slots__ = ("wrapped", "next_calls", "batch_calls", "wall_seconds", "init_seconds")

    def __init__(self, wrapped: Cursor):
        self.wrapped = wrapped
        self.next_calls = 0
        self.batch_calls = 0
        self.wall_seconds = 0.0
        self.init_seconds = 0.0

    # -- cursor protocol, timed -------------------------------------------------------

    def init(self) -> "InstrumentedCursor":
        begin = time.perf_counter()
        self.wrapped.init()
        elapsed = time.perf_counter() - begin
        self.init_seconds += elapsed
        self.wall_seconds += elapsed
        return self

    def has_next(self) -> bool:
        begin = time.perf_counter()
        result = self.wrapped.has_next()
        self.wall_seconds += time.perf_counter() - begin
        return result

    def next(self) -> tuple:
        self.next_calls += 1
        begin = time.perf_counter()
        row = self.wrapped.next()
        self.wall_seconds += time.perf_counter() - begin
        return row

    def next_batch(self, n: int) -> list[tuple]:
        # One timing pair per batch: instrumentation overhead stays
        # per-batch, not per-row.
        self.batch_calls += 1
        begin = time.perf_counter()
        batch = self.wrapped.next_batch(n)
        self.wall_seconds += time.perf_counter() - begin
        return batch

    def next_column_batch(self, n: int):
        self.batch_calls += 1
        begin = time.perf_counter()
        batch = self.wrapped.next_column_batch(n)
        self.wall_seconds += time.perf_counter() - begin
        return batch

    def iter_batched(self, size: int | None = None):
        # Defined explicitly (not via __getattr__) so the pulls are timed.
        if size is None:
            size = getattr(self.wrapped, "batch_size", None)
        while True:
            batch = self.next_batch(size or 1)
            if not batch:
                return
            yield from batch

    def close(self) -> None:
        self.wrapped.close()

    def __iter__(self):
        while self.has_next():
            yield self.next()

    def __enter__(self) -> "InstrumentedCursor":
        return self.init()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- delegation -------------------------------------------------------------------

    @property
    def schema(self):
        return self.wrapped.schema

    @property
    def rows_produced(self) -> int:
        return self.wrapped.rows_produced

    def __getattr__(self, name: str):
        return getattr(self.wrapped, name)


def instrument_plan(plan) -> list[InstrumentedCursor]:
    """Wrap every cursor of *plan* (an ExecutionPlan) in place.

    Child links (``_input``/``_left``/``_right``) are rewired to wrappers so
    interior cursors are measured too; ``plan.transfers_down`` keeps its raw
    references (cleanup calls ``drop()``, which needs no timing).  Returns
    the top-level wrappers, one per step.
    """
    wrappers: dict[int, InstrumentedCursor] = {}

    def wrap(cursor):
        if isinstance(cursor, InstrumentedCursor):
            return cursor
        existing = wrappers.get(id(cursor))
        if existing is not None:
            return existing
        for attribute in CHILD_ATTRIBUTES:
            child = getattr(cursor, attribute, None)
            if child is not None and hasattr(child, "has_next"):
                setattr(cursor, attribute, wrap(child))
        wrapper = InstrumentedCursor(cursor)
        wrappers[id(cursor)] = wrapper
        return wrapper

    plan.steps = [wrap(step) for step in plan.steps]
    return plan.steps


def execution_trace(plan, elapsed_seconds: float, steps_label: str = "execute") -> Span:
    """Span tree for a finished execution: root → step spans → cursor spans."""
    root = Span(steps_label, kind="phase", seconds=elapsed_seconds)
    root.set(steps=len(plan.steps))
    seen: set[int] = set()
    for index, step in enumerate(plan.steps):
        span = cursor_span(step, seen)
        if span is not None:
            span.set(step=index)
            root.add_child(span)
    return root


def cursor_span(cursor, seen: set[int] | None = None) -> Span | None:
    """Span for one cursor (sub)tree; None if already emitted via *seen*."""
    if seen is None:
        seen = set()
    wrapper = cursor if isinstance(cursor, InstrumentedCursor) else None
    raw = unwrap(cursor)
    if id(raw) in seen:
        return None
    seen.add(id(raw))

    span = Span(algorithm_name(raw), kind="cursor")
    span.set(
        cursor=type(raw).__name__,
        cursor_id=id(raw),
        rows=raw.rows_produced,
        batches=getattr(raw, "batches_produced", 0),
    )
    if getattr(raw, "columnar", "off") != "off":
        span.set(
            columnar=raw.columnar,
            cbatches=getattr(raw, "cbatches_produced", 0),
            columnar_fallbacks=getattr(raw, "columnar_fallbacks", 0),
        )
    if wrapper is not None:
        span.seconds = wrapper.wall_seconds
        span.set(
            next_calls=wrapper.next_calls,
            batch_calls=wrapper.batch_calls,
            init_seconds=wrapper.init_seconds,
        )

    if isinstance(raw, SQLCursor):
        span.kind = "transfer"
        span.set(
            direction="up",
            tuples=raw.rows_produced,
            bytes=raw.rows_produced * raw.schema.row_width,
            seconds=raw.fetch_seconds,
            sql=raw.sql,
        )
        if raw.retries:
            span.set(retries=raw.retries)
        if span.seconds is None:
            span.seconds = raw.fetch_seconds
    elif isinstance(raw, TransferDCursor):
        span.kind = "transfer"
        span.set(
            direction="down",
            tuples=raw.rows_loaded,
            bytes=raw.rows_loaded * raw.schema.row_width,
            seconds=raw.load_seconds,
            table=raw.table_name,
        )
        if raw.retries:
            span.set(retries=raw.retries)
        if span.seconds is None:
            span.seconds = raw.load_seconds
    elif isinstance(raw, ExchangeCursor):
        span.kind = "exchange"
        span.set(
            partitions=raw.partitions,
            workers=raw.workers,
            queue_full_stalls=raw.queue_full_stalls,
            parallel_efficiency=raw.parallel_efficiency,
        )
        # One child span per partition pipeline, tagged with its index.
        for index, child in enumerate(raw.pipeline_roots):
            child_span = cursor_span(child, seen)
            if child_span is not None:
                child_span.set(partition=index)
                span.add_child(child_span)

    for attribute in CHILD_ATTRIBUTES:
        child = getattr(raw, attribute, None)
        if child is not None and hasattr(child, "has_next"):
            child_span = cursor_span(child, seen)
            if child_span is not None:
                span.add_child(child_span)
    return span
