"""Middleware metrics: named counters and histograms.

One :class:`MetricsRegistry` per :class:`~repro.core.tango.Tango` instance
accumulates process-lifetime operational numbers — queries served, memo
complexity, transfer volume, cache hits, DBMS round trips.  Instruments are
created on first use, so producers and consumers need no shared setup:

    metrics.counter("queries_total").inc()
    metrics.histogram("query_seconds").observe(elapsed)

Everything exports as plain dicts (:meth:`MetricsRegistry.to_dict`), the
same structured-output discipline as :mod:`repro.obs.tracing`.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing named count.

    Thread-safe: exchange producer threads and pooled connections all
    report into the same instruments, and ``+=`` on a plain attribute can
    lose increments across an interleaving.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max/mean."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        # One consistent reading: observe() updates count and total
        # together under the lock, so the exported mean must not mix a
        # new count with an old total.
        with self._lock:
            count, total = self.count, self.total
            minimum, maximum = self.minimum, self.maximum
        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.6g})"


class MetricsRegistry:
    """Get-or-create home for all counters and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def _snapshot(self) -> tuple[list, list]:
        """Stable (counters, histograms) item lists for read paths.

        Exchange producer threads create instruments concurrently with
        snapshot/reset consumers; iterating the live dicts would race dict
        growth (``RuntimeError: dictionary changed size``), so every read
        path works from a copy taken under the registry lock.
        """
        with self._lock:
            return (
                sorted(self._counters.items()),
                sorted(self._histograms.items()),
            )

    def value(self, name: str) -> int | float:
        """Current value of a counter (0 if it never fired)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def to_dict(self) -> dict:
        counters, histograms = self._snapshot()
        return {
            "counters": {name: counter.value for name, counter in counters},
            "histograms": {
                name: histogram.to_dict() for name, histogram in histograms
            },
        }

    def flush(self) -> dict:
        """A final snapshot (alias of :meth:`to_dict`; spelled for close())."""
        return self.to_dict()

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def render(self) -> str:
        """Aligned text dump, counters then histograms."""
        counters, histograms = self._snapshot()
        lines: list[str] = []
        for name, counter in counters:
            lines.append(f"  {name:<32} {counter.value}")
        for name, histogram in histograms:
            lines.append(
                f"  {name:<32} n={histogram.count}  mean={histogram.mean:.6g}"
                f"  min={histogram.minimum}  max={histogram.maximum}"
            )
        return "\n".join(lines) if lines else "  (no metrics recorded)"
