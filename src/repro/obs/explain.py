"""EXPLAIN ANALYZE: estimated-versus-actual, per operator.

:func:`build_report` joins three sources over one executed query:

* the optimizer's chosen plan (operator tree, node identities);
* the estimates — per-node cardinality from the
  :class:`~repro.stats.cardinality.CardinalityEstimator` and per-node cost
  from the :class:`~repro.optimizer.costs.PlanCoster`;
* the actuals — the execution span tree produced by
  :func:`repro.obs.instrument.execution_trace`, whose cursor spans are
  linked back to plan nodes through the compile-time cursor registry
  (see :func:`repro.core.plans.compile_plan`).

A ``TRANSFER^M`` row is costed for its whole DBMS region (the SQL the
cursor ships covers every operator below the ``T^M``, down to any ``T^D``
boundaries), because its measured time likewise includes the DBMS's work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import Operator, TransferD, TransferM
from repro.obs.tracing import Span


@dataclass
class OperatorMeasurement:
    """One row of the EXPLAIN ANALYZE table."""

    algorithm: str
    operator: str
    depth: int
    estimated_rows: float | None
    actual_rows: int
    estimated_cost_us: float | None
    #: Wall time inside this cursor minus time inside its children.
    actual_self_us: float | None
    #: Wall time inside this cursor including children (None untraced).
    actual_total_us: float | None
    next_calls: int | None = None
    #: Batches this cursor handed out (actual_rows / batches ≈ mean fill).
    batches: int | None = None
    #: Transient-fault retries this transfer spent (0/None = none).
    retries: int | None = None
    #: Producer threads of an exchange operator (None = not an exchange).
    workers: int | None = None
    #: Columnar backend this cursor executed under (None = row-at-a-time).
    columnar: str | None = None
    #: Column batches produced / batches re-run row-wise for exactness.
    cbatches: int | None = None
    columnar_fallbacks: int | None = None
    #: q-error of the row estimate, ``max(est/act, act/est)`` (None when
    #: no estimate exists for this span).
    qerror: float | None = None
    #: True when the q-error exceeds the re-optimization threshold — the
    #: operators that would trigger (or did trigger) a mid-query re-plan.
    flagged: bool = False

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "operator": self.operator,
            "depth": self.depth,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "estimated_cost_us": self.estimated_cost_us,
            "actual_self_us": self.actual_self_us,
            "actual_total_us": self.actual_total_us,
            "next_calls": self.next_calls,
            "batches": self.batches,
            "retries": self.retries,
            "workers": self.workers,
            "columnar": self.columnar,
            "cbatches": self.cbatches,
            "columnar_fallbacks": self.columnar_fallbacks,
            "qerror": self.qerror,
            "flagged": self.flagged,
        }


@dataclass
class ExplainAnalyzeReport:
    """Per-operator estimated-vs-actual table for one executed query."""

    operators: list[OperatorMeasurement]
    estimated_total_us: float
    actual_seconds: float
    result_rows: int
    trace: Span
    #: The threshold q-errors were flagged against (0.0 = flagging off).
    reoptimize_threshold: float = 0.0
    #: True when the executed plan was re-optimized mid-query.
    reoptimized: bool = False
    #: Optional headline above the table — e.g. a view refresh decision.
    banner: str | None = None

    def __iter__(self):
        return iter(self.operators)

    def __len__(self) -> int:
        return len(self.operators)

    def to_dict(self) -> dict:
        return {
            "operators": [measurement.to_dict() for measurement in self.operators],
            "estimated_total_us": self.estimated_total_us,
            "actual_seconds": self.actual_seconds,
            "result_rows": self.result_rows,
            "reoptimize_threshold": self.reoptimize_threshold,
            "reoptimized": self.reoptimized,
            "banner": self.banner,
            "trace": self.trace.to_dict(),
        }

    def __str__(self) -> str:
        header = (
            f"{'operator':<44} {'est rows':>10} {'act rows':>10} "
            f"{'q-err':>8} {'batches':>8} {'est us':>12} {'act us':>12}"
        )
        lines = [header, "-" * len(header)]
        if self.banner:
            lines.insert(0, self.banner)
        for m in self.operators:
            label = "  " * m.depth + m.algorithm
            if m.operator:
                label += f"  {m.operator}"
            # Markers survive truncation: trim the operator text first.
            markers = ""
            if m.retries:
                markers += f"  [retries={m.retries}]"
            if m.workers:
                markers += f"  [workers={m.workers}]"
            if m.columnar:
                markers += f"  [columnar={m.columnar}]"
                if m.columnar_fallbacks:
                    markers += f"  [fallbacks={m.columnar_fallbacks}]"
            if len(label) + len(markers) > 44:
                label = label[: max(0, 41 - len(markers))] + "..."
            label += markers
            est_rows = f"{m.estimated_rows:.0f}" if m.estimated_rows is not None else "-"
            est_cost = (
                f"{m.estimated_cost_us:.1f}" if m.estimated_cost_us is not None else "-"
            )
            actual = f"{m.actual_self_us:.1f}" if m.actual_self_us is not None else "-"
            batches = str(m.batches) if m.batches is not None else "-"
            # The "!" marks operators whose estimate is off beyond the
            # re-optimization threshold.
            qerr = "-"
            if m.qerror is not None:
                qerr = f"{m.qerror:.1f}" + ("!" if m.flagged else "")
            lines.append(
                f"{label:<44} {est_rows:>10} {m.actual_rows:>10} "
                f"{qerr:>8} {batches:>8} {est_cost:>12} {actual:>12}"
            )
        summary = (
            f"estimated total: {self.estimated_total_us:.1f}us   "
            f"actual: {self.actual_seconds * 1e6:.1f}us   "
            f"rows: {self.result_rows}"
        )
        if self.reoptimized:
            summary += "   [reoptimized]"
        lines.append(summary)
        return "\n".join(lines)


def build_report(
    trace: Span,
    registry: dict[int, Operator],
    estimator,
    coster,
    estimated_total_us: float,
    result_rows: int,
    reoptimize_threshold: float = 0.0,
    reoptimized: bool = False,
) -> ExplainAnalyzeReport:
    """Assemble the report from an ``execute`` span tree.

    *registry* maps ``id(cursor)`` (the ``cursor_id`` span attribute) to the
    plan node the cursor implements; *estimator* and *coster* supply the
    estimates against which the span actuals are laid.  Rows whose q-error
    exceeds *reoptimize_threshold* (when > 0) come back flagged;
    *reoptimized* marks a plan that was re-planned mid-query.
    """
    from repro.core.cardinality import qerror as _qerror

    measurements: list[OperatorMeasurement] = []

    def visit(span: Span, depth: int) -> None:
        if span.kind not in ("cursor", "transfer", "exchange"):
            for child in span.children:
                visit(child, depth)
            return
        node = registry.get(span.attributes.get("cursor_id"))
        estimated_rows = estimated_cost = None
        operator_label = ""
        if node is not None:
            estimated_rows = float(estimator.estimate(node).cardinality)
            estimated_cost = _estimated_cost(node, coster)
            operator_label = node.describe()
        actual_total = actual_self = next_calls = None
        if span.seconds is not None:
            actual_total = span.elapsed_seconds * 1e6
            child_time = sum(
                child.elapsed_seconds
                for child in span.children
                if child.kind in ("cursor", "transfer", "exchange")
                and child.seconds is not None
            )
            actual_self = max(0.0, actual_total - child_time * 1e6)
            next_calls = span.attributes.get("next_calls")
        actual_rows = int(
            span.attributes.get("tuples", span.attributes.get("rows", 0))
        )
        error = None
        if estimated_rows is not None:
            error = _qerror(estimated_rows, actual_rows)
        measurements.append(
            OperatorMeasurement(
                algorithm=span.name,
                operator=operator_label,
                depth=depth,
                estimated_rows=estimated_rows,
                actual_rows=actual_rows,
                estimated_cost_us=estimated_cost,
                actual_self_us=actual_self,
                actual_total_us=actual_total,
                next_calls=next_calls,
                batches=span.attributes.get("batches"),
                retries=span.attributes.get("retries"),
                workers=span.attributes.get("workers"),
                columnar=span.attributes.get("columnar"),
                cbatches=span.attributes.get("cbatches"),
                columnar_fallbacks=span.attributes.get("columnar_fallbacks"),
                qerror=error,
                flagged=(
                    error is not None
                    and reoptimize_threshold > 0
                    and error > reoptimize_threshold
                ),
            )
        )
        for child in span.children:
            visit(child, depth + 1)

    visit(trace, 0)
    return ExplainAnalyzeReport(
        operators=measurements,
        estimated_total_us=estimated_total_us,
        actual_seconds=trace.elapsed_seconds,
        result_rows=result_rows,
        trace=trace,
        reoptimize_threshold=reoptimize_threshold,
        reoptimized=reoptimized,
    )


def _estimated_cost(node: Operator, coster) -> float:
    """Node cost — or, for a ``T^M``, the cost of its whole DBMS region."""
    if isinstance(node, TransferM):
        total = coster.node_cost(node)

        def add_region(inner: Operator) -> None:
            nonlocal total
            for child in inner.inputs:
                if isinstance(child, TransferD):
                    continue  # a separate TRANSFER^D step owns that subtree
                total += coster.node_cost(child)
                add_region(child)

        add_region(node)
        return total
    return coster.node_cost(node)
