"""Query-lifecycle observability: tracing, metrics, EXPLAIN ANALYZE.

The middleware's Section 7 adaptivity depends on *observing* execution —
transfer timings feed the cost-factor feedback loop — and every later
performance claim needs a measurement substrate.  This package provides it:

* :mod:`repro.obs.tracing` — hierarchical :class:`Span` trees over the
  query lifecycle (parse → optimize → translate → execute), managed by a
  :class:`Tracer`;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters and
  histograms (queries served, memo complexity, transfer volume, cache
  hits, DBMS round trips);
* :mod:`repro.obs.instrument` — :class:`InstrumentedCursor` wrappers that
  measure any XXL cursor without editing the algorithm classes, and the
  span-tree materialization of finished executions;
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE report joining optimizer
  estimates with executed actuals per operator.
"""

from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.instrument import (
    ALGORITHM_NAMES,
    InstrumentedCursor,
    algorithm_name,
    cursor_span,
    execution_trace,
    instrument_plan,
    unwrap,
)
from repro.obs.explain import (
    ExplainAnalyzeReport,
    OperatorMeasurement,
    build_report,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ALGORITHM_NAMES",
    "InstrumentedCursor",
    "algorithm_name",
    "cursor_span",
    "execution_trace",
    "instrument_plan",
    "unwrap",
    "ExplainAnalyzeReport",
    "OperatorMeasurement",
    "build_report",
]
