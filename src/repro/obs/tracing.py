"""Hierarchical tracing of the query lifecycle.

A :class:`Span` is one timed region of work — parsing, an optimizer phase,
one execution-plan step, one XXL cursor — with free-form attributes and
child spans.  A :class:`Tracer` maintains the current span stack so the
layers of the middleware (facade, optimizer, engine) can nest their spans
without knowing about each other.

Spans are plain data: :meth:`Span.to_dict` renders a span tree as nested
dicts (JSON-ready), :meth:`Span.render` as an indented text tree.  The
Section 7 feedback loop consumes the same trees — transfer spans carry the
tuple/byte/second attributes that :func:`repro.core.feedback.
observations_from_trace` turns into :class:`TransferObservation` values.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed, attributed region of work in a span tree."""

    name: str
    kind: str = "span"
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    start: float = 0.0
    end: float | None = None
    #: Explicit duration for spans reconstructed after the fact (cursor
    #: spans built from finished executions); overrides ``end - start``.
    seconds: float | None = None

    @property
    def elapsed_seconds(self) -> float:
        if self.seconds is not None:
            return self.seconds
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def set(self, **attributes) -> "Span":
        """Merge *attributes* into the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def add_child(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    # -- queries ----------------------------------------------------------------------

    def iter(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str | None = None, kind: str | None = None) -> "Span | None":
        """First span (pre-order) matching *name* and/or *kind*."""
        for span in self.iter():
            if (name is None or span.name == name) and (
                kind is None or span.kind == kind
            ):
                return span
        return None

    def find_all(self, name: str | None = None, kind: str | None = None) -> list["Span"]:
        return [
            span
            for span in self.iter()
            if (name is None or span.name == name)
            and (kind is None or span.kind == kind)
        ]

    # -- export -----------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Nested-dict form (structured, JSON-serializable)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "seconds": self.elapsed_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, indent: int = 0) -> str:
        """Indented text tree: name, duration, and key attributes."""
        pad = "  " * indent
        notes = "".join(
            f"  {key}={_fmt_value(value)}"
            for key, value in self.attributes.items()
            if key not in ("sql", "cursor_id")
        )
        lines = [f"{pad}{self.name}  {self.elapsed_seconds * 1000:.3f}ms{notes}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class Tracer:
    """Produces span trees; tracks the current span across layers.

    A disabled tracer hands out a shared throwaway span and records
    nothing, so instrumented code needs no ``if tracing`` branches.
    Completed root spans accumulate in :attr:`spans`.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Completed root spans, oldest first.
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes):
        """Open a child span of the current span (or a new root)."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = Span(name, kind, dict(attributes), start=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            self._stack.pop()

    def attach(self, span: Span) -> None:
        """Adopt a prebuilt span (tree) as a child of the current span."""
        if not self.enabled:
            return
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)

    def last(self) -> Span | None:
        """The most recently completed root span."""
        return self.spans[-1] if self.spans else None

    def drain(self) -> list[Span]:
        """Return the completed root spans and clear the buffer."""
        spans, self.spans = self.spans, []
        return spans


#: Swallows attribute writes from code holding a disabled tracer's span.
_NULL_SPAN = Span("null", kind="null")

#: A shared disabled tracer for code paths run without observability.
NULL_TRACER = Tracer(enabled=False)
