"""Middleware projection — order preserving, duplicates kept."""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import Expression, col
from repro.algebra.schema import Attribute, Schema
from repro.dbms.costmodel import CostMeter
from repro.xxl.cursor import Cursor


class ProjectCursor(Cursor):
    """Computes ``(name, expression)`` outputs per input row."""

    def __init__(
        self,
        input: Cursor,
        outputs: Sequence[tuple[str, Expression]],
        meter: CostMeter | None = None,
    ):
        self._input = input
        self._outputs = tuple(outputs)
        self._funcs: list | None = None
        self._meter = meter
        super().__init__(Schema([]))

    @staticmethod
    def of_columns(
        input: Cursor, names: Sequence[str], meter: CostMeter | None = None
    ) -> "ProjectCursor":
        return ProjectCursor(input, [(name, col(name)) for name in names], meter)

    def _open(self) -> None:
        self._input.init()
        source = self._input.schema
        self.schema = Schema(
            Attribute(name, expression.result_type(source))
            for name, expression in self._outputs
        )
        self._funcs = [expression.compile(source) for _, expression in self._outputs]

    def _next(self) -> tuple:
        assert self._funcs is not None
        if not self._input.has_next():
            raise StopIteration
        row = self._input.next()
        if self._meter is not None:
            self._meter.charge_cpu(1)
        return tuple(func(row) for func in self._funcs)

    def _next_batch(self, n: int) -> list[tuple]:
        funcs = self._funcs
        assert funcs is not None
        batch = self._input.next_batch(n)
        if self._meter is not None and batch:
            self._meter.charge_cpu(len(batch))
        return [tuple(func(row) for func in funcs) for row in batch]

    def _close(self) -> None:
        self._input.close()
