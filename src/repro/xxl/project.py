"""Middleware projection — order preserving, duplicates kept."""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import ColumnRef, Expression, col
from repro.algebra.schema import Attribute, Schema
from repro.dbms.costmodel import CostMeter
from repro.xxl.columnar import ColumnBatch, ColumnarUnsupported, compile_columnar
from repro.xxl.cursor import Cursor


class ProjectCursor(Cursor):
    """Computes ``(name, expression)`` outputs per input row."""

    def __init__(
        self,
        input: Cursor,
        outputs: Sequence[tuple[str, Expression]],
        meter: CostMeter | None = None,
    ):
        self._input = input
        self._outputs = tuple(outputs)
        self._funcs: list | None = None
        self._meter = meter
        #: Input positions when every output is a bare column reference —
        #: the zero-copy columnar case (pure slicing/renaming).
        self._positions: list[int] | None = None
        self._columnar_funcs: list | None = None
        super().__init__(Schema([]))

    @staticmethod
    def of_columns(
        input: Cursor, names: Sequence[str], meter: CostMeter | None = None
    ) -> "ProjectCursor":
        return ProjectCursor(input, [(name, col(name)) for name in names], meter)

    def _open(self) -> None:
        self._input.init()
        source = self._input.schema
        self.schema = Schema(
            Attribute(name, expression.result_type(source))
            for name, expression in self._outputs
        )
        self._funcs = [expression.compile(source) for _, expression in self._outputs]
        self._positions = None
        self._columnar_funcs = None
        if self.columnar != "off":
            if all(isinstance(e, ColumnRef) for _, e in self._outputs):
                self._positions = [
                    source.index_of(e.name) for _, e in self._outputs
                ]
            else:
                try:
                    self._columnar_funcs = [
                        compile_columnar(e, source, self.columnar)
                        for _, e in self._outputs
                    ]
                except ColumnarUnsupported:
                    self._columnar_funcs = None

    def _next(self) -> tuple:
        assert self._funcs is not None
        if not self._input.has_next():
            raise StopIteration
        row = self._input.next()
        if self._meter is not None:
            self._meter.charge_cpu(1)
        return tuple(func(row) for func in self._funcs)

    def _next_batch(self, n: int) -> list[tuple]:
        if self._positions is not None or self._columnar_funcs is not None:
            batch = self._pull_columns(n)
            return batch.to_rows() if batch is not None else []
        return self._row_next_batch(n)

    def _row_next_batch(self, n: int) -> list[tuple]:
        funcs = self._funcs
        assert funcs is not None
        batch = self._input.next_batch(n)
        if self._meter is not None and batch:
            self._meter.charge_cpu(len(batch))
        return [tuple(func(row) for func in funcs) for row in batch]

    def _next_column_batch(self, n: int) -> ColumnBatch | None:
        if self._positions is None and self._columnar_funcs is None:
            rows = self._row_next_batch(n)
            if not rows:
                return None
            return ColumnBatch.from_rows(self.schema, rows, self._column_backend())
        batch = self._input.next_column_batch(n)
        if batch is None:
            return None
        if self._meter is not None:
            self._meter.charge_cpu(len(batch))
        if self._positions is not None:
            # Pure column slicing/renaming: shares column objects, no row
            # (or even column) materialization.
            return batch.project(self._positions, self.schema)
        try:
            columns = [func(batch) for func in self._columnar_funcs]
            return ColumnBatch(self.schema, columns, len(batch), batch.backend)
        except Exception:
            # Exact row semantics for the offending batch (errors raise at
            # the same row the row path would reach).
            self.columnar_fallbacks += 1
            funcs = self._funcs
            rows = [
                tuple(func(row) for func in funcs) for row in batch.to_rows()
            ]
            return ColumnBatch.from_rows(self.schema, rows, batch.backend)

    def _close(self) -> None:
        self._input.close()
