"""The cursor (result-set) protocol of the middleware Execution Engine.

Figure 2 of the paper: every algorithm is wrapped in a result set exposing
``init()`` and ``getNext()``; ``init()`` usually just sets up inner state
but may do real work (``TRANSFER^D`` drains its whole input there).  We add
the customary ``has_next()`` and make cursors Python iterables, so
``for row in cursor`` works after :meth:`Cursor.init`.

On top of the paper's row-at-a-time protocol, every cursor also speaks a
*batched* protocol: :meth:`Cursor.next_batch` returns up to *n* rows per
call, so a pipeline pays one method-dispatch round trip per batch rather
than per row.  Row-at-a-time semantics are fully preserved — ``has_next``,
``next``, ``next_batch``, and iteration may be mixed freely on the same
cursor because all of them drain the shared look-ahead buffer first.
Subclasses get batching for free through the default :meth:`Cursor.
_next_batch` (a loop over :meth:`Cursor._next`); the hot algorithms
override it with native batch implementations.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from repro.algebra.schema import Schema
from repro.errors import ExecutionError
from repro.xxl.columnar import ColumnBatch

#: Default rows per batch (TangoConfig.batch_size overrides per query).
DEFAULT_BATCH_SIZE = 256


class Cursor:
    """Abstract pipelined iterator over rows.

    Subclasses implement :meth:`_open` (called once from :meth:`init`) and
    :meth:`_next` (return the next row or raise :class:`StopIteration`).
    Most algorithms implement ``_open`` by building a generator.  Native
    batching overrides :meth:`_next_batch` instead.
    """

    #: Rows pulled per internal batch; plan compilation overrides this
    #: per instance from ``TangoConfig.batch_size``.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Columnar backend ("off", "python", "numpy"); plan compilation
    #: stamps this per instance from ``TangoConfig.columnar``.  Operators
    #: with a vectorized path switch on it; everything else keeps rows and
    #: the interop shims bridge at the boundary.
    columnar: str = "off"

    def __init__(self, schema: Schema):
        self.schema = schema
        self._initialized = False
        self._closed = False
        #: Rows produced but not yet handed out: ``has_next`` buffers one
        #: row here; a native ``_next_batch`` that overshoots parks its
        #: surplus here.  Every consuming method drains it first, so a
        #: buffered row is never dropped whichever protocol the caller
        #: mixes.
        self._lookahead: deque[tuple] = deque()
        #: Rows handed out so far (handy for tests and accounting).
        self.rows_produced = 0
        #: Non-empty batches handed out via :meth:`next_batch`.
        self.batches_produced = 0
        #: Column batches this cursor produced (via its native columnar
        #: path or the row shim) — the EXPLAIN ANALYZE columnar signal.
        self.cbatches_produced = 0
        #: Batches where the vectorized path hit an exception and re-ran
        #: the exact row semantics instead (e.g. a division by zero that a
        #: short-circuiting row predicate would or would not reach).
        self.columnar_fallbacks = 0

    # -- protocol -------------------------------------------------------------------

    def init(self) -> "Cursor":
        """Prepare the cursor; idempotent."""
        if self._closed:
            raise ExecutionError(f"{type(self).__name__} is closed")
        if not self._initialized:
            self._open()
            self._initialized = True
        return self

    def has_next(self) -> bool:
        """True when another row is available (buffers one row ahead)."""
        self.init()
        if self._lookahead:
            return True
        try:
            self._lookahead.append(self._next())
        except StopIteration:
            return False
        return True

    def next(self) -> tuple:
        """Return the next row; raises :class:`ExecutionError` when drained."""
        if not self.has_next():
            raise ExecutionError(f"{type(self).__name__} has no more rows")
        row = self._lookahead.popleft()
        self.rows_produced += 1
        return row

    def next_batch(self, n: int) -> list[tuple]:
        """Return the next up-to-*n* rows; ``[]`` exactly when drained.

        The batched face of the Figure 2 protocol: one call replaces *n*
        ``has_next``/``next`` round trips.  Rows buffered by ``has_next``
        are served first, so mixing the two protocols never drops a row.
        """
        self.init()
        if n <= 0:
            return []
        if self._lookahead:
            buffered = list(islice(self._lookahead, n))
            for _ in buffered:
                self._lookahead.popleft()
            if len(buffered) < n:
                buffered.extend(self._next_batch(n - len(buffered)))
            batch = buffered
        else:
            batch = self._next_batch(n)
        if batch:
            self.rows_produced += len(batch)
            self.batches_produced += 1
        return batch

    def next_column_batch(self, n: int) -> ColumnBatch | None:
        """Return the next up-to-*n* rows as a :class:`ColumnBatch`, or
        ``None`` exactly when drained.

        The columnar face of the protocol.  Cursors without a native
        columnar path serve it through the default row shim
        (:meth:`_next_column_batch` transposes ``_next_batch``), so any
        consumer may ask any cursor for columns.  Rows buffered by
        ``has_next`` are served first — protocol mixing never drops or
        reorders a row.
        """
        self.init()
        if n <= 0:
            return None
        if self._lookahead:
            rows = self.next_batch(n)  # drains the buffer; accounts rows
            if not rows:
                return None
            self.cbatches_produced += 1
            return ColumnBatch.from_rows(self.schema, rows, self._column_backend())
        batch = self._pull_columns(n)
        if batch is None:
            return None
        self.rows_produced += len(batch)
        self.batches_produced += 1
        return batch

    def _pull_columns(self, n: int) -> ColumnBatch | None:
        """Native column pull plus columnar accounting (no row accounting —
        both public faces layer that on top)."""
        batch = self._next_column_batch(n)
        if batch is None or not len(batch):
            return None
        self.cbatches_produced += 1
        return batch

    def _column_backend(self) -> str:
        """Backend for batches this cursor builds ("python" when columnar
        is off but a consumer explicitly asked for columns)."""
        return self.columnar if self.columnar != "off" else "python"

    def iter_batched(self, size: int | None = None) -> Iterator[tuple]:
        """Iterate rows, pulling them through :meth:`next_batch` internally.

        The drop-in replacement for ``while c.has_next(): c.next()`` inner
        loops: per-row cost is one generator resume instead of two cursor
        dispatches plus buffer bookkeeping.
        """
        size = size if size is not None else self.batch_size
        while True:
            batch = self.next_batch(size)
            if not batch:
                return
            yield from batch

    def close(self) -> None:
        """Release resources; further use is an error."""
        if not self._closed:
            self._close()
            self._closed = True

    def __iter__(self) -> Iterator[tuple]:
        while self.has_next():
            yield self.next()

    def __enter__(self) -> "Cursor":
        return self.init()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- subclass hooks ----------------------------------------------------------------

    def _open(self) -> None:
        """One-time setup; default does nothing."""

    def _next(self) -> tuple:
        """Produce the next row or raise StopIteration."""
        raise NotImplementedError

    def _next_batch(self, n: int) -> list[tuple]:
        """Produce up to *n* rows (empty list when drained).

        Default: a loop over :meth:`_next`, correct for every subclass.
        Implementations that naturally overproduce (e.g. a filter working
        input-batch-wise) may return at most *n* rows and park the surplus
        in ``self._lookahead``.
        """
        batch: list[tuple] = []
        append = batch.append
        try:
            for _ in range(n):
                append(self._next())
        except StopIteration:
            pass
        return batch

    def _next_column_batch(self, n: int) -> ColumnBatch | None:
        """Produce up to *n* rows as a :class:`ColumnBatch`; ``None`` when
        drained.

        Default: the row-to-column interop shim over :meth:`_next_batch`,
        correct for every subclass.  Operators with a vectorized path
        override this (and route their columnar-mode ``_next_batch``
        through it via ``to_rows``, so columns flow between operators and
        rows materialize only at the consumer boundary).
        """
        rows = self._next_batch(n)
        if not rows:
            return None
        return ColumnBatch.from_rows(self.schema, rows, self._column_backend())

    def _close(self) -> None:
        """Release resources; default does nothing."""


class GeneratorCursor(Cursor):
    """A cursor whose rows come from a generator built in :meth:`_generate`.

    Most middleware algorithms subclass this: ``_generate`` expresses the
    algorithm naturally while the base class provides the protocol —
    including batching, which ``islice``s the generator so a batch costs
    one slicing call rather than *n* ``next()`` round trips.
    """

    def __init__(self, schema: Schema):
        super().__init__(schema)
        self._generator: Iterator[tuple] | None = None

    def _open(self) -> None:
        self._generator = self._generate()

    def _next(self) -> tuple:
        assert self._generator is not None
        return next(self._generator)

    def _next_batch(self, n: int) -> list[tuple]:
        assert self._generator is not None
        return list(islice(self._generator, n))

    def _close(self) -> None:
        self._generator = None

    def _generate(self) -> Iterator[tuple]:
        raise NotImplementedError


class BatchReader:
    """Single-row reads over a cursor's batched protocol.

    Sort-merge algorithms consume rows one at a time but compare-and-advance
    in tight loops; this adapter gives them ``read()`` (one row or ``None``)
    backed by ``next_batch`` pulls, replacing two cursor dispatches per row
    with one local method call and a list index.
    """

    __slots__ = ("_cursor", "_size", "_batch", "_pos")

    def __init__(self, cursor: Cursor, size: int | None = None):
        self._cursor = cursor
        self._size = size if size is not None else cursor.batch_size
        self._batch: list[tuple] = []
        self._pos = 0

    def read(self) -> tuple | None:
        """The next row, or ``None`` when the cursor is drained."""
        if self._pos >= len(self._batch):
            self._batch = self._cursor.next_batch(self._size)
            self._pos = 0
            if not self._batch:
                return None
        row = self._batch[self._pos]
        self._pos += 1
        return row


def materialize(cursor: Cursor) -> list[tuple]:
    """Drain a cursor into a list and close it."""
    try:
        rows: list[tuple] = []
        cursor.init()
        while True:
            batch = cursor.next_batch(cursor.batch_size)
            if not batch:
                return rows
            rows.extend(batch)
    finally:
        cursor.close()
