"""The cursor (result-set) protocol of the middleware Execution Engine.

Figure 2 of the paper: every algorithm is wrapped in a result set exposing
``init()`` and ``getNext()``; ``init()`` usually just sets up inner state
but may do real work (``TRANSFER^D`` drains its whole input there).  We add
the customary ``has_next()`` and make cursors Python iterables, so
``for row in cursor`` works after :meth:`Cursor.init`.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.schema import Schema
from repro.errors import ExecutionError

#: Sentinel marking "no row buffered".
_EMPTY = object()


class Cursor:
    """Abstract pipelined iterator over rows.

    Subclasses implement :meth:`_open` (called once from :meth:`init`) and
    :meth:`_next` (return the next row or raise :class:`StopIteration`).
    Most algorithms implement ``_open`` by building a generator.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._initialized = False
        self._closed = False
        self._buffered: object = _EMPTY
        #: Rows handed out so far (handy for tests and accounting).
        self.rows_produced = 0

    # -- protocol -------------------------------------------------------------------

    def init(self) -> "Cursor":
        """Prepare the cursor; idempotent."""
        if self._closed:
            raise ExecutionError(f"{type(self).__name__} is closed")
        if not self._initialized:
            self._open()
            self._initialized = True
        return self

    def has_next(self) -> bool:
        """True when another row is available (buffers one row ahead)."""
        self.init()
        if self._buffered is not _EMPTY:
            return True
        try:
            self._buffered = self._next()
        except StopIteration:
            return False
        return True

    def next(self) -> tuple:
        """Return the next row; raises :class:`ExecutionError` when drained."""
        if not self.has_next():
            raise ExecutionError(f"{type(self).__name__} has no more rows")
        row = self._buffered
        self._buffered = _EMPTY
        self.rows_produced += 1
        return row  # type: ignore[return-value]

    def close(self) -> None:
        """Release resources; further use is an error."""
        if not self._closed:
            self._close()
            self._closed = True

    def __iter__(self) -> Iterator[tuple]:
        while self.has_next():
            yield self.next()

    def __enter__(self) -> "Cursor":
        return self.init()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- subclass hooks ----------------------------------------------------------------

    def _open(self) -> None:
        """One-time setup; default does nothing."""

    def _next(self) -> tuple:
        """Produce the next row or raise StopIteration."""
        raise NotImplementedError

    def _close(self) -> None:
        """Release resources; default does nothing."""


class GeneratorCursor(Cursor):
    """A cursor whose rows come from a generator built in :meth:`_generate`.

    Most middleware algorithms subclass this: ``_generate`` expresses the
    algorithm naturally while the base class provides the protocol.
    """

    def __init__(self, schema: Schema):
        super().__init__(schema)
        self._generator: Iterator[tuple] | None = None

    def _open(self) -> None:
        self._generator = self._generate()

    def _next(self) -> tuple:
        assert self._generator is not None
        return next(self._generator)

    def _close(self) -> None:
        self._generator = None

    def _generate(self) -> Iterator[tuple]:
        raise NotImplementedError


def materialize(cursor: Cursor) -> list[tuple]:
    """Drain a cursor into a list and close it."""
    try:
        return list(cursor.init())
    finally:
        cursor.close()
