"""The middleware query-processing library (our XXL analogue).

The paper's Execution Engine is built on van den Bercken et al.'s XXL
library of query-processing algorithms: every algorithm is an iterator
("result set") with ``init()`` / ``hasNext()`` / ``getNext()`` methods,
enabling pipelined execution (Figure 2).  This package reimplements that
model:

* :class:`~repro.xxl.cursor.Cursor` — the iterator protocol;
* sources — in-memory relations and ``TRANSFER^M`` SQL cursors;
* order-preserving filter and project;
* external merge sort;
* sort-merge equi-join and sort-merge **temporal** join;
* the paper's two-sorted-copies **temporal aggregation** (Section 3.4);
* the Section 7 extension operators: duplicate elimination, coalescing,
  and multiset difference.

All middleware algorithms are order preserving (Section 4) — a fact the
optimizer's list-equivalence rules rely on.
"""

from repro.xxl.columnar import (
    ColumnBatch,
    ColumnarUnsupported,
    compile_columnar,
    numpy_available,
    resolve_backend,
)
from repro.xxl.cursor import BatchReader, Cursor, DEFAULT_BATCH_SIZE, materialize
from repro.xxl.exchange import ExchangeCursor, PartitionSpec, RepartitionCursor
from repro.xxl.sources import PooledSQLCursor, RelationCursor, SQLCursor
from repro.xxl.filter import FilterCursor
from repro.xxl.project import ProjectCursor
from repro.xxl.sort import SortCursor
from repro.xxl.merge_join import MergeJoinCursor
from repro.xxl.temporal_join import TemporalJoinCursor
from repro.xxl.temporal_aggregate import TemporalAggregateCursor
from repro.xxl.transfer import TransferDCursor
from repro.xxl.dedup import DedupCursor
from repro.xxl.coalesce import CoalesceCursor
from repro.xxl.difference import DifferenceCursor

__all__ = [
    "BatchReader",
    "ColumnBatch",
    "ColumnarUnsupported",
    "compile_columnar",
    "numpy_available",
    "resolve_backend",
    "Cursor",
    "DEFAULT_BATCH_SIZE",
    "materialize",
    "ExchangeCursor",
    "PartitionSpec",
    "PooledSQLCursor",
    "RelationCursor",
    "RepartitionCursor",
    "SQLCursor",
    "FilterCursor",
    "ProjectCursor",
    "SortCursor",
    "MergeJoinCursor",
    "TemporalJoinCursor",
    "TemporalAggregateCursor",
    "TransferDCursor",
    "DedupCursor",
    "CoalesceCursor",
    "DifferenceCursor",
]
